//! Library backing the `lcds` command-line tool.
//!
//! The binary is a thin shim over [`run`], so every command is unit- and
//! integration-testable without spawning processes.
//!
//! ```text
//! lcds build  --out DICT (--random N | --keys FILE) [--seed S]
//!             [--threads T]
//! lcds info   DICT
//! lcds query  DICT KEY...
//! lcds bulk   DICT (--keys FILE | --random N) [--batch B] [--seed S]
//!             [--threads T]
//! lcds audit  DICT [--zipf THETA] [--negatives M]
//! lcds obs    [--random N] [--queries Q] [--zipf THETA] [--period P]
//!             [--topk K] [--format table|prom|jsonl] [--seed S]
//! lcds trace  [--random N] [--queries Q] [--batch B] [--sample P]
//!             [--seed S] [--out FILE] [--net Q]
//! lcds watch  [--scheme lcd|fks|fks-adversarial] [--random N]
//!             [--queries Q] [--zipf THETA] [--multiple M]
//!             [--interval I] [--topk K] [--format table|prom|jsonl]
//!             [--seed S]
//! lcds serve-net (DICT | --random N [--shards K]) [--dynamic]
//!             [--seed S] [--addr A] [--port-file FILE] [--workers W]
//!             [--queue-depth Q] [--batch B] [--duration SECS]
//!             [--watch ENVELOPE] [--multiple M] [--sample P]
//!             [--metrics-file FILE]
//! lcds loadgen --addr A (--random N | --keys FILE) [--seed S]
//!             [--connections C] [--duration SECS] [--batch B]
//!             [--workload uniform|zipf|adversarial] [--zipf THETA]
//!             [--write-every N] [--format table|json]
//! lcds bench-mt [--random N] [--threads T | T1,T2,...] [--quick]
//!             [--schemes lcd,fks,fks-adversarial]
//!             [--workloads uniform,zipf,adversarial] [--zipf THETA]
//!             [--ops K] [--batch B] [--seed S] [--serialize on|off]
//!             [--service-ns NS] [--stripes S] [--format table|json]
//!             [--out BENCH.json] [--metrics-file FILE]
//! lcds bench-kernels [--random N] [--iters I] [--batches B1,B2,...]
//!             [--seed S] [--format table|json] [--out BENCH.json]
//! ```
//!
//! Key files are plain text, one decimal `u64` per line (`#` comments
//! allowed). Dictionaries are the checksummed binary format of
//! [`lcds_core::persist`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::dist::{QueryDistribution, QueryPool};
use lcds_cellprobe::exact::exact_contention;
use lcds_cellprobe::sink::ProbeSink;
use lcds_core::persist;
use lcds_core::rows::row_report;
use lcds_core::LowContentionDict;
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::querygen::{negative_pool, zipf_over_keys};
use lcds_workloads::rng::seeded;
use std::path::Path;

/// CLI failure: a message and a suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }

    fn runtime(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }
}

/// Entry point: interprets `args` (without the program name) and writes
/// human output to `out`.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..], out),
        Some("info") => cmd_info(&args[1..], out),
        Some("query") => cmd_query(&args[1..], out),
        Some("bulk") => cmd_bulk(&args[1..], out),
        Some("build-ordered") => cmd_build_ordered(&args[1..], out),
        Some("bulk-ordered") => cmd_bulk_ordered(&args[1..], out),
        Some("audit") => cmd_audit(&args[1..], out),
        Some("obs") => cmd_obs(&args[1..], out),
        Some("trace") => cmd_trace(&args[1..], out),
        Some("watch") => cmd_watch(&args[1..], out),
        Some("serve-net") => cmd_serve_net(&args[1..], out),
        Some("top") => cmd_top(&args[1..], out),
        Some("loadgen") => cmd_loadgen(&args[1..], out),
        Some("bench-mt") => cmd_bench_mt(&args[1..], out),
        Some("bench-kernels") => cmd_bench_kernels(&args[1..], out),
        Some("--help") | Some("-h") | None => {
            writeln!(out, "{}", USAGE).map_err(io_err)?;
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
lcds — low-contention static dictionary (SPAA 2010 reproduction)

commands:
  build  --out DICT (--random N | --keys FILE) [--seed S]   build + persist
         [--threads T]                                      (parallel, seeded)
  info   DICT                                               parameters & stats
  query  DICT KEY...                                        membership
  bulk   DICT (--keys FILE | --random N)                    batched bulk queries
         [--batch B] [--seed S] [--threads T]               via the serve engine
  build-ordered --out DICT (--random N | --keys FILE)       build + persist the
         [--scheme replicated|adversarial] [--seed S]       replicated ordered
         [--threads T]                                      dictionary
  bulk-ordered (DICT | --random N)                          batched predecessor /
         [--keys FILE | --queries Q] [--batch B]            rank / range-count
         [--op predecessor|rank|range-count|all]            queries via the
         [--scheme replicated|adversarial] [--seed S]       ordered engine

--threads T sizes the Rayon worker pool for that subcommand: the parallel
construction pipeline on `build`, the bulk-query engine on `bulk`. It never
changes results — builds are bit-deterministic in the seed at every thread
count. --build-threads is accepted as an alias.
  audit  DICT [--zipf THETA] [--negatives M]                contention report
  obs    [--random N] [--queries Q] [--zipf THETA]          live telemetry demo:
         [--period P] [--topk K] [--seed S]                 sampled probes, top-K
         [--format table|prom|jsonl]                        hot cells, exporters
  trace  [--random N] [--queries Q] [--batch B]             chrome://tracing JSON:
         [--sample P] [--seed S] [--out FILE] [--net Q]     build spans + sampled
                                                            query batches; --net
                                                            traces a whole TCP
                                                            serve run (client →
                                                            queue → worker)
  watch  [--scheme lcd|fks|fks-adversarial]                 live Φ-heatmap + the
         [--random N] [--queries Q] [--zipf THETA]          contention watchdog
         [--multiple M] [--interval I] [--topk K]           against the scheme's
         [--format table|prom|jsonl] [--seed S]             theoretical envelope
  serve-net (DICT | --random N [--shards K])                TCP server: bounded
         [--dynamic | --ordered] [--seed S] [--addr A]      worker queue, Busy
         [--port-file FILE] [--workers W]                   shedding, graceful
         [--queue-depth Q] [--batch B]                      drain; optional live
         [--duration SECS] [--watch ENVELOPE]               heatmap watchdog;
         [--multiple M] [--sample P] [--metrics-file FILE]  --dynamic serves a
         [--telemetry-window SECS] [--recorder DIR]         generation-swapped
         [--slo-p99-ms MS] [--slo-ratio R]                  DynamicEngine that
         [--scheme replicated|adversarial]                  accepts Insert/
                                                            Remove/Flush;
                                                            --ordered serves the
                                                            Predecessor/Rank/
                                                            RangeCount opcodes;
                                                            --telemetry-window
                                                            keeps a window ring
                                                            served over the
                                                            Telemetry opcode,
                                                            --recorder dumps
                                                            flight bundles on
                                                            watchdog/SLO/drain
  top    [--addr A] [--interval SECS] [--frames N]          live dashboard over
         [--once] [--json]                                  the telemetry ring:
                                                            remote (polls a
                                                            serve-net server) or
                                                            in-process; --once
                                                            --json for scripts
  loadgen --addr A (--random N | --keys FILE)               closed-loop load:
         [--seed S] [--connections C] [--duration SECS]     per-connection dists,
         [--batch B] [--workload uniform|zipf|adversarial]  throughput + latency
         [--zipf THETA] [--write-every N] [--ordered]       quantiles; N > 0
         [--format table|json]                              mixes in writes;
                                                            --ordered cycles the
                                                            predecessor / rank /
                                                            range-count opcodes
  bench-mt [--random N] [--threads T | T1,T2,...]           multi-threaded probe
         [--quick] [--schemes ...] [--workloads ...]        harness: qps, scaling
         [--zipf THETA] [--ops K] [--batch B] [--seed S]    efficiency, merged Φ̂,
         [--serialize on|off] [--service-ns NS]             latency quantiles per
         [--stripes S] [--format table|json]                (scheme × workload ×
         [--out BENCH.json] [--metrics-file FILE]           threads) row;
         [--window SECS] [--ordered] [--ord-ops ...]        --window attaches a
                                                            per-window telemetry
                                                            series to every row;
                                                            --ordered sweeps the
                                                            ordered dictionary
                                                            (exact per-level Φ̂)
                                                            instead of membership
  bench-kernels [--random N] [--iters I]                    probe-kernel sweep:
         [--batches B1,B2,...] [--seed S]                   scalar vs prefetch vs
         [--format table|json] [--out BENCH.json]           SIMD ns/key per batch
                                                            size (build with
                                                            --features kernels-simd
                                                            for the vector paths)";

fn io_err(e: std::io::Error) -> CliError {
    CliError::runtime(format!("i/o error: {e}"))
}

/// Parses `--flag value` pairs and positionals.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, Vec<(String, String)>), CliError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| CliError::usage(format!("--{name} needs a value")))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Reads a key file: one decimal u64 per line, `#` comments and blanks
/// ignored.
pub fn read_key_file(path: &Path) -> Result<Vec<u64>, CliError> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
    let mut keys = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let key: u64 = line.parse().map_err(|e| {
            CliError::usage(format!(
                "{}:{}: bad key {line:?}: {e}",
                path.display(),
                lineno + 1
            ))
        })?;
        keys.push(key);
    }
    if keys.is_empty() {
        return Err(CliError::usage(format!("{}: no keys", path.display())));
    }
    Ok(keys)
}

fn load_dict(path: &str) -> Result<LowContentionDict, CliError> {
    persist::load_from_path(path).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

/// Replaces an artifact's `"unknown"` (or missing) `git_rev` with the
/// compiled-in revision when one is available, then returns the
/// remaining provenance warnings for the caller to print.
fn refresh_git_rev(doc: &mut serde_json::Value) -> Vec<String> {
    let stale = doc
        .get("git_rev")
        .and_then(|v| v.as_str())
        .map_or(true, |r| r == "unknown");
    if stale && lcds_bench::git_rev() != "unknown" {
        doc["git_rev"] = serde_json::json!(lcds_bench::git_rev());
    }
    lcds_bench::summary::summary_warnings(doc)
}

/// Parses the optional worker-pool size flag: `--threads`, with
/// `--build-threads` accepted as a legacy alias (must be ≥ 1 when given).
/// On `build` the pool runs the construction pipeline; on `bulk` it runs
/// the query engine — the value never affects results, only wall clock.
fn threads_flag(flags: &[(String, String)]) -> Result<Option<usize>, CliError> {
    let (name, v) = match (flag(flags, "threads"), flag(flags, "build-threads")) {
        (Some(v), _) => ("threads", v),
        (None, Some(v)) => ("build-threads", v),
        (None, None) => return Ok(None),
    };
    let t: usize = v
        .parse()
        .map_err(|e| CliError::usage(format!("bad --{name}: {e}")))?;
    if t == 0 {
        return Err(CliError::usage(format!("--{name} must be at least 1")));
    }
    Ok(Some(t))
}

/// Runs `work` on a Rayon pool of `threads` workers (the global pool when
/// `None`), returning the result together with the effective worker count.
///
/// The parallel builder is bit-deterministic in its seed, so the thread
/// count only changes wall-clock time — never the produced dictionary.
fn with_build_pool<T: Send>(
    threads: Option<usize>,
    work: impl FnOnce() -> T + Send,
) -> Result<(T, usize), CliError> {
    match threads {
        None => Ok((work(), rayon::current_num_threads())),
        Some(t) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .map_err(|e| CliError::runtime(format!("cannot start {t} build threads: {e}")))?;
            Ok((pool.install(work), t))
        }
    }
}

fn cmd_build(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    let out_path = flag(&flags, "out").ok_or_else(|| CliError::usage("build needs --out"))?;
    let seed: u64 = flag(&flags, "seed")
        .map(|s| {
            s.parse()
                .map_err(|e| CliError::usage(format!("bad --seed: {e}")))
        })
        .transpose()?
        .unwrap_or(0xC0FFEE);

    let keys = match (flag(&flags, "random"), flag(&flags, "keys")) {
        (Some(n), None) => {
            let n: usize = n
                .parse()
                .map_err(|e| CliError::usage(format!("bad --random: {e}")))?;
            uniform_keys(n, seed ^ 0x5EED)
        }
        (None, Some(path)) => read_key_file(Path::new(path))?,
        _ => {
            return Err(CliError::usage(
                "build needs exactly one of --random N or --keys FILE",
            ))
        }
    };

    let threads = threads_flag(&flags)?;
    let (built, workers) = with_build_pool(threads, || lcds_core::par_build(&keys, seed))?;
    let dict = built.map_err(|e| CliError::runtime(format!("build failed: {e}")))?;
    persist::save_to_path(&dict, out_path)
        .map_err(|e| CliError::runtime(format!("cannot write {out_path}: {e}")))?;
    writeln!(
        out,
        "build: seed {seed}, {workers} rayon thread(s), deterministic parallel pipeline",
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "built n = {} → {} ({} cells, {:.2} words/key, ≤ {} probes/query, {} retries)",
        dict.len(),
        out_path,
        dict.num_cells(),
        dict.words_per_key(),
        dict.max_probes(),
        dict.stats().hash_retries,
    )
    .map_err(io_err)
}

fn cmd_info(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, _) = parse_flags(args)?;
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("info needs a DICT path"))?;
    let dict = load_dict(path)?;
    let p = dict.params();
    writeln!(out, "n           {}", p.n).map_err(io_err)?;
    writeln!(out, "d           {}", p.d).map_err(io_err)?;
    writeln!(out, "r (classes) {}", p.r).map_err(io_err)?;
    writeln!(out, "m (groups)  {}", p.m).map_err(io_err)?;
    writeln!(out, "s (columns) {}", p.s).map_err(io_err)?;
    writeln!(out, "ρ (hist)    {}", p.rho).map_err(io_err)?;
    writeln!(out, "rows        {}", dict.layout().num_rows()).map_err(io_err)?;
    writeln!(out, "cells       {}", dict.num_cells()).map_err(io_err)?;
    writeln!(out, "words/key   {:.3}", dict.words_per_key()).map_err(io_err)?;
    writeln!(out, "probes ≤    {}", dict.max_probes()).map_err(io_err)?;
    Ok(())
}

fn cmd_query(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, _) = parse_flags(args)?;
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("query needs a DICT path"))?;
    if pos.len() < 2 {
        return Err(CliError::usage("query needs at least one KEY"));
    }
    let dict = load_dict(path)?;
    let mut rng = seeded(1);
    for raw in &pos[1..] {
        let key: u64 = raw
            .parse()
            .map_err(|e| CliError::usage(format!("bad key {raw:?}: {e}")))?;
        let hit = dict.contains(key, &mut rng, &mut lcds_cellprobe::sink::NullSink);
        writeln!(out, "{key}\t{}", if hit { "present" } else { "absent" }).map_err(io_err)?;
    }
    Ok(())
}

fn cmd_bulk(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("bulk needs a DICT path"))?;
    if pos.len() > 1 {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[1])));
    }
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let batch: usize = num_flag(&flags, "batch", 1024)?;
    if batch == 0 {
        return Err(CliError::usage("--batch must be at least 1"));
    }
    let dict = load_dict(path)?;
    let probes = match (flag(&flags, "keys"), flag(&flags, "random")) {
        (Some(file), None) => read_key_file(Path::new(file))?,
        (None, Some(n)) => {
            let n: usize = n
                .parse()
                .map_err(|e| CliError::usage(format!("bad --random: {e}")))?;
            // Interleave members (cycled) with fresh negatives so both
            // probe outcomes are exercised and the hit count is meaningful.
            let negs = negative_pool(dict.keys(), n / 2 + 1, seed ^ 0xB07D);
            (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        dict.keys()[(i / 2) % dict.keys().len()]
                    } else {
                        negs[i / 2]
                    }
                })
                .collect()
        }
        _ => {
            return Err(CliError::usage(
                "bulk needs exactly one of --keys FILE or --random N",
            ))
        }
    };

    let cfg = lcds_serve::EngineConfig {
        batch,
        parallel: true,
    };
    let engine = lcds_serve::Engine::new(dict, seed, cfg);
    // Run header straight off the live engine — shard, key, and cell
    // counts come from the structure being served, not from re-reading
    // the persist headers.
    writeln!(
        out,
        "serving n = {} keys, {} shard(s), {} cells, ≤ {} probes/query, kernels {}",
        engine.key_count(),
        engine.num_shards(),
        engine.num_cells(),
        engine.max_probes(),
        lcds_core::KernelConfig::auto().name(),
    )
    .map_err(io_err)?;
    let threads = threads_flag(&flags)?;
    let start = std::time::Instant::now();
    let (answers, workers) = with_build_pool(threads, || engine.bulk_contains(&probes))?;
    let wall = start.elapsed();
    let members = answers.iter().filter(|&&b| b).count();
    writeln!(
        out,
        "{} queries in {:.2} ms ({:.2} Mq/s, batch {batch}, {workers} thread(s)): \
         {members} present, {} absent",
        probes.len(),
        wall.as_secs_f64() * 1e3,
        probes.len() as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
        probes.len() - members,
    )
    .map_err(io_err)
}

/// `build-ordered`: builds the replicated ordered dictionary (predecessor
/// / rank / range-count) over a key set and persists it. The layout is a
/// pure function of (keys, scheme) — bit-identical at every thread count —
/// so `--threads` only buys build wall clock.
fn cmd_build_ordered(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    let out_path =
        flag(&flags, "out").ok_or_else(|| CliError::usage("build-ordered needs --out"))?;
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let scheme = ord_scheme_flag(&flags)?;
    let keys = match (flag(&flags, "random"), flag(&flags, "keys")) {
        (Some(n), None) => {
            let n: usize = n
                .parse()
                .map_err(|e| CliError::usage(format!("bad --random: {e}")))?;
            // Same derivation as `build --random` / `serve-net --random`,
            // so the ordered and membership artifacts share key sets.
            uniform_keys(n, seed ^ 0x5EED)
        }
        (None, Some(path)) => read_key_file(Path::new(path))?,
        _ => {
            return Err(CliError::usage(
                "build-ordered needs exactly one of --random N or --keys FILE",
            ))
        }
    };

    let threads = threads_flag(&flags)?;
    let (built, workers) = with_build_pool(threads, || lcds_ordered::par_build(&keys, scheme))?;
    let dict = built.map_err(|e| CliError::runtime(format!("ordered build failed: {e}")))?;
    lcds_ordered::persist::save_to_path(&dict, out_path)
        .map_err(|e| CliError::runtime(format!("cannot write {out_path}: {e}")))?;
    writeln!(
        out,
        "build-ordered: {} scheme, seed {seed}, {workers} rayon thread(s), \
         deterministic parallel pipeline",
        dict.scheme().label(),
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "built ordered n = {} → {out_path} ({} level(s) {:?}, {} cells, span [{} .. {}])",
        dict.len(),
        dict.num_levels(),
        dict.level_sizes(),
        dict.table().num_cells(),
        dict.min_key(),
        dict.max_key(),
    )
    .map_err(io_err)
}

/// Parses the optional `--scheme` replica-choice flag for the ordered
/// commands (`replicated`, the low-contention default, or `adversarial`,
/// which pins every descent to replica 0).
fn ord_scheme_flag(flags: &[(String, String)]) -> Result<lcds_ordered::OrdScheme, CliError> {
    match flag(flags, "scheme") {
        None => Ok(lcds_ordered::OrdScheme::Replicated),
        Some(s) => lcds_ordered::OrdScheme::parse(s).ok_or_else(|| {
            CliError::usage(format!(
                "bad --scheme {s:?} (expected replicated or adversarial)"
            ))
        }),
    }
}

/// `bulk-ordered`: batched predecessor / rank / range-count queries via
/// the ordered serve engine — the same SoA descent-plan probe path the
/// TCP server runs, timed end to end.
fn cmd_bulk_ordered(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    if pos.len() > 1 {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[1])));
    }
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let batch: usize = num_flag(&flags, "batch", 1024)?;
    if batch == 0 {
        return Err(CliError::usage("--batch must be at least 1"));
    }
    let op = flag(&flags, "op").unwrap_or("all");
    if !matches!(op, "predecessor" | "rank" | "range-count" | "all") {
        return Err(CliError::usage(format!(
            "bad --op {op:?} (expected predecessor, rank, range-count, or all)"
        )));
    }
    let dict = match (pos.first(), flag(&flags, "random")) {
        (Some(path), None) => {
            if flag(&flags, "scheme").is_some() {
                return Err(CliError::usage(
                    "--scheme only applies to --random (a persisted ordered DICT \
                     carries its scheme in the file)",
                ));
            }
            lcds_ordered::persist::load_from_path(path)
                .map_err(|e| CliError::runtime(format!("{path}: {e}")))?
        }
        (None, Some(n)) => {
            let n: usize = n
                .parse()
                .map_err(|e| CliError::usage(format!("bad --random: {e}")))?;
            let scheme = ord_scheme_flag(&flags)?;
            lcds_ordered::par_build(&uniform_keys(n, seed ^ 0x5EED), scheme)
                .map_err(|e| CliError::runtime(format!("ordered build failed: {e}")))?
        }
        _ => {
            return Err(CliError::usage(
                "bulk-ordered needs exactly one of an ordered DICT path or --random N",
            ))
        }
    };

    // Probes: an explicit file, or Q seed-derived uniform points spanning
    // the whole key space (so predecessor hits the span boundaries too).
    if flag(&flags, "keys").is_some() && flag(&flags, "queries").is_some() {
        return Err(CliError::usage(
            "--queries does not combine with --keys (the file is the query set)",
        ));
    }
    let probes = match flag(&flags, "keys") {
        Some(file) => read_key_file(Path::new(file))?,
        None => {
            let q: usize = num_flag(&flags, "queries", 10_000)?;
            if q == 0 {
                return Err(CliError::usage("--queries must be at least 1"));
            }
            uniform_keys(q, seed ^ 0x0D0E)
        }
    };

    let cfg = lcds_serve::EngineConfig {
        batch,
        parallel: true,
    };
    let engine = lcds_serve::OrderedEngine::new(dict, seed, cfg);
    writeln!(
        out,
        "serving ordered n = {} keys ({}), {} level(s), {} cells, \
         ≤ {} probes/query, kernels {}",
        engine.key_count(),
        engine.dict().scheme().label(),
        engine.dict().num_levels(),
        engine.num_cells(),
        engine.max_probes(),
        lcds_core::KernelConfig::auto().name(),
    )
    .map_err(io_err)?;

    let rate =
        |count: usize, wall: std::time::Duration| count as f64 / wall.as_secs_f64().max(1e-9) / 1e6;
    if matches!(op, "predecessor" | "all") {
        let start = std::time::Instant::now();
        let answers = engine.bulk_predecessor(&probes);
        let wall = start.elapsed();
        let found = answers
            .iter()
            .filter(|&&p| p != lcds_ordered::NO_PREDECESSOR)
            .count();
        writeln!(
            out,
            "predecessor: {} queries in {:.2} ms ({:.2} Mq/s, batch {batch}): \
             {found} with a predecessor, {} below min",
            probes.len(),
            wall.as_secs_f64() * 1e3,
            rate(probes.len(), wall),
            probes.len() - found,
        )
        .map_err(io_err)?;
    }
    if matches!(op, "rank" | "all") {
        let start = std::time::Instant::now();
        let answers = engine.bulk_rank(&probes);
        let wall = start.elapsed();
        let mean = answers.iter().sum::<u64>() as f64 / answers.len().max(1) as f64;
        writeln!(
            out,
            "rank: {} queries in {:.2} ms ({:.2} Mq/s, batch {batch}): \
             mean rank {mean:.1} of {}",
            probes.len(),
            wall.as_secs_f64() * 1e3,
            rate(probes.len(), wall),
            engine.key_count(),
        )
        .map_err(io_err)?;
    }
    if matches!(op, "range-count" | "all") {
        // Consecutive probe pairs, min/max-normalized — each pair is one
        // range query over the same point distribution.
        let pairs: Vec<(u64, u64)> = probes
            .chunks_exact(2)
            .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
            .collect();
        if pairs.is_empty() {
            return Err(CliError::usage(
                "range-count needs at least 2 probe keys (consecutive pairs \
                 become [lo, hi] ranges)",
            ));
        }
        let start = std::time::Instant::now();
        let answers = engine.bulk_range_count(&pairs);
        let wall = start.elapsed();
        let nonempty = answers.iter().filter(|&&c| c > 0).count();
        let covered: u64 = answers.iter().sum();
        writeln!(
            out,
            "range-count: {} range(s) in {:.2} ms ({:.2} Mq/s, batch {batch}): \
             {nonempty} non-empty, {covered} stored keys covered",
            pairs.len(),
            wall.as_secs_f64() * 1e3,
            rate(pairs.len(), wall),
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn cmd_audit(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos
        .first()
        .ok_or_else(|| CliError::usage("audit needs a DICT path"))?;
    let dict = load_dict(path)?;

    let pool = if let Some(theta) = flag(&flags, "zipf") {
        let theta: f64 = theta
            .parse()
            .map_err(|e| CliError::usage(format!("bad --zipf: {e}")))?;
        zipf_over_keys(dict.keys(), theta, 0xA0D1).pool()
    } else if let Some(m) = flag(&flags, "negatives") {
        let m: usize = m
            .parse()
            .map_err(|e| CliError::usage(format!("bad --negatives: {e}")))?;
        QueryPool::uniform(&negative_pool(dict.keys(), m, 0xA0D2))
    } else {
        QueryPool::uniform(dict.keys())
    };

    let prof = exact_contention(&dict, &pool);
    writeln!(
        out,
        "max per-step contention ratio: {:.2}  (1.0 = perfectly flat over {} cells)",
        prof.max_step_ratio(),
        prof.num_cells
    )
    .map_err(io_err)?;
    writeln!(out, "gini: {:.4}\n\nper-row breakdown:", prof.gini()).map_err(io_err)?;
    write!(out, "{}", row_report(&dict, &pool).to_text()).map_err(io_err)?;
    Ok(())
}

/// Parses an optional numeric flag with a default.
fn num_flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match flag(flags, name) {
        Some(v) => v
            .parse()
            .map_err(|e| CliError::usage(format!("bad --{name}: {e}"))),
        None => Ok(default),
    }
}

fn cmd_obs(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    let n: usize = num_flag(&flags, "random", 4096)?;
    let queries: u64 = num_flag(&flags, "queries", 50_000)?;
    let theta: f64 = num_flag(&flags, "zipf", 1.1)?;
    let period: u64 = num_flag(&flags, "period", 64)?;
    let k: usize = num_flag(&flags, "topk", 16)?;
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let format = flag(&flags, "format").unwrap_or("table");
    if !matches!(format, "table" | "prom" | "jsonl") {
        return Err(CliError::usage(format!(
            "bad --format {format:?} (expected table, prom, or jsonl)"
        )));
    }

    // Everything below records into the global registry/event log so the
    // builder's phase spans land in the same snapshot as the query-path
    // metrics.
    lcds_obs::set_enabled(true);

    let keys = uniform_keys(n, seed ^ 0x5EED);
    let mut rng = seeded(seed);
    let dict = lcds_core::build(&keys, &mut rng)
        .map_err(|e| CliError::runtime(format!("build failed: {e}")))?;

    // Production-path observability: a bounded top-K hot-cell sketch fed
    // by a 1-in-`period` sampler — O(topk) memory however many cells the
    // structure has, instead of the O(s) a CountingSink would need.
    let dist = zipf_over_keys(dict.keys(), theta, seed ^ 0xD157);
    let mut topk = lcds_obs::TopKSink::new(k.max(1));
    let mut sampler = lcds_obs::SamplingSink::new(&mut topk, period, seed ^ 0x5A);
    let start = std::time::Instant::now();
    for _ in 0..queries {
        let x = dist.sample(&mut rng);
        sampler.begin_query();
        let _ = dict.contains(x, &mut rng, &mut sampler);
    }
    let wall = start.elapsed();
    let (seen, sampled) = (sampler.seen(), sampler.sampled());
    drop(sampler);

    let reg = lcds_obs::global();
    reg.counter(lcds_obs::names::QUERIES_TOTAL).add(queries);
    reg.counter(lcds_obs::names::QUERY_PROBES_TOTAL).add(seen);
    reg.counter(lcds_obs::names::QUERY_PROBES_SAMPLED_TOTAL)
        .add(sampled);
    reg.gauge(lcds_obs::names::QUERY_QPS)
        .set(queries as f64 / wall.as_secs_f64().max(1e-9));
    reg.gauge(lcds_obs::names::HOT_CELL_SHARE)
        .set(topk.hottest_share());
    for hc in topk.top(k) {
        reg.gauge(&format!(
            "{}{{cell=\"{}\"}}",
            lcds_obs::names::HOT_CELL_PROBES,
            hc.cell
        ))
        .set(hc.count as f64);
        lcds_obs::emit(
            lcds_obs::names::EVENT_HOT_CELL,
            serde_json::json!({
                "cell": hc.cell,
                "estimated_probes": hc.count,
                "guaranteed_probes": hc.guaranteed(),
                "share_of_sampled": hc.count as f64 / topk.total().max(1) as f64,
            }),
        );
    }

    match format {
        "prom" => {
            let text = lcds_obs::export::to_prometheus(&reg.snapshot());
            write!(out, "{text}").map_err(io_err)?;
        }
        "jsonl" => {
            let text = lcds_obs::export::events_to_jsonl(&lcds_obs::global_events().events());
            write!(out, "{text}").map_err(io_err)?;
        }
        _ => {
            writeln!(
                out,
                "n = {} keys, {} zipf({theta}) queries in {:.1} ms ({} probes, {} sampled at 1/{period})",
                dict.len(),
                queries,
                wall.as_secs_f64() * 1e3,
                seen,
                sampled,
            )
            .map_err(io_err)?;
            writeln!(
                out,
                "hot-cell share (of sampled probes): {:.4}  [1/s optimum = {:.6}]",
                topk.hottest_share(),
                1.0 / dict.num_cells() as f64
            )
            .map_err(io_err)?;
            writeln!(out, "\ntop-{k} cells (space-saving, capacity {k}):").map_err(io_err)?;
            writeln!(out, "cell\testimate\tguaranteed").map_err(io_err)?;
            for hc in topk.top(k) {
                writeln!(out, "{}\t{}\t{}", hc.cell, hc.count, hc.guaranteed()).map_err(io_err)?;
            }
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    let n: usize = num_flag(&flags, "random", 4096)?;
    let queries: usize = num_flag(&flags, "queries", 20_000)?;
    let batch: usize = num_flag(&flags, "batch", 1024)?;
    if batch == 0 {
        return Err(CliError::usage("--batch must be at least 1"));
    }
    let sample: u64 = num_flag(&flags, "sample", 8)?;
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let out_path = flag(&flags, "out");
    if let Some(q) = flag(&flags, "net") {
        let net_queries: usize = q
            .parse()
            .map_err(|e| CliError::usage(format!("bad --net: {e}")))?;
        if net_queries == 0 {
            return Err(CliError::usage("--net must be at least 1"));
        }
        return cmd_trace_net(n, net_queries, batch, sample, seed, out_path, out);
    }

    // The observatory: metrics on (build spans need the registry), then
    // the trace recorder with the chosen 1-in-`sample` batch stride.
    lcds_obs::set_enabled(true);
    lcds_obs::trace::set_sample_period(sample);
    lcds_obs::trace::set_tracing(true);

    let keys = uniform_keys(n, seed ^ 0x5EED);
    let dict = lcds_core::par_build(&keys, seed)
        .map_err(|e| CliError::runtime(format!("build failed: {e}")))?;

    // Interleave members with negatives, as `bulk --random` does, so the
    // traced batches exercise both probe outcomes.
    let negs = negative_pool(dict.keys(), queries / 2 + 1, seed ^ 0xB07D);
    let probes: Vec<u64> = (0..queries)
        .map(|i| {
            if i % 2 == 0 {
                dict.keys()[(i / 2) % dict.keys().len()]
            } else {
                negs[i / 2]
            }
        })
        .collect();
    let cfg = lcds_serve::EngineConfig {
        batch,
        parallel: false, // deterministic batch order in the exported JSON
    };
    let answers = lcds_serve::bulk_contains(&dict, &probes, seed, cfg);
    lcds_obs::trace::set_tracing(false);

    let records = lcds_obs::trace::global_traces().drain();
    let spans = records
        .iter()
        .filter(|r| matches!(r, lcds_obs::trace::TraceRecord::Span(_)))
        .count();
    let json = lcds_obs::trace_export::to_chrome_trace_string(&records);
    match out_path {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
            writeln!(
                out,
                "traced {} queries ({} present): {} events ({} build spans, \
                 {} query batches sampled 1-in-{sample}) → {path}",
                probes.len(),
                answers.iter().filter(|&&b| b).count(),
                records.len(),
                spans,
                records.len() - spans,
            )
            .map_err(io_err)?;
        }
        None => {
            write!(out, "{json}").map_err(io_err)?;
        }
    }
    Ok(())
}

/// `trace --net`: traces one whole TCP serve run end to end. Build and
/// engine-batch spans, the server's queue-wait and worker-service spans,
/// and the client's request spans all land in a single chrome-trace
/// export — joinable because request ids double as span ids.
#[allow(clippy::too_many_arguments)]
fn cmd_trace_net(
    n: usize,
    queries: usize,
    batch: usize,
    sample: u64,
    seed: u64,
    out_path: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    use lcds_net::client::Client;
    use lcds_net::server::{serve, ServerConfig};
    use std::sync::Arc;

    lcds_obs::set_enabled(true);
    lcds_obs::trace::set_sample_period(sample);
    lcds_obs::trace::set_tracing(true);

    let keys = uniform_keys(n, seed ^ 0x5EED);
    let dict = lcds_core::par_build(&keys, seed)
        .map_err(|e| CliError::runtime(format!("build failed: {e}")))?;
    let negs = negative_pool(dict.keys(), queries / 2 + 1, seed ^ 0xB07D);
    let probes: Vec<u64> = (0..queries)
        .map(|i| {
            if i % 2 == 0 {
                dict.keys()[(i / 2) % dict.keys().len()]
            } else {
                negs[i / 2]
            }
        })
        .collect();
    let engine = Arc::new(lcds_serve::Engine::new(
        dict,
        seed,
        lcds_serve::EngineConfig::with_batch(batch),
    ));
    let handle = serve("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())
        .map_err(|e| CliError::runtime(format!("cannot bind loopback server: {e}")))?;

    // One connection: request ids are allocated per connection, so a
    // single client keeps span ids unique across the run, and one
    // request per `batch`-sized chunk gives each chunk its own
    // client/queue/service triple.
    let mut hits = 0usize;
    let mut client = Client::connect(handle.local_addr())
        .map_err(|e| CliError::runtime(format!("connect: {e}")))?;
    for chunk in probes.chunks(batch.max(1)) {
        let bits = client
            .bulk_contains(chunk, seed)
            .map_err(|e| CliError::runtime(format!("bulk_contains over TCP: {e}")))?;
        hits += bits.iter().filter(|&&b| b).count();
    }
    drop(client);
    handle.shutdown();
    lcds_obs::trace::set_tracing(false);

    let records = lcds_obs::trace::global_traces().drain();
    let count_spans = |name: &str| {
        records
            .iter()
            .filter(|r| matches!(r, lcds_obs::trace::TraceRecord::Span(s) if s.name == name))
            .count()
    };
    let client_spans = count_spans(lcds_obs::names::NET_SPAN_CLIENT);
    let queue_spans = count_spans(lcds_obs::names::NET_SPAN_QUEUE);
    let service_spans = count_spans(lcds_obs::names::NET_SPAN_SERVICE);
    let json = lcds_obs::trace_export::to_chrome_trace_string(&records);
    match out_path {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
            writeln!(
                out,
                "traced {} queries ({hits} present) over TCP: {} events \
                 ({client_spans} client, {queue_spans} queue, {service_spans} service spans) → {path}",
                probes.len(),
                records.len(),
            )
            .map_err(io_err)?;
        }
        None => {
            write!(out, "{json}").map_err(io_err)?;
        }
    }
    Ok(())
}

fn cmd_watch(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use lcds_baselines::{FksConfig, FksDict};
    use lcds_workloads::adversarial::adversarial_fks_keys;
    use lcds_workloads::rng::FirstWordRng;

    let (pos, flags) = parse_flags(args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    let scheme = flag(&flags, "scheme").unwrap_or("lcd");
    let n: usize = num_flag(&flags, "random", 4096)?;
    let queries: u64 = num_flag(&flags, "queries", 50_000)?;
    let theta: f64 = num_flag(&flags, "zipf", 0.5)?;
    let multiple: f64 = num_flag(&flags, "multiple", 3.0)?;
    if multiple <= 0.0 {
        return Err(CliError::usage("--multiple must be positive"));
    }
    let interval: u64 = num_flag(&flags, "interval", 4096)?;
    let k: usize = num_flag(&flags, "topk", 8)?;
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let format = flag(&flags, "format").unwrap_or("table");
    if !matches!(format, "table" | "prom" | "jsonl") {
        return Err(CliError::usage(format!(
            "bad --format {format:?} (expected table, prom, or jsonl)"
        )));
    }

    lcds_obs::set_enabled(true);
    // Build the watched scheme. The envelope is the *theoretical* hottest-
    // cell ratio the scheme promises: Theorem 3's O(1)·s/n for the §2
    // dictionary, the balls-in-bins ln n/ln ln n expectation for an
    // honestly-built FKS — which the adversarial instance blows through.
    let stored = match scheme {
        "fks-adversarial" => adversarial_fks_keys(n.max(4), seed),
        _ => uniform_keys(n, seed ^ 0x5EED),
    };
    // Each scheme names its envelope; the name is resolved through the
    // observatory's registry, which hard-errors on anything it does not
    // know instead of silently watching against a default.
    let (dict, envelope_name): (Box<dyn CellProbeDict>, &str) = match scheme {
        "lcd" => {
            let mut rng = seeded(seed);
            let d = lcds_core::build(&stored, &mut rng)
                .map_err(|e| CliError::runtime(format!("build failed: {e}")))?;
            (Box::new(d), "theorem3")
        }
        "fks" => {
            let mut rng = seeded(seed);
            let d = FksDict::build_default(&stored, &mut rng)
                .map_err(|e| CliError::runtime(format!("fks build failed: {e}")))?;
            (Box::new(d), "balls-in-bins")
        }
        "fks-adversarial" => {
            let mut rng = FirstWordRng::new(seed, seeded(seed ^ 99));
            let d = FksDict::build(&stored, FksConfig::default(), &mut rng)
                .map_err(|e| CliError::runtime(format!("adversarial fks build failed: {e}")))?;
            (Box::new(d), "balls-in-bins")
        }
        other => {
            return Err(CliError::usage(format!(
                "bad --scheme {other:?} (expected lcd, fks, or fks-adversarial)"
            )))
        }
    };
    let cells = dict.num_cells();
    let envelope = lcds_obs::heatmap::envelope_named(envelope_name, cells, n as u64)
        .map_err(|e| CliError::runtime(e.to_string()))?;

    let dist = zipf_over_keys(&stored, theta, seed ^ 0xD157);
    let mut rng = seeded(seed ^ 0x0B5);
    let mut hm = lcds_obs::Heatmap::with_defaults(seed);
    let mut wd = lcds_obs::Watchdog::new(envelope, multiple);
    for q in 0..queries {
        let x = dist.sample(&mut rng);
        hm.begin_query();
        let _ = dict.contains(x, &mut rng, &mut hm);
        if interval > 0 && (q + 1) % interval == 0 {
            if let Some(a) = wd.check(&hm, cells) {
                if format == "table" {
                    writeln!(
                        out,
                        "watchdog: cell {} at ratio {:.1} > {:.1} ({multiple}× the \
                         {envelope:.1} envelope) after {} probes",
                        a.cell,
                        a.ratio,
                        wd.threshold(),
                        a.probes,
                    )
                    .map_err(io_err)?;
                }
            }
        }
    }
    let final_alarm = wd.check(&hm, cells);

    match format {
        "prom" => {
            let mut text = lcds_obs::export::heatmap_to_prometheus(&hm, k);
            let _ = std::fmt::Write::write_fmt(
                &mut text,
                format_args!(
                    "# TYPE {} counter\n{} {}\n",
                    lcds_obs::names::WATCHDOG_TRIPS_TOTAL,
                    lcds_obs::names::WATCHDOG_TRIPS_TOTAL,
                    wd.trips()
                ),
            );
            write!(out, "{text}").map_err(io_err)?;
        }
        "jsonl" => {
            let mut js = lcds_obs::export::heatmap_to_json(&hm, k);
            js["scheme"] = serde_json::json!(dict.name());
            js["ratio"] = serde_json::json!(hm.ratio(cells));
            js["envelope"] = serde_json::json!(envelope);
            js["threshold"] = serde_json::json!(wd.threshold());
            js["watchdog_trips"] = serde_json::json!(wd.trips());
            writeln!(out, "{js}").map_err(io_err)?;
        }
        _ => {
            writeln!(
                out,
                "{}: n = {}, {} cells, {} zipf({theta}) queries, {} probes",
                dict.name(),
                stored.len(),
                cells,
                hm.queries(),
                hm.probes(),
            )
            .map_err(io_err)?;
            writeln!(
                out,
                "Φ̂ = {:.6} (hottest-cell probe share), ratio Φ̂·s = {:.1} \
                 [envelope {envelope:.1}, alarm above {:.1}]",
                hm.phi_hat(),
                hm.ratio(cells),
                wd.threshold(),
            )
            .map_err(io_err)?;
            writeln!(
                out,
                "watchdog trips: {}{}",
                wd.trips(),
                if final_alarm.is_some() {
                    "  ** CONTENTION ALARM **"
                } else {
                    ""
                }
            )
            .map_err(io_err)?;
            writeln!(out, "\ntop-{k} cells (count-min estimates):").map_err(io_err)?;
            writeln!(out, "cell\testimate\tguaranteed").map_err(io_err)?;
            for hc in hm.top(k) {
                writeln!(out, "{}\t{}\t{}", hc.cell, hc.count, hc.guaranteed()).map_err(io_err)?;
            }
        }
    }
    Ok(())
}

fn cmd_serve_net(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use lcds_net::server::{serve_on_any_with, Served, ServerConfig};
    use lcds_obs::{PhiWindow, SloConfig, TimeSeries, TimeSeriesConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // `--dynamic` / `--ordered` are bare switches; strip them before the
    // value-per-flag parser.
    let mut args = args.to_vec();
    let dynamic = args.iter().any(|a| a == "--dynamic");
    args.retain(|a| a != "--dynamic");
    let ordered = args.iter().any(|a| a == "--ordered");
    args.retain(|a| a != "--ordered");
    if dynamic && ordered {
        return Err(CliError::usage(
            "--dynamic does not combine with --ordered (the ordered engine's \
             key set is fixed at build time)",
        ));
    }
    let (pos, flags) = parse_flags(&args)?;
    if pos.len() > 1 {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[1])));
    }
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let batch: usize = num_flag(&flags, "batch", 1024)?;
    if batch == 0 {
        return Err(CliError::usage("--batch must be at least 1"));
    }
    let workers: usize = num_flag(&flags, "workers", 4)?;
    if workers == 0 {
        return Err(CliError::usage("--workers must be at least 1"));
    }
    let queue_depth: usize = num_flag(&flags, "queue-depth", 64)?;
    if queue_depth == 0 {
        return Err(CliError::usage("--queue-depth must be at least 1"));
    }
    let duration: f64 = num_flag(&flags, "duration", 0.0)?;
    let multiple: f64 = num_flag(&flags, "multiple", 3.0)?;
    if multiple <= 0.0 {
        return Err(CliError::usage("--multiple must be positive"));
    }
    let sample: u64 = num_flag(&flags, "sample", 8)?;
    let telemetry_window: f64 = num_flag(&flags, "telemetry-window", 0.0)?;
    if telemetry_window < 0.0 || !telemetry_window.is_finite() {
        return Err(CliError::usage(
            "--telemetry-window must be a positive number of seconds",
        ));
    }
    let recorder_dir = flag(&flags, "recorder").map(str::to_string);
    let slo_p99_ms: f64 = num_flag(&flags, "slo-p99-ms", 0.0)?;
    let slo_ratio: f64 = num_flag(&flags, "slo-ratio", 0.0)?;
    if telemetry_window == 0.0 {
        if recorder_dir.is_some() {
            return Err(CliError::usage(
                "--recorder needs --telemetry-window (the bundle is built from the window ring)",
            ));
        }
        if slo_p99_ms > 0.0 || slo_ratio > 0.0 {
            return Err(CliError::usage(
                "SLO envelopes need --telemetry-window (they watch per-window deltas)",
            ));
        }
    }
    let addr = flag(&flags, "addr").unwrap_or("127.0.0.1:0");

    let cfg = lcds_serve::EngineConfig {
        batch,
        parallel: true,
    };
    if dynamic && flag(&flags, "shards").is_some() {
        return Err(CliError::usage(
            "--shards does not combine with --dynamic (the generation-swapped \
             engine serves a single dictionary)",
        ));
    }
    if ordered && flag(&flags, "shards").is_some() {
        return Err(CliError::usage(
            "--shards does not combine with --ordered (the wire engine serves \
             one replicated ordered dictionary)",
        ));
    }
    // Replica-choice scheme for `--ordered --random` in-process builds;
    // a persisted ordered DICT carries its scheme in the file.
    if flag(&flags, "scheme").is_some() && !ordered {
        return Err(CliError::usage(
            "--scheme only applies to --ordered (membership servers take \
             their scheme from the DICT)",
        ));
    }
    let ord_scheme = ord_scheme_flag(&flags)?;
    // `--dynamic` builds the same key set into a DynamicEngine; seed plays
    // both roles (structure evolution and query randomness), so a mirror
    // DynamicLcd with this seed and parallel rebuilds replays the server.
    let served = match (pos.first(), flag(&flags, "random")) {
        (Some(path), None) => {
            if flag(&flags, "shards").is_some() {
                return Err(CliError::usage(
                    "--shards only applies to --random (sharded dictionaries are built \
                     in-process, not loaded from a DICT file)",
                ));
            }
            if ordered {
                let d = lcds_ordered::persist::load_from_path(path)
                    .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
                Served::Ordered(Arc::new(lcds_serve::OrderedEngine::new(d, seed, cfg)))
            } else if dynamic {
                let d = load_dict(path)?;
                let e = lcds_serve::DynamicEngine::new(d.keys(), seed, seed, cfg)
                    .map_err(|e| CliError::runtime(format!("dynamic build failed: {e}")))?;
                Served::Dynamic(Arc::new(e))
            } else {
                let d = load_dict(path)?;
                Served::Static(Arc::new(lcds_serve::Engine::new(d, seed, cfg)))
            }
        }
        (None, Some(n)) => {
            let n: usize = n
                .parse()
                .map_err(|e| CliError::usage(format!("bad --random: {e}")))?;
            let shards: usize = num_flag(&flags, "shards", 1)?;
            // Same key derivation as `build --random`, so a loadgen run
            // with the same seed queries exactly the stored set.
            let keys = uniform_keys(n, seed ^ 0x5EED);
            if ordered {
                let d = lcds_ordered::par_build(&keys, ord_scheme)
                    .map_err(|e| CliError::runtime(format!("ordered build failed: {e}")))?;
                Served::Ordered(Arc::new(lcds_serve::OrderedEngine::new(d, seed, cfg)))
            } else if dynamic {
                let e = lcds_serve::DynamicEngine::new(&keys, seed, seed, cfg)
                    .map_err(|e| CliError::runtime(format!("dynamic build failed: {e}")))?;
                Served::Dynamic(Arc::new(e))
            } else if shards <= 1 {
                let d = lcds_core::par_build(&keys, seed)
                    .map_err(|e| CliError::runtime(format!("build failed: {e}")))?;
                Served::Static(Arc::new(lcds_serve::Engine::new(d, seed, cfg)))
            } else {
                let s = lcds_serve::ShardedLcd::par_build(&keys, shards, seed ^ 0x51AB, seed)
                    .map_err(|e| CliError::runtime(format!("sharded build failed: {e}")))?;
                Served::Static(Arc::new(lcds_serve::Engine::sharded(s, seed, cfg)))
            }
        }
        _ => {
            return Err(CliError::usage(
                "serve-net needs exactly one of a DICT path or --random N",
            ))
        }
    };
    let dyn_engine = match &served {
        Served::Dynamic(e) => Some(Arc::clone(e)),
        Served::Static(_) | Served::Ordered(_) => None,
    };
    let (key_count, num_shards, num_cells, max_probes) = match &served {
        Served::Static(e) => (e.key_count(), e.num_shards(), e.num_cells(), e.max_probes()),
        Served::Dynamic(e) => (e.key_count(), 1, e.num_cells(), e.max_probes()),
        Served::Ordered(e) => (e.key_count(), 1, e.num_cells(), e.max_probes()),
    };

    writeln!(
        out,
        "serve-net{}: n = {key_count} keys, {num_shards} shard(s), {num_cells} cells, \
         ≤ {max_probes} probes/query, seed {seed}, kernels {}",
        if dynamic {
            " (dynamic)"
        } else if ordered {
            " (ordered)"
        } else {
            ""
        },
        lcds_core::KernelConfig::auto().name(),
    )
    .map_err(io_err)?;

    // Validate the watch envelope *before* binding: an unknown name is a
    // usage error, never a silently defaulted watchdog.
    let watch = flag(&flags, "watch")
        .map(|name| {
            lcds_obs::Watchdog::for_envelope(name, num_cells, key_count as u64, multiple)
                .map(|wd| (name.to_string(), wd))
                .map_err(|e| {
                    CliError::usage(format!(
                        "bad --watch: {e} (valid: {})",
                        lcds_obs::heatmap::ENVELOPE_NAMES.join(", ")
                    ))
                })
        })
        .transpose()?;
    // Both the watchdog and the telemetry sampler feed off the sampled
    // batch-trace stream, so either one turns tracing on.
    if watch.is_some() || telemetry_window > 0.0 {
        lcds_obs::set_enabled(true);
        lcds_obs::trace::set_sample_period(sample.max(1));
        lcds_obs::trace::set_tracing(true);
    }
    let ts = (telemetry_window > 0.0).then(|| {
        let ts = TimeSeries::for_global(TimeSeriesConfig {
            window: Duration::from_secs_f64(telemetry_window),
            capacity: 120,
        });
        if slo_p99_ms > 0.0 || slo_ratio > 0.0 {
            ts.set_slo(SloConfig {
                p99_ns: if slo_p99_ms > 0.0 {
                    (slo_p99_ms * 1e6) as u64
                } else {
                    u64::MAX
                },
                max_ratio: if slo_ratio > 0.0 {
                    slo_ratio
                } else {
                    f64::INFINITY
                },
                ..SloConfig::default()
            });
        }
        Arc::new(ts)
    });

    let cells = num_cells;
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| CliError::runtime(format!("cannot bind {addr}: {e}")))?;
    let handle = serve_on_any_with(
        listener,
        served,
        ServerConfig {
            workers,
            queue_depth,
            ..ServerConfig::default()
        },
        ts.clone(),
    )
    .map_err(|e| CliError::runtime(format!("cannot serve on {addr}: {e}")))?;
    let bound = handle.local_addr();
    writeln!(
        out,
        "listening on {bound} ({workers} worker(s), queue depth {queue_depth})"
    )
    .map_err(io_err)?;
    if let Some(port_file) = flag(&flags, "port-file") {
        std::fs::write(port_file, format!("{bound}\n"))
            .map_err(|e| CliError::runtime(format!("cannot write {port_file}: {e}")))?;
    }

    // One unified sampler thread serves every background consumer of the
    // observatory stream — two threads calling `global_traces().drain()`
    // would split the records between them. It folds sampled batch
    // traces into a Φ-heatmap, checks the watchdog envelope (when
    // `--watch` is set), closes a telemetry window every
    // `--telemetry-window` seconds (when set), and dumps flight-recorder
    // bundles on watchdog trips, SLO breach transitions, and the final
    // drain (when `--recorder` is set).
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let recorder = recorder_dir
        .as_ref()
        .map(|dir| lcds_obs::FlightRecorder::new(dir));
    let run_header = serde_json::json!({
        "cmd": "serve-net",
        "kernel_config": lcds_core::KernelConfig::auto().name(),
        "git_rev": lcds_bench::git_rev(),
        "keys": key_count,
        "cells": num_cells,
        "shards": num_shards,
        "max_probes": max_probes,
        "seed": seed,
        "dynamic": dynamic,
        "workers": workers,
        "queue_depth": queue_depth,
    });
    let sampler_thread = (watch.is_some() || ts.is_some()).then(|| {
        let stop = Arc::clone(&sampler_stop);
        let ts = ts.clone();
        let mut watch = watch;
        let extra = run_header.clone();
        std::thread::spawn(move || {
            const TOPK: usize = 8;
            let mut hm = lcds_obs::Heatmap::with_defaults(0x5EB7);
            let mut trips_seen = 0u64;
            let window = Duration::from_secs_f64(if telemetry_window > 0.0 {
                telemetry_window
            } else {
                1.0
            });
            let tick = (window / 4).clamp(Duration::from_millis(10), Duration::from_millis(100));
            let mut next_window = Instant::now() + window;
            loop {
                let done = stop.load(Ordering::SeqCst);
                for rec in lcds_obs::trace::global_traces().drain() {
                    if let lcds_obs::trace::TraceRecord::Batch(b) = rec {
                        let cells_probed: Vec<u64> = b.probes.iter().map(|p| p.cell).collect();
                        hm.absorb_trace(&cells_probed, 0);
                    }
                }
                if let Some((_, wd)) = watch.as_mut() {
                    let _ = wd.check(&hm, cells);
                    if wd.trips() > trips_seen {
                        trips_seen = wd.trips();
                        if let (Some(r), Some(ts)) = (&recorder, &ts) {
                            let _ = r.dump_live("watchdog", extra.clone(), ts, &hm.top(TOPK));
                        }
                    }
                }
                if let Some(ts) = &ts {
                    // A final short window on drain, so the last partial
                    // interval of traffic reaches the ring and any bundle.
                    if done || Instant::now() >= next_window {
                        let phi = PhiWindow::from_heatmap(&hm, cells, TOPK);
                        let (_, transition) = ts.sample_with_phi(Some(phi));
                        if transition.is_some_and(|t| t.breached) {
                            if let Some(r) = &recorder {
                                let _ = r.dump_live("slo", extra.clone(), ts, &hm.top(TOPK));
                            }
                        }
                        while next_window <= Instant::now() {
                            next_window += window;
                        }
                    }
                }
                if done {
                    if let (Some(r), Some(ts)) = (&recorder, &ts) {
                        let _ = r.dump_live("drain", extra.clone(), ts, &hm.top(TOPK));
                    }
                    return (hm, watch);
                }
                std::thread::sleep(tick);
            }
        })
    });

    if duration > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(duration));
    } else {
        // Serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    let stats = handle.stats_arc();
    handle.shutdown();
    writeln!(
        out,
        "served {:.1}s: {} connection(s), {} request(s), {} shed",
        duration,
        stats.accepted.load(Ordering::Relaxed),
        stats.requests.load(Ordering::Relaxed),
        stats.sheds.load(Ordering::Relaxed),
    )
    .map_err(io_err)?;
    if let Some(e) = &dyn_engine {
        let c = e.counters();
        writeln!(
            out,
            "mutations: {} insert(s), {} remove(s), {} flush(es); \
             generation {} after {} swap(s), {} rebuild(s)",
            c.inserts,
            c.removes,
            c.flushes,
            e.generation(),
            c.swaps,
            c.rebuilds,
        )
        .map_err(io_err)?;
    }

    if let Some(thread) = sampler_thread {
        lcds_obs::trace::set_tracing(false);
        sampler_stop.store(true, Ordering::SeqCst);
        let (hm, watch) = thread
            .join()
            .map_err(|_| CliError::runtime("sampler thread panicked"))?;
        if let Some((name, wd)) = watch {
            writeln!(
                out,
                "watch[{name}]: {} traced probes, ratio Φ̂·s = {:.1} \
                 [alarm above {:.1}], watchdog trips: {}",
                hm.probes(),
                hm.ratio(cells),
                wd.threshold(),
                wd.trips(),
            )
            .map_err(io_err)?;
        }
        if let Some(ts) = &ts {
            writeln!(
                out,
                "telemetry: {} window(s) of {:.2}s retained{}",
                ts.len(),
                ts.window_seconds(),
                recorder_dir
                    .as_ref()
                    .map(|d| format!(", flight bundles in {d}"))
                    .unwrap_or_default(),
            )
            .map_err(io_err)?;
        }
    }

    if let Some(metrics_file) = flag(&flags, "metrics-file") {
        let text = lcds_obs::export::to_prometheus(&lcds_obs::global().snapshot());
        std::fs::write(metrics_file, text)
            .map_err(|e| CliError::runtime(format!("cannot write {metrics_file}: {e}")))?;
    }
    Ok(())
}

/// Unicode eighth-block sparkline of `vals` scaled against their max
/// (all-flat or empty input renders as baseline bars).
fn sparkline(vals: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = vals.iter().copied().fold(0.0f64, f64::max);
    vals.iter()
        .map(|&v| {
            if max <= 0.0 || !v.is_finite() {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Human-scale nanoseconds (`—` when the window recorded nothing).
fn fmt_ns(v: Option<u64>) -> String {
    match v {
        None => "—".to_string(),
        Some(ns) if ns >= 1_000_000_000 => format!("{:.2}s", ns as f64 / 1e9),
        Some(ns) if ns >= 1_000_000 => format!("{:.2}ms", ns as f64 / 1e6),
        Some(ns) if ns >= 1_000 => format!("{:.1}µs", ns as f64 / 1e3),
        Some(ns) => format!("{ns}ns"),
    }
}

/// Human-scale per-second rate.
fn fmt_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Renders one `lcds top` frame from a telemetry document (the
/// [`lcds_obs::TimeSeries::wire_snapshot`] schema).
fn render_top_frame(
    out: &mut dyn std::io::Write,
    doc: &serde_json::Value,
    phi_history: &[f64],
) -> Result<(), CliError> {
    use lcds_obs::names;
    writeln!(
        out,
        "lcds top — {:.2}s windows, ring {}",
        doc["window_seconds"].as_f64().unwrap_or(0.0),
        doc["ring_len"].as_u64().unwrap_or(0),
    )
    .map_err(io_err)?;
    let wv = &doc["window"];
    if wv.is_null() {
        writeln!(out, "  (no completed windows yet)").map_err(io_err)?;
        return Ok(());
    }
    let w = lcds_obs::Window::from_json(wv)
        .map_err(|e| CliError::runtime(format!("malformed telemetry window: {e}")))?;
    writeln!(
        out,
        "  window #{} ({:.2}s): {} keys/s, {} req/s, {} shed/s",
        w.index,
        w.duration_s(),
        fmt_rate(w.rate(names::SERVE_KEYS_TOTAL)),
        fmt_rate(w.rate(names::NET_REQUESTS_TOTAL)),
        fmt_rate(w.rate(names::NET_SHED_TOTAL)),
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "  batch latency p50 {} / p99 {}, ns/key {}, queue wait p99 {}",
        fmt_ns(w.quantile_ns(names::SERVE_BATCH_LATENCY, 0.50)),
        fmt_ns(w.quantile_ns(names::SERVE_BATCH_LATENCY, 0.99)),
        w.ns_per_key(names::SERVE_BATCH_LATENCY, names::SERVE_KEYS_TOTAL)
            .map_or_else(|| "—".to_string(), |v| format!("{v:.1}")),
        fmt_ns(w.quantile_ns(names::NET_SERVER_QUEUE_WAIT, 0.99)),
    )
    .map_err(io_err)?;
    if let Some(generation) = w.gauges.get(names::DYN_GENERATION) {
        writeln!(
            out,
            "  generation {generation:.0}, delta pending {:.0}",
            w.gauges
                .get(names::DYN_DELTA_PENDING)
                .copied()
                .unwrap_or(0.0),
        )
        .map_err(io_err)?;
    }
    if let Some(phi) = &w.phi {
        writeln!(
            out,
            "  Φ̂ {:.3e} (Φ̂·s {:.2}) over {} probes, hottest cell {}  {}",
            phi.phi_hat,
            phi.ratio,
            phi.probes,
            phi.top.first().map_or_else(
                || "—".to_string(),
                |hc| format!("{} ×{}", hc.cell, hc.count)
            ),
            sparkline(phi_history),
        )
        .map_err(io_err)?;
    }
    let slo = &doc["slo"];
    if slo.is_object() {
        let breached = slo["breached"].as_bool().unwrap_or(false);
        let last = &slo["last_breach"];
        writeln!(
            out,
            "  slo: {} ({} breach(es){})",
            if breached { "BREACHED" } else { "ok" },
            slo["breaches"].as_u64().unwrap_or(0),
            if last.is_null() {
                String::new()
            } else {
                format!(
                    ", last at window #{}",
                    last["window_index"].as_u64().unwrap_or(0)
                )
            },
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// `top`: the live dashboard over the telemetry window ring — remote
/// (polling a `serve-net --telemetry-window` server's `Telemetry`
/// opcode) or, without `--addr`, sampling this process's own global
/// registry. Plain full-screen redraw, no terminal dependencies;
/// `--once --json` makes it a machine-readable probe for scripts and CI.
fn cmd_top(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use lcds_obs::{TimeSeries, TimeSeriesConfig};
    use std::time::Duration;

    let mut args = args.to_vec();
    let once = args.iter().any(|a| a == "--once");
    args.retain(|a| a != "--once");
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let (pos, flags) = parse_flags(&args)?;
    if let Some(p) = pos.first() {
        return Err(CliError::usage(format!("unexpected argument {p:?}")));
    }
    let interval: f64 = num_flag(&flags, "interval", 1.0)?;
    if interval <= 0.0 || !interval.is_finite() {
        return Err(CliError::usage("--interval must be positive seconds"));
    }
    let frames: u64 = num_flag(&flags, "frames", 0)?;
    let frames = if once { 1 } else { frames };

    enum Source {
        Remote(lcds_net::client::Client),
        Local(TimeSeries),
    }
    let mut source = match flag(&flags, "addr") {
        Some(addr) => Source::Remote(
            lcds_net::client::Client::connect(addr)
                .map_err(|e| CliError::runtime(format!("cannot connect to {addr}: {e}")))?,
        ),
        None => Source::Local(TimeSeries::for_global(TimeSeriesConfig {
            window: Duration::from_secs_f64(interval),
            capacity: 120,
        })),
    };

    let mut phi_history: Vec<f64> = Vec::new();
    let mut frame = 0u64;
    loop {
        let doc = match &mut source {
            Source::Remote(c) => c
                .telemetry()
                .map_err(|e| CliError::runtime(format!("telemetry poll failed: {e}")))?,
            Source::Local(ts) => {
                ts.sample();
                ts.wire_snapshot()
            }
        };
        if let Some(phi) = doc["window"]["phi"]["phi_hat"].as_f64() {
            phi_history.push(phi);
            if phi_history.len() > 32 {
                phi_history.remove(0);
            }
        }
        if json {
            // One document per line: pollable by scripts without a
            // streaming JSON parser.
            writeln!(out, "{doc}").map_err(io_err)?;
        } else {
            if frame > 0 || !once {
                // Plain ANSI full-redraw; no terminal library.
                write!(out, "\x1b[2J\x1b[H").map_err(io_err)?;
            }
            render_top_frame(out, &doc, &phi_history)?;
        }
        out.flush().map_err(io_err)?;
        frame += 1;
        if frames > 0 && frame >= frames {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

fn cmd_loadgen(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use lcds_net::loadgen::{self, LoadConfig, Workload};
    use std::net::ToSocketAddrs;
    use std::time::Duration;

    // `--ordered` is a bare switch; strip it before the value-per-flag parser.
    let mut args = args.to_vec();
    let ordered = args.iter().any(|a| a == "--ordered");
    args.retain(|a| a != "--ordered");
    let (pos, flags) = parse_flags(&args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    let addr_str = flag(&flags, "addr").ok_or_else(|| CliError::usage("loadgen needs --addr"))?;
    let addr = addr_str
        .to_socket_addrs()
        .map_err(|e| CliError::usage(format!("bad --addr {addr_str:?}: {e}")))?
        .next()
        .ok_or_else(|| CliError::usage(format!("--addr {addr_str:?} resolves to nothing")))?;
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let connections: usize = num_flag(&flags, "connections", 4)?;
    if connections == 0 {
        return Err(CliError::usage("--connections must be at least 1"));
    }
    let duration: f64 = num_flag(&flags, "duration", 2.0)?;
    if duration <= 0.0 {
        return Err(CliError::usage("--duration must be positive"));
    }
    let batch: usize = num_flag(&flags, "batch", 512)?;
    if batch == 0 {
        return Err(CliError::usage("--batch must be at least 1"));
    }
    let theta: f64 = num_flag(&flags, "zipf", 1.1)?;
    let workload_name = flag(&flags, "workload").unwrap_or("uniform");
    let workload = match workload_name {
        "uniform" => Workload::Uniform,
        "zipf" => Workload::Zipf(theta),
        "adversarial" => Workload::Adversarial,
        other => {
            return Err(CliError::usage(format!(
                "bad --workload {other:?} (expected uniform, zipf, or adversarial)"
            )))
        }
    };
    let format = flag(&flags, "format").unwrap_or("table");
    if !matches!(format, "table" | "json") {
        return Err(CliError::usage(format!(
            "bad --format {format:?} (expected table or json)"
        )));
    }

    // 0 = read-only (works against any server); N > 0 mixes one mutation
    // into every N bulk reads per connection (dynamic servers only).
    let write_every: usize = num_flag(&flags, "write-every", 0)?;
    if ordered && write_every > 0 {
        return Err(CliError::usage(
            "--write-every does not combine with --ordered (ordered servers \
             fix their key set at build time)",
        ));
    }

    let pool = match (flag(&flags, "random"), flag(&flags, "keys")) {
        (Some(n), None) => {
            let n: usize = n
                .parse()
                .map_err(|e| CliError::usage(format!("bad --random: {e}")))?;
            // Mirrors `build --random` / `serve-net --random`: same seed ⇒
            // the generated pool IS the served key set, so hits ≈ 100%.
            uniform_keys(n, seed ^ 0x5EED)
        }
        (None, Some(file)) => read_key_file(Path::new(file))?,
        _ => {
            return Err(CliError::usage(
                "loadgen needs exactly one of --random N or --keys FILE",
            ))
        }
    };

    let report = loadgen::run(
        addr,
        &pool,
        &LoadConfig {
            connections,
            duration: Duration::from_secs_f64(duration),
            batch,
            workload,
            seed,
            mutate_every: write_every,
            ordered,
            client: lcds_net::ClientConfig::default(),
        },
    )
    .map_err(|e| CliError::runtime(format!("load run against {addr} failed: {e}")))?;
    if report.requests == 0 {
        return Err(CliError::runtime(
            "no requests completed — server unreachable or duration too short",
        ));
    }

    let (p50, p90, p99) = (
        report.latency_quantile_ns(0.50),
        report.latency_quantile_ns(0.90),
        report.latency_quantile_ns(0.99),
    );
    if format == "json" {
        let js = serde_json::json!({
            "addr": addr.to_string(),
            "workload": workload_name,
            "connections": report.connections,
            "requests": report.requests,
            "keys": report.keys,
            "hits": report.hits,
            "busy_retries": report.busy_retries,
            "inserts": report.inserts,
            "removes": report.removes,
            "flushes": report.flushes,
            "predecessors": report.predecessors,
            "ranks": report.ranks,
            "range_counts": report.range_counts,
            "final_generation": report.final_generation,
            "wall_s": report.wall.as_secs_f64(),
            "qps": report.qps(),
            "kps": report.kps(),
            // Median request latency spread over its batch: per-key
            // service time derived from the latency histogram.
            "ns_per_key": p50 as f64 / batch as f64,
            "latency_ns": { "p50": p50, "p90": p90, "p99": p99 },
        });
        writeln!(out, "{js}").map_err(io_err)?;
    } else {
        writeln!(
            out,
            "loadgen{}: {} connection(s), {workload_name} over {} keys, batch {batch}",
            if ordered { " (ordered)" } else { "" },
            report.connections,
            pool.len(),
        )
        .map_err(io_err)?;
        writeln!(
            out,
            "{} requests ({} keys) in {:.2} s: {:.0} req/s, {:.0} keys/s",
            report.requests,
            report.keys,
            report.wall.as_secs_f64(),
            report.qps(),
            report.kps(),
        )
        .map_err(io_err)?;
        writeln!(
            out,
            "hits {}/{} , busy retries {}",
            report.hits, report.keys, report.busy_retries
        )
        .map_err(io_err)?;
        if let Some(generation) = report.final_generation {
            writeln!(
                out,
                "writes: {} insert(s), {} remove(s), {} flush(es); \
                 server at generation {generation}",
                report.inserts, report.removes, report.flushes,
            )
            .map_err(io_err)?;
        }
        if ordered {
            writeln!(
                out,
                "ordered mix: {} predecessor, {} rank, {} range-count request(s)",
                report.predecessors, report.ranks, report.range_counts,
            )
            .map_err(io_err)?;
        }
        writeln!(
            out,
            "latency p50/p90/p99: {:.1} / {:.1} / {:.1} µs ({:.1} ns/key at p50)",
            p50 as f64 / 1e3,
            p90 as f64 / 1e3,
            p99 as f64 / 1e3,
            p50 as f64 / batch as f64,
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// `bench-mt`: the multi-threaded probe harness. T reader threads hammer
/// one shared in-memory table through the real serve engine, per scheme ×
/// key mix × thread count; each row carries qps, scaling efficiency, the
/// Φ̂ merged over all per-thread heatmap shards, and latency quantiles.
fn cmd_bench_mt(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use lcds_mtbench::{GateConfig, KeyMix, MtConfig, Scheme};

    // `--quick` / `--ordered` are bare switches; strip them before the
    // value-per-flag parser.
    let mut args = args.to_vec();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let ordered = args.iter().any(|a| a == "--ordered");
    args.retain(|a| a != "--ordered");
    let (pos, flags) = parse_flags(&args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    if ordered {
        return cmd_bench_mt_ordered(&flags, quick, out);
    }
    let n: usize = num_flag(&flags, "random", if quick { 512 } else { 4096 })?;
    let ops: u64 = num_flag(&flags, "ops", if quick { 2_000 } else { 20_000 })?;
    let batch: usize = num_flag(&flags, "batch", 64)?;
    let seed: u64 = num_flag(&flags, "seed", 0xC0FFEE)?;
    let theta: f64 = num_flag(&flags, "zipf", 1.0)?;
    let threads = mt_threads_flag(&flags)?;
    let schemes = flag(&flags, "schemes")
        .unwrap_or("lcd,fks,fks-adversarial")
        .split(',')
        .map(|s| {
            Scheme::parse(s.trim()).ok_or_else(|| {
                CliError::usage(format!(
                    "bad scheme {s:?} (expected lcd, fks, or fks-adversarial)"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let workloads = flag(&flags, "workloads")
        .unwrap_or(if quick { "zipf" } else { "uniform,zipf" })
        .split(',')
        .map(|s| {
            KeyMix::parse(s.trim(), theta).ok_or_else(|| {
                CliError::usage(format!(
                    "bad workload {s:?} (expected uniform, zipf, or adversarial)"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let service_ns: u64 = num_flag(&flags, "service-ns", 1_000)?;
    let stripes: usize = num_flag(&flags, "stripes", 64)?;
    let gate = match flag(&flags, "serialize").unwrap_or("on") {
        "on" => Some(GateConfig {
            service_ns,
            stripes,
        }),
        "off" => None,
        other => {
            return Err(CliError::usage(format!(
                "bad --serialize {other:?} (expected on or off)"
            )))
        }
    };
    let format = flag(&flags, "format").unwrap_or("table");
    if !matches!(format, "table" | "json") {
        return Err(CliError::usage(format!(
            "bad --format {format:?} (expected table or json)"
        )));
    }
    let window_s: f64 = num_flag(&flags, "window", 0.0)?;
    if window_s < 0.0 || !window_s.is_finite() {
        return Err(CliError::usage("--window must be non-negative seconds"));
    }
    let window = (window_s > 0.0).then(|| {
        // The per-row sampler reads the global registry; without metrics
        // enabled the serve path records nothing and every delta is zero.
        lcds_obs::set_enabled(true);
        std::time::Duration::from_secs_f64(window_s)
    });

    let cfg = MtConfig {
        n,
        threads,
        schemes,
        workloads,
        ops_per_thread: ops,
        batch,
        seed,
        gate,
        window,
    };
    let report = lcds_mtbench::run(&cfg).map_err(|e| CliError::runtime(e))?;
    let section = lcds_mtbench::report::mt_scaling_json(&report);
    // Loud self-validation: a section the published schema rejects is a
    // harness bug, not a caller mistake — fail the run instead of writing
    // an artifact tier-1 would bounce.
    lcds_bench::summary::validate_mt_scaling(&section).map_err(|e| {
        CliError::runtime(format!(
            "internal error: mt_scaling section violates its own schema ({e}); \
             this is a harness bug, not a flag problem"
        ))
    })?;

    if let Some(path) = flag(&flags, "out") {
        let body = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
        let mut doc: serde_json::Value = serde_json::from_str(&body)
            .map_err(|e| CliError::runtime(format!("{path}: not valid JSON: {e}")))?;
        doc["mt_scaling"] = section.clone();
        let warnings = refresh_git_rev(&mut doc);
        // Re-validate the whole merged artifact with the validator that
        // matches its envelope, so a bad merge can never reach disk.
        let check = match doc.get("bench").and_then(|b| b.as_str()) {
            Some("serve_throughput") => lcds_bench::summary::validate_serve_summary(&doc),
            Some("build_throughput") => lcds_bench::summary::validate_bench_summary(&doc),
            other => Err(format!("unknown bench artifact kind {other:?}")),
        };
        check.map_err(|e| {
            CliError::runtime(format!("{path}: merged artifact fails validation: {e}"))
        })?;
        let pretty = serde_json::to_string_pretty(&doc)
            .map_err(|e| CliError::runtime(format!("cannot serialize {path}: {e}")))?;
        std::fs::write(path, pretty + "\n")
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        writeln!(
            out,
            "merged mt_scaling ({} rows) into {path}",
            report.rows.len()
        )
        .map_err(io_err)?;
        // Provenance warnings go to stderr: stdout after the "merged"
        // line is a machine-readable JSON contract.
        for w in warnings {
            eprintln!("warning: {w}");
        }
    }
    if let Some(path) = flag(&flags, "metrics-file") {
        let text = lcds_obs::export::to_prometheus(&lcds_obs::global().snapshot());
        std::fs::write(path, text)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }
    match format {
        "json" => {
            let pretty = serde_json::to_string_pretty(&section)
                .map_err(|e| CliError::runtime(format!("cannot serialize section: {e}")))?;
            writeln!(out, "{pretty}").map_err(io_err)?;
        }
        _ => {
            write!(out, "{}", lcds_mtbench::report::render_table(&report)).map_err(io_err)?;
        }
    }
    Ok(())
}

/// Parses `--threads` into the bench-mt thread ladder: a comma list is
/// taken verbatim, a single value becomes `thread_ladder(T)`, and the
/// default ladders up to the host parallelism.
fn mt_threads_flag(flags: &[(String, String)]) -> Result<Vec<usize>, CliError> {
    match flag(flags, "threads") {
        None => Ok(lcds_mtbench::thread_ladder(lcds_mtbench::host_parallelism())),
        Some(list) if list.contains(',') => {
            let mut ts = Vec::new();
            for part in list.split(',') {
                let t: usize = part
                    .trim()
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad --threads entry {part:?}: {e}")))?;
                ts.push(t);
            }
            Ok(ts)
        }
        Some(one) => {
            let t: usize = one
                .parse()
                .map_err(|e| CliError::usage(format!("bad --threads: {e}")))?;
            Ok(lcds_mtbench::thread_ladder(t))
        }
    }
}

/// `bench-mt --ordered`: the ordered-dictionary sweep — predecessor /
/// rank / range-count over the replicated vs adversarial replica-choice
/// schemes, with exact per-cell counting (global and per-level Φ̂) in
/// place of the membership harness's heatmap sketch. The section merges
/// into a bench artifact under the `ordered` key.
fn cmd_bench_mt_ordered(
    flags: &[(String, String)],
    quick: bool,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    use lcds_mtbench::{GateConfig, KeyMix, OrdMtConfig, OrdOp};
    use lcds_ordered::OrdScheme;

    let n: usize = num_flag(flags, "random", if quick { 512 } else { 4096 })?;
    let ops_per_thread: u64 = num_flag(flags, "ops", if quick { 2_000 } else { 20_000 })?;
    let batch: usize = num_flag(flags, "batch", 64)?;
    let seed: u64 = num_flag(flags, "seed", 0xC0FFEE)?;
    let theta: f64 = num_flag(flags, "zipf", 1.0)?;
    let threads = mt_threads_flag(flags)?;
    let schemes = flag(flags, "schemes")
        .unwrap_or("ord-replicated,ord-adversarial")
        .split(',')
        .map(|s| {
            OrdScheme::parse(s.trim()).ok_or_else(|| {
                CliError::usage(format!(
                    "bad ordered scheme {s:?} (expected ord-replicated or ord-adversarial)"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let workloads = flag(flags, "workloads")
        .unwrap_or(if quick { "zipf" } else { "uniform,zipf" })
        .split(',')
        .map(|s| {
            KeyMix::parse(s.trim(), theta).ok_or_else(|| {
                CliError::usage(format!(
                    "bad workload {s:?} (expected uniform, zipf, or adversarial)"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let ord_ops = flag(flags, "ord-ops")
        .unwrap_or(if quick {
            "predecessor"
        } else {
            "predecessor,rank,range-count"
        })
        .split(',')
        .map(|s| {
            OrdOp::parse(s.trim()).ok_or_else(|| {
                CliError::usage(format!(
                    "bad --ord-ops entry {s:?} (expected predecessor, rank, or range-count)"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let service_ns: u64 = num_flag(flags, "service-ns", 1_000)?;
    let stripes: usize = num_flag(flags, "stripes", 64)?;
    let gate = match flag(flags, "serialize").unwrap_or("on") {
        "on" => Some(GateConfig {
            service_ns,
            stripes,
        }),
        "off" => None,
        other => {
            return Err(CliError::usage(format!(
                "bad --serialize {other:?} (expected on or off)"
            )))
        }
    };
    let format = flag(flags, "format").unwrap_or("table");
    if !matches!(format, "table" | "json") {
        return Err(CliError::usage(format!(
            "bad --format {format:?} (expected table or json)"
        )));
    }
    if flag(flags, "window").is_some() {
        return Err(CliError::usage(
            "--window does not combine with --ordered (ordered rows carry \
             exact per-level Φ̂ instead of a telemetry series)",
        ));
    }

    if flag(flags, "metrics-file").is_some() {
        // The lcds_ord_* family records only when metrics are on; a
        // requested export implies the caller wants it populated.
        lcds_obs::set_enabled(true);
    }

    let cfg = OrdMtConfig {
        n,
        threads,
        schemes,
        workloads,
        ops: ord_ops,
        ops_per_thread,
        batch,
        seed,
        gate,
    };
    let report = lcds_mtbench::run_ordered(&cfg).map_err(CliError::runtime)?;
    let section = lcds_mtbench::report::ordered_scaling_json(&report);
    // Same loud self-validation contract as the membership harness: a
    // section the published schema rejects is a harness bug.
    lcds_bench::summary::validate_ordered(&section).map_err(|e| {
        CliError::runtime(format!(
            "internal error: ordered section violates its own schema ({e}); \
             this is a harness bug, not a flag problem"
        ))
    })?;

    if let Some(path) = flag(flags, "out") {
        let body = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
        let mut doc: serde_json::Value = serde_json::from_str(&body)
            .map_err(|e| CliError::runtime(format!("{path}: not valid JSON: {e}")))?;
        doc["ordered"] = section.clone();
        let warnings = refresh_git_rev(&mut doc);
        let check = match doc.get("bench").and_then(|b| b.as_str()) {
            Some("serve_throughput") => lcds_bench::summary::validate_serve_summary(&doc),
            Some("build_throughput") => lcds_bench::summary::validate_bench_summary(&doc),
            other => Err(format!("unknown bench artifact kind {other:?}")),
        };
        check.map_err(|e| {
            CliError::runtime(format!("{path}: merged artifact fails validation: {e}"))
        })?;
        let pretty = serde_json::to_string_pretty(&doc)
            .map_err(|e| CliError::runtime(format!("cannot serialize {path}: {e}")))?;
        std::fs::write(path, pretty + "\n")
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        writeln!(
            out,
            "merged ordered ({} rows) into {path}",
            report.rows.len()
        )
        .map_err(io_err)?;
        // Provenance warnings to stderr, stdout stays machine-readable.
        for w in warnings {
            eprintln!("warning: {w}");
        }
    }
    if let Some(path) = flag(flags, "metrics-file") {
        let text = lcds_obs::export::to_prometheus(&lcds_obs::global().snapshot());
        std::fs::write(path, text)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }
    match format {
        "json" => {
            let pretty = serde_json::to_string_pretty(&section)
                .map_err(|e| CliError::runtime(format!("cannot serialize section: {e}")))?;
            writeln!(out, "{pretty}").map_err(io_err)?;
        }
        _ => {
            write!(
                out,
                "{}",
                lcds_mtbench::report::render_ordered_table(&report)
            )
            .map_err(io_err)?;
        }
    }
    Ok(())
}

/// `bench-kernels`: the probe-kernel raw-speed sweep — scalar reference
/// vs prefetch vs SIMD hashing vs combined, ns/key per batch size, with
/// every configuration's answers asserted bit-identical to scalar before
/// its numbers are reported. `--out` merges the `probe_kernels` section
/// into an existing bench artifact, re-validating the whole envelope.
fn cmd_bench_kernels(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args)?;
    if !pos.is_empty() {
        return Err(CliError::usage(format!("unexpected argument {:?}", pos[0])));
    }
    let mut cfg = lcds_bench::kernels::SweepConfig::default();
    cfg.n = num_flag(&flags, "random", cfg.n)?;
    cfg.iters = num_flag(&flags, "iters", cfg.iters)?;
    cfg.seed = num_flag(&flags, "seed", cfg.seed)?;
    if cfg.n == 0 || cfg.iters == 0 {
        return Err(CliError::usage("--random and --iters must be at least 1"));
    }
    if let Some(list) = flag(&flags, "batches") {
        let mut batches = Vec::new();
        for part in list.split(',') {
            let b: usize = part
                .trim()
                .parse()
                .map_err(|e| CliError::usage(format!("bad --batches entry {part:?}: {e}")))?;
            if b == 0 {
                return Err(CliError::usage("--batches entries must be at least 1"));
            }
            batches.push(b);
        }
        if batches.is_empty() {
            return Err(CliError::usage("--batches must name at least one size"));
        }
        cfg.batches = batches;
    }
    let format = flag(&flags, "format").unwrap_or("table");
    if !matches!(format, "table" | "json") {
        return Err(CliError::usage(format!(
            "bad --format {format:?} (expected table or json)"
        )));
    }

    let sweep = lcds_bench::kernels::run_sweep(cfg);
    let section = lcds_bench::kernels::probe_kernels_json(&sweep);
    // Loud self-validation, same contract as bench-mt: a section the
    // published schema rejects is a harness bug — fail the run rather
    // than write an artifact tier-1 would bounce.
    lcds_bench::summary::validate_probe_kernels(&section).map_err(|e| {
        CliError::runtime(format!(
            "internal error: probe_kernels section violates its own schema ({e}); \
             this is a harness bug, not a flag problem"
        ))
    })?;

    if let Some(path) = flag(&flags, "out") {
        let body = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
        let mut doc: serde_json::Value = serde_json::from_str(&body)
            .map_err(|e| CliError::runtime(format!("{path}: not valid JSON: {e}")))?;
        doc["probe_kernels"] = section.clone();
        let warnings = refresh_git_rev(&mut doc);
        let check = match doc.get("bench").and_then(|b| b.as_str()) {
            Some("serve_throughput") => lcds_bench::summary::validate_serve_summary(&doc),
            Some("build_throughput") => lcds_bench::summary::validate_bench_summary(&doc),
            other => Err(format!("unknown bench artifact kind {other:?}")),
        };
        check.map_err(|e| {
            CliError::runtime(format!("{path}: merged artifact fails validation: {e}"))
        })?;
        let pretty = serde_json::to_string_pretty(&doc)
            .map_err(|e| CliError::runtime(format!("cannot serialize {path}: {e}")))?;
        std::fs::write(path, pretty + "\n")
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        writeln!(
            out,
            "merged probe_kernels ({} rows) into {path}",
            sweep.rows.len()
        )
        .map_err(io_err)?;
        // stderr for the same reason as bench-mt: stdout stays JSON.
        for w in warnings {
            eprintln!("warning: {w}");
        }
    }
    match format {
        "json" => {
            let pretty = serde_json::to_string_pretty(&section)
                .map_err(|e| CliError::runtime(format!("cannot serialize section: {e}")))?;
            writeln!(out, "{pretty}").map_err(io_err)?;
        }
        _ => {
            write!(out, "{}", lcds_bench::kernels::render_table(&sweep)).map_err(io_err)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that drain the process-global trace buffer
    /// (`lcds trace`, `lcds serve-net --watch`): concurrent drains would
    /// steal each other's records.
    static TRACING_GLOBALS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn run_capture(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lcds-cli-{}-{name}", std::process::id()))
    }

    #[test]
    fn full_lifecycle_build_info_query_audit() {
        let dict_path = tmp("lifecycle.dict");
        let dict_str = dict_path.to_str().unwrap();

        let out =
            run_capture(&["build", "--out", dict_str, "--random", "500", "--seed", "9"]).unwrap();
        assert!(out.contains("built n = 500"), "{out}");

        let out = run_capture(&["info", dict_str]).unwrap();
        assert!(out.contains("n           500"), "{out}");
        assert!(out.contains("probes ≤"), "{out}");

        // Query a member (recover one from the generator) and a non-member.
        let member = lcds_workloads::keysets::uniform_keys(500, 9 ^ 0x5EED)[0];
        let out = run_capture(&["query", dict_str, &member.to_string(), "3"]).unwrap();
        assert!(out.contains(&format!("{member}\tpresent")), "{out}");
        assert!(out.contains("3\tabsent"), "{out}");

        let out = run_capture(&["audit", dict_str]).unwrap();
        assert!(out.contains("max per-step contention ratio"), "{out}");
        assert!(out.contains("histogram[0]"), "{out}");

        let out = run_capture(&["audit", dict_str, "--zipf", "1.2"]).unwrap();
        assert!(out.contains("per-row breakdown"), "{out}");

        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn build_from_key_file() {
        let keys_path = tmp("keys.txt");
        std::fs::write(&keys_path, "# demo\n10\n20\n\n30 # trailing\n").unwrap();
        let dict_path = tmp("fromfile.dict");

        let out = run_capture(&[
            "build",
            "--out",
            dict_path.to_str().unwrap(),
            "--keys",
            keys_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("built n = 3"), "{out}");

        let out = run_capture(&["query", dict_path.to_str().unwrap(), "20", "25"]).unwrap();
        assert!(out.contains("20\tpresent"));
        assert!(out.contains("25\tabsent"));

        let _ = std::fs::remove_file(&keys_path);
        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn bulk_counts_members_from_key_file_and_random_pool() {
        let dict_path = tmp("bulk.dict");
        let dict_str = dict_path.to_str().unwrap();
        run_capture(&["build", "--out", dict_str, "--random", "400", "--seed", "9"]).unwrap();

        // Probe file: one known member plus three non-members.
        let member = lcds_workloads::keysets::uniform_keys(400, 9 ^ 0x5EED)[0];
        let probes_path = tmp("bulk-probes.txt");
        std::fs::write(&probes_path, format!("{member}\n1\n2\n3\n")).unwrap();
        let out = run_capture(&[
            "bulk",
            dict_str,
            "--keys",
            probes_path.to_str().unwrap(),
            "--batch",
            "2",
        ])
        .unwrap();
        assert!(out.contains("4 queries"), "{out}");
        assert!(out.contains("1 present, 3 absent"), "{out}");

        // Random pool interleaves members with negatives: half must hit.
        let out = run_capture(&["bulk", dict_str, "--random", "100"]).unwrap();
        assert!(out.contains("100 queries"), "{out}");
        assert!(out.contains("50 present, 50 absent"), "{out}");

        let _ = std::fs::remove_file(&probes_path);
        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn build_threads_flag_never_changes_the_artifact() {
        // The whole point of the deterministic parallel pipeline: the
        // persisted bytes are a function of (keys, seed) alone, so any
        // --build-threads value produces the identical file.
        let mut reference: Option<Vec<u8>> = None;
        for threads in ["1", "2", "7"] {
            let dict_path = tmp(&format!("threads-{threads}.dict"));
            let dict_str = dict_path.to_str().unwrap();
            let out = run_capture(&[
                "build",
                "--out",
                dict_str,
                "--random",
                "300",
                "--seed",
                "41",
                "--build-threads",
                threads,
            ])
            .unwrap();
            assert!(out.contains("built n = 300"), "{out}");
            assert!(
                out.contains(&format!("{threads} rayon thread(s)")),
                "header must surface the chosen pool size: {out}"
            );
            let bytes = std::fs::read(&dict_path).unwrap();
            let _ = std::fs::remove_file(&dict_path);
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(
                    want, &bytes,
                    "--build-threads {threads} changed the persisted bytes"
                ),
            }
        }
    }

    #[test]
    fn build_threads_flag_rejects_zero_and_garbage() {
        let err = run_capture(&[
            "build",
            "--out",
            "/tmp/x",
            "--random",
            "8",
            "--build-threads",
            "0",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        assert!(err.message.contains("at least 1"), "{}", err.message);

        let err = run_capture(&[
            "build",
            "--out",
            "/tmp/x",
            "--random",
            "8",
            "--build-threads",
            "lots",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
    }

    #[test]
    fn bulk_accepts_build_threads_for_the_query_pool() {
        let dict_path = tmp("bulk-threads.dict");
        let dict_str = dict_path.to_str().unwrap();
        run_capture(&["build", "--out", dict_str, "--random", "200", "--seed", "3"]).unwrap();
        let out =
            run_capture(&["bulk", dict_str, "--random", "50", "--build-threads", "2"]).unwrap();
        assert!(out.contains("2 thread(s)"), "{out}");
        assert!(out.contains("50 queries"), "{out}");
        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn threads_flag_is_primary_name_on_build_and_bulk() {
        let dict_path = tmp("threads-primary.dict");
        let dict_str = dict_path.to_str().unwrap();
        let out = run_capture(&[
            "build",
            "--out",
            dict_str,
            "--random",
            "200",
            "--seed",
            "3",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("2 rayon thread(s)"), "{out}");
        let out = run_capture(&["bulk", dict_str, "--random", "50", "--threads", "3"]).unwrap();
        assert!(out.contains("3 thread(s)"), "{out}");
        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn bulk_rejects_bad_flag_combinations() {
        let dict_path = tmp("bulk-usage.dict");
        let dict_str = dict_path.to_str().unwrap();
        run_capture(&["build", "--out", dict_str, "--random", "64", "--seed", "1"]).unwrap();

        let err = run_capture(&["bulk", dict_str]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        assert!(err.message.contains("exactly one of"), "{}", err.message);

        let err = run_capture(&["bulk", dict_str, "--keys", "a", "--random", "8"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        let err = run_capture(&["bulk", dict_str, "--random", "8", "--batch", "0"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        assert!(err.message.contains("--batch"), "{}", err.message);

        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn obs_table_format_reports_hot_cells() {
        let out = run_capture(&[
            "obs",
            "--random",
            "512",
            "--queries",
            "4000",
            "--period",
            "4",
            "--topk",
            "8",
        ])
        .unwrap();
        assert!(out.contains("top-8 cells"), "{out}");
        assert!(out.contains("hot-cell share"), "{out}");
        assert!(out.contains("4000 zipf(1.1) queries"), "{out}");
    }

    #[test]
    fn obs_prom_format_is_prometheus_text() {
        let out = run_capture(&[
            "obs",
            "--random",
            "256",
            "--queries",
            "2000",
            "--format",
            "prom",
        ])
        .unwrap();
        assert!(out.contains("# TYPE lcds_queries_total counter"), "{out}");
        assert!(
            out.contains("# TYPE lcds_build_total_ns histogram"),
            "{out}"
        );
        assert!(out.contains("lcds_hot_cell_share"), "{out}");
        assert!(out.contains("lcds_query_probes_total"), "{out}");
    }

    #[test]
    fn obs_jsonl_format_parses_per_line() {
        let out = run_capture(&[
            "obs",
            "--random",
            "256",
            "--queries",
            "1000",
            "--format",
            "jsonl",
        ])
        .unwrap();
        let mut names = std::collections::HashSet::new();
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            names.insert(v["name"].as_str().unwrap().to_string());
        }
        assert!(names.contains("span"), "{names:?}");
        assert!(names.contains("build_complete"), "{names:?}");
        assert!(names.contains("hot_cell"), "{names:?}");
    }

    #[test]
    fn trace_emits_valid_chrome_trace_json() {
        let _g = TRACING_GLOBALS.lock().unwrap_or_else(|p| p.into_inner());
        // No --out: the document itself goes to stdout. Schema-check it
        // with the exporter's own validating parser.
        let out = run_capture(&[
            "trace",
            "--random",
            "256",
            "--queries",
            "2000",
            "--batch",
            "128",
            "--sample",
            "1",
        ])
        .unwrap();
        let events = lcds_obs::trace_export::parse_chrome_trace(&out).expect("valid chrome trace");
        assert!(!events.is_empty());
        assert!(
            events.iter().any(|e| e.name == "query_batch"),
            "no traced batches among {} events",
            events.len()
        );
        assert!(
            events.iter().any(|e| e.cat == "build"),
            "builder spans must land on the build track"
        );
        let batch = events.iter().find(|e| e.name == "query_batch").unwrap();
        assert!(batch.args["probes"].as_u64().unwrap() > 0);
        assert_eq!(
            batch.args["cells"].as_array().unwrap().len(),
            batch.args["stages"].as_array().unwrap().len()
        );
    }

    #[test]
    fn trace_out_flag_writes_file_and_summary() {
        let _g = TRACING_GLOBALS.lock().unwrap_or_else(|p| p.into_inner());
        let path = tmp("trace.json");
        let out = run_capture(&[
            "trace",
            "--random",
            "256",
            "--queries",
            "1000",
            "--sample",
            "1",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("traced 1000 queries"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(lcds_obs::trace_export::parse_chrome_trace(&body).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn watch_table_reports_ratio_and_trips() {
        let out = run_capture(&[
            "watch",
            "--random",
            "512",
            "--queries",
            "8000",
            "--zipf",
            "0.5",
            "--topk",
            "4",
        ])
        .unwrap();
        assert!(out.contains("ratio Φ̂·s"), "{out}");
        assert!(out.contains("watchdog trips:"), "{out}");
        assert!(out.contains("top-4 cells"), "{out}");
    }

    #[test]
    fn watch_prom_and_jsonl_formats() {
        let out = run_capture(&[
            "watch",
            "--random",
            "512",
            "--queries",
            "4000",
            "--format",
            "prom",
        ])
        .unwrap();
        assert!(out.contains("lcds_heatmap_probes_total"), "{out}");
        assert!(out.contains("lcds_watchdog_trips_total"), "{out}");

        let out = run_capture(&[
            "watch",
            "--random",
            "512",
            "--queries",
            "4000",
            "--format",
            "jsonl",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        // The count-mean correction drives Φ̂ to exactly 0 for a flat
        // scheme whose per-cell shares sit below the sketch noise floor,
        // so only non-negativity is scheme-independent here.
        assert!(v["phi_hat"].as_f64().unwrap() >= 0.0);
        assert!(v["probes"].as_u64().unwrap() > 0);
        assert!(v["watchdog_trips"].is_u64());
        assert!(v["threshold"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn watch_rejects_bad_scheme_and_format() {
        assert_eq!(
            run_capture(&["watch", "--scheme", "btree"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_capture(&["watch", "--format", "xml"]).unwrap_err().code,
            2
        );
    }

    #[test]
    fn obs_rejects_bad_format() {
        assert_eq!(
            run_capture(&["obs", "--format", "xml"]).unwrap_err().code,
            2
        );
    }

    #[test]
    fn usage_errors_are_reported() {
        assert_eq!(run_capture(&["frobnicate"]).unwrap_err().code, 2);
        assert_eq!(run_capture(&["build"]).unwrap_err().code, 2);
        assert_eq!(
            run_capture(&["build", "--out", "/tmp/x", "--random", "10", "--keys", "y"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_capture(&["query", "/nonexistent-dict"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_capture(&["info", "/nonexistent-dict"])
                .unwrap_err()
                .code,
            1
        );
    }

    #[test]
    fn help_prints_usage() {
        let out = run_capture(&["--help"]).unwrap();
        assert!(out.contains("commands:"));
        let out = run_capture(&[]).unwrap();
        assert!(out.contains("lcds"));
    }

    #[test]
    fn serve_net_with_watch_serves_loadgen_over_loopback() {
        let _g = TRACING_GLOBALS.lock().unwrap_or_else(|p| p.into_inner());
        let port_file = tmp("serve-net.addr");
        let _ = std::fs::remove_file(&port_file);
        let port_file_str = port_file.to_str().unwrap().to_string();

        // Server in a background thread (run() blocks for --duration);
        // the port file is the rendezvous.
        let server = std::thread::spawn(move || {
            run_capture(&[
                "serve-net",
                "--random",
                "300",
                "--workers",
                "2",
                "--duration",
                "2.5",
                "--watch",
                "theorem3",
                "--sample",
                "1",
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
            ])
        });
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                if let Ok(s) = std::fs::read_to_string(&port_file) {
                    if s.trim().contains(':') {
                        break s.trim().to_string();
                    }
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never wrote its port file"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        };

        // Same default seed and --random as the server ⇒ the pool is the
        // stored key set, so every queried key must be present.
        let out = run_capture(&[
            "loadgen",
            "--addr",
            &addr,
            "--random",
            "300",
            "--connections",
            "2",
            "--duration",
            "0.4",
            "--batch",
            "64",
            "--workload",
            "uniform",
            "--format",
            "json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert!(v["requests"].as_u64().unwrap() > 0, "{out}");
        assert_eq!(
            v["hits"], v["keys"],
            "members-only pool must all hit: {out}"
        );
        assert!(v["qps"].as_f64().unwrap() > 0.0, "{out}");
        assert!(v["latency_ns"]["p50"].as_u64().unwrap() > 0, "{out}");

        let table = run_capture(&[
            "loadgen",
            "--addr",
            &addr,
            "--random",
            "300",
            "--connections",
            "1",
            "--duration",
            "0.2",
            "--batch",
            "32",
        ])
        .unwrap();
        assert!(table.contains("req/s"), "{table}");
        assert!(table.contains("latency p50/p90/p99"), "{table}");

        let served = server.join().unwrap().unwrap();
        assert!(
            served.contains("serve-net: n = 300 keys, 1 shard(s)"),
            "{served}"
        );
        assert!(served.contains("listening on 127.0.0.1:"), "{served}");
        assert!(served.contains("served 2.5s:"), "{served}");
        assert!(served.contains("watch[theorem3]:"), "{served}");
        assert!(served.contains("watchdog trips: 0"), "{served}");
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn serve_net_serves_a_persisted_dict_and_shards_random_sets() {
        let dict_path = tmp("serve-net.dict");
        let dict_str = dict_path.to_str().unwrap().to_string();
        run_capture(&[
            "build", "--out", &dict_str, "--random", "200", "--seed", "9",
        ])
        .unwrap();
        let port_file = tmp("serve-net-dict.addr");
        let _ = std::fs::remove_file(&port_file);
        let port_file_str = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run_capture(&[
                "serve-net",
                &dict_str,
                "--seed",
                "9",
                "--duration",
                "1.2",
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
            ])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if s.trim().contains(':') {
                    break s.trim().to_string();
                }
            }
            assert!(std::time::Instant::now() < deadline, "no port file");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let out = run_capture(&[
            "loadgen",
            "--addr",
            &addr,
            "--random",
            "200",
            "--seed",
            "9",
            "--duration",
            "0.2",
            "--batch",
            "16",
            "--connections",
            "1",
        ])
        .unwrap();
        assert!(out.contains("requests"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("n = 200 keys"), "{served}");
        let _ = std::fs::remove_file(&dict_path);
        let _ = std::fs::remove_file(&port_file);

        // Sharded in-process build: the header must come from the live
        // sharded engine.
        let out = run_capture(&[
            "serve-net",
            "--random",
            "240",
            "--shards",
            "3",
            "--duration",
            "0.05",
            "--addr",
            "127.0.0.1:0",
        ])
        .unwrap();
        assert!(out.contains("n = 240 keys, 3 shard(s)"), "{out}");
    }

    #[test]
    fn serve_net_rejects_unknown_watch_envelope_and_bad_flags() {
        let err = run_capture(&[
            "serve-net",
            "--random",
            "64",
            "--watch",
            "bogus",
            "--duration",
            "0.05",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        assert!(
            err.message.contains("unknown contention envelope"),
            "{}",
            err.message
        );
        assert!(err.message.contains("theorem3"), "{}", err.message);

        let err = run_capture(&["serve-net", "--duration", "0.05"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        assert!(err.message.contains("exactly one of"), "{}", err.message);

        let err = run_capture(&[
            "serve-net",
            "/tmp/x.dict",
            "--shards",
            "2",
            "--duration",
            "0.05",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        let err = run_capture(&["serve-net", "--random", "64", "--workers", "0"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        // The recorder and SLO envelopes ride on the telemetry sampler.
        for extra in [
            &["--recorder", "/tmp/nowhere"][..],
            &["--slo-p99-ms", "5"][..],
            &["--slo-ratio", "8"][..],
        ] {
            let mut args = vec!["serve-net", "--random", "64", "--duration", "0.05"];
            args.extend_from_slice(extra);
            let err = run_capture(&args).unwrap_err();
            assert_eq!(err.code, 2, "{extra:?}: {}", err.message);
            assert!(
                err.message.contains("--telemetry-window"),
                "{extra:?}: {}",
                err.message
            );
        }
        let err =
            run_capture(&["serve-net", "--random", "64", "--telemetry-window", "-1"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
    }

    #[test]
    fn serve_net_telemetry_ring_feeds_top_and_the_flight_recorder() {
        let _g = TRACING_GLOBALS.lock().unwrap_or_else(|p| p.into_inner());
        let port_file = tmp("serve-net-telemetry.addr");
        let _ = std::fs::remove_file(&port_file);
        let port_file_str = port_file.to_str().unwrap().to_string();
        let recorder_dir = tmp("serve-net-recorder.d");
        let _ = std::fs::remove_dir_all(&recorder_dir);
        let recorder_str = recorder_dir.to_str().unwrap().to_string();

        let server = std::thread::spawn(move || {
            run_capture(&[
                "serve-net",
                "--random",
                "300",
                "--duration",
                "3.0",
                "--telemetry-window",
                "0.2",
                "--recorder",
                &recorder_str,
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
            ])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if s.trim().contains(':') {
                    break s.trim().to_string();
                }
            }
            assert!(std::time::Instant::now() < deadline, "no port file");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        // Drive traffic so the windows have something to hold.
        run_capture(&[
            "loadgen",
            "--addr",
            &addr,
            "--random",
            "300",
            "--connections",
            "1",
            "--duration",
            "0.4",
            "--batch",
            "32",
        ])
        .unwrap();

        // Poll `top --once --json` until a window has closed: the remote
        // Telemetry opcode feeds the same document the dashboard renders.
        let doc = loop {
            let text = run_capture(&["top", "--addr", &addr, "--once", "--json"]).unwrap();
            let doc: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
            assert_eq!(doc["record"], "telemetry", "{text}");
            if doc["ring_len"].as_u64().unwrap() > 0 {
                break doc;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "ring never gained a window: {text}"
            );
            std::thread::sleep(std::time::Duration::from_millis(50));
        };
        assert!(doc["window"].is_object(), "{doc}");
        assert!(doc["window_seconds"].as_f64().unwrap() > 0.0, "{doc}");

        // The human-readable frame renders from the same poll.
        let frame = run_capture(&["top", "--addr", &addr, "--once"]).unwrap();
        assert!(frame.contains("lcds top —"), "{frame}");
        assert!(frame.contains("keys/s"), "{frame}");

        let served = server.join().unwrap().unwrap();
        assert!(served.contains("telemetry:"), "{served}");
        assert!(served.contains("window(s) of 0.20s retained"), "{served}");
        assert!(served.contains("flight bundles in"), "{served}");

        // The drain dump landed and round-trips through the parser.
        let bundles: Vec<_> = std::fs::read_dir(&recorder_dir)
            .expect("recorder dir exists")
            .map(|e| e.expect("dir entry").path())
            .collect();
        assert!(!bundles.is_empty(), "no drain bundle written");
        for b in &bundles {
            let bundle = lcds_obs::read_bundle(b).expect("bundle parses");
            assert_eq!(bundle.reason, "drain");
            assert!(!bundle.windows.is_empty(), "drain bundle lost the ring");
        }
        let _ = std::fs::remove_file(&port_file);
        let _ = std::fs::remove_dir_all(&recorder_dir);
    }

    #[test]
    fn top_once_samples_the_in_process_registry() {
        let _g = TRACING_GLOBALS.lock().unwrap_or_else(|p| p.into_inner());
        let text = run_capture(&["top", "--once", "--json", "--interval", "0.01"]).unwrap();
        let doc: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(doc["record"], "telemetry", "{text}");
        assert_eq!(doc["ring_len"].as_u64(), Some(1), "{text}");

        let err = run_capture(&["top", "--interval", "0"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        let err = run_capture(&["top", "stray"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        // An unreachable server is a loud runtime error, not a hang.
        let err = run_capture(&["top", "--addr", "127.0.0.1:1", "--once"]).unwrap_err();
        assert_eq!(err.code, 1, "{}", err.message);
    }

    #[test]
    fn loadgen_rejects_bad_flags_and_unreachable_servers() {
        let err = run_capture(&["loadgen", "--random", "10"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        assert!(err.message.contains("--addr"), "{}", err.message);

        let err = run_capture(&[
            "loadgen",
            "--addr",
            "127.0.0.1:1",
            "--random",
            "10",
            "--workload",
            "storm",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        let err = run_capture(&[
            "loadgen",
            "--addr",
            "127.0.0.1:1",
            "--random",
            "10",
            "--format",
            "xml",
        ])
        .unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        // Port 1 on loopback: nothing listens there; the run must fail
        // loudly, not report zero throughput as success.
        let err = run_capture(&[
            "loadgen",
            "--addr",
            "127.0.0.1:1",
            "--random",
            "10",
            "--duration",
            "0.1",
        ])
        .unwrap_err();
        assert_eq!(err.code, 1, "{}", err.message);
    }

    #[test]
    fn bulk_header_reports_live_engine_shape() {
        let dict_path = tmp("bulk-header.dict");
        let dict_str = dict_path.to_str().unwrap();
        run_capture(&["build", "--out", dict_str, "--random", "150", "--seed", "5"]).unwrap();
        let out = run_capture(&["bulk", dict_str, "--random", "40"]).unwrap();
        assert!(out.contains("serving n = 150 keys, 1 shard(s)"), "{out}");
        assert!(out.contains("cells"), "{out}");
        assert!(out.contains("probes/query"), "{out}");
        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn bad_key_file_lines_are_located() {
        let keys_path = tmp("bad.txt");
        std::fs::write(&keys_path, "10\nnot-a-number\n").unwrap();
        let err = read_key_file(&keys_path).unwrap_err();
        assert!(err.message.contains(":2:"), "{}", err.message);
        let _ = std::fs::remove_file(&keys_path);
    }

    #[test]
    fn bench_mt_table_names_every_scheme_and_thread_count() {
        let out = run_capture(&[
            "bench-mt",
            "--random",
            "256",
            "--ops",
            "300",
            "--batch",
            "32",
            "--threads",
            "1,2",
            "--schemes",
            "lcd,fks-adversarial",
            "--workloads",
            "zipf",
            "--serialize",
            "off",
        ])
        .unwrap();
        assert!(out.contains("lcd"), "{out}");
        assert!(out.contains("fks-adversarial"), "{out}");
        assert!(out.contains("zipf(1.00)"), "{out}");
    }

    #[test]
    fn bench_mt_quick_shrinks_defaults_and_emits_valid_json() {
        let out = run_capture(&[
            "bench-mt",
            "--quick",
            "--random",
            "256",
            "--ops",
            "200",
            "--threads",
            "1",
            "--schemes",
            "lcd",
            "--service-ns",
            "200",
            "--format",
            "json",
        ])
        .unwrap();
        let section: serde_json::Value = serde_json::from_str(&out).unwrap();
        lcds_bench::summary::validate_mt_scaling(&section).unwrap();
        // `--quick` with no --workloads runs the Zipf mix only.
        let rows = section["rows"].as_array().unwrap();
        assert!(rows
            .iter()
            .all(|r| r["workload"].as_str().unwrap().starts_with("zipf")));
        // The gate was on (the default), so gated traffic must be counted.
        assert!(section["serialized"].as_bool().unwrap());
        assert!(rows.iter().all(|r| r["gated_probes"].as_u64().unwrap() > 0));
    }

    #[test]
    fn bench_mt_rejects_bad_schemes_workloads_and_gates() {
        for bad in [
            &["bench-mt", "--schemes", "cuckoo"][..],
            &["bench-mt", "--workloads", "storm"][..],
            &["bench-mt", "--serialize", "maybe"][..],
            &["bench-mt", "--format", "xml"][..],
            &["bench-mt", "--threads", "2,1"][..], // must ascend (run() checks)
        ] {
            let err = run_capture(bad).unwrap_err();
            assert!(err.code == 1 || err.code == 2, "{}", err.message);
        }
        // Unknown-scheme and unknown-workload are usage errors specifically.
        assert_eq!(
            run_capture(&["bench-mt", "--schemes", "cuckoo"])
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn bench_mt_out_merges_a_validated_section_into_the_serve_artifact() {
        // The committed serve artifact is the merge target fixture; it
        // lives at the repo root (or the overlay's rootpkg/ mirror).
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let src = [
            format!("{root}/BENCH_serve.json"),
            format!("{root}/rootpkg/BENCH_serve.json"),
        ]
        .into_iter()
        .find(|p| std::path::Path::new(p).exists())
        .expect("committed BENCH_serve.json");
        let out_path = tmp("bench-mt-merge.json");
        std::fs::copy(&src, &out_path).unwrap();

        let text = run_capture(&[
            "bench-mt",
            "--quick",
            "--random",
            "128",
            "--ops",
            "100",
            "--threads",
            "1",
            "--schemes",
            "lcd",
            "--serialize",
            "off",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("merged mt_scaling"), "{text}");

        let merged: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        lcds_bench::summary::validate_serve_summary(&merged).unwrap();
        lcds_bench::summary::validate_mt_scaling(&merged["mt_scaling"]).unwrap();
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn bench_kernels_table_names_every_config_and_batch() {
        let out = run_capture(&[
            "bench-kernels",
            "--random",
            "300",
            "--iters",
            "1",
            "--batches",
            "32,96",
        ])
        .unwrap();
        assert!(out.contains("scalar+none"), "{out}");
        assert!(out.contains("perkey-scalar"), "{out}");
        assert!(out.contains("ns/key"), "{out}");
        assert!(out.contains("combined vs scalar plan at batch 96"), "{out}");
        assert!(out.contains("combined vs per-key scalar path"), "{out}");
        // Per-key row + 4 configs x 2 batches, 2 header lines, 2 speedups.
        assert_eq!(out.lines().count(), 2 + 9 + 2, "{out}");
    }

    #[test]
    fn bench_kernels_json_self_validates_and_merges_into_the_artifact() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let src = [
            format!("{root}/BENCH_serve.json"),
            format!("{root}/rootpkg/BENCH_serve.json"),
        ]
        .into_iter()
        .find(|p| std::path::Path::new(p).exists())
        .expect("committed BENCH_serve.json");
        let out_path = tmp("bench-kernels-merge.json");
        std::fs::copy(&src, &out_path).unwrap();

        let text = run_capture(&[
            "bench-kernels",
            "--random",
            "300",
            "--iters",
            "1",
            "--batches",
            "64",
            "--format",
            "json",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("merged probe_kernels"), "{text}");
        let section_text = text.split_once('\n').map(|(_, rest)| rest).unwrap_or(&text);
        let section: serde_json::Value = serde_json::from_str(section_text).unwrap();
        lcds_bench::summary::validate_probe_kernels(&section).unwrap();

        let merged: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        lcds_bench::summary::validate_serve_summary(&merged).unwrap();
        lcds_bench::summary::validate_probe_kernels(&merged["probe_kernels"]).unwrap();
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn bench_kernels_rejects_bad_flags() {
        for bad in [
            &["bench-kernels", "--batches", "0"][..],
            &["bench-kernels", "--batches", ""][..],
            &["bench-kernels", "--iters", "0"][..],
            &["bench-kernels", "--random", "0"][..],
            &["bench-kernels", "--format", "xml"][..],
            &["bench-kernels", "stray"][..],
        ] {
            assert_eq!(run_capture(bad).unwrap_err().code, 2, "{bad:?}");
        }
    }

    #[test]
    fn trace_net_exports_joinable_net_spans() {
        let _guard = TRACING_GLOBALS.lock().unwrap();
        let out = run_capture(&[
            "trace",
            "--random",
            "128",
            "--queries",
            "64",
            "--batch",
            "32",
            "--net",
            "64",
        ])
        .unwrap();
        // Chrome-trace JSON straight to stdout must name all three legs
        // of the request path — client window, queue wait, worker service.
        assert!(out.contains(lcds_obs::names::NET_SPAN_CLIENT), "{out}");
        assert!(out.contains(lcds_obs::names::NET_SPAN_QUEUE), "{out}");
        assert!(out.contains(lcds_obs::names::NET_SPAN_SERVICE), "{out}");
    }

    #[test]
    fn trace_net_rejects_a_zero_query_count() {
        let err = run_capture(&["trace", "--net", "0"]).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
    }

    #[test]
    fn ordered_lifecycle_build_bulk_and_thread_determinism() {
        // The persisted bytes are a function of (keys, scheme) alone:
        // every --threads value must produce the identical artifact.
        let mut reference: Option<Vec<u8>> = None;
        let dict_path = tmp("ordered.dict");
        let dict_str = dict_path.to_str().unwrap().to_string();
        for threads in ["1", "2"] {
            let out = run_capture(&[
                "build-ordered",
                "--out",
                &dict_str,
                "--random",
                "300",
                "--seed",
                "9",
                "--threads",
                threads,
            ])
            .unwrap();
            assert!(out.contains("ord-replicated scheme"), "{out}");
            assert!(out.contains("built ordered n = 300"), "{out}");
            let bytes = std::fs::read(&dict_path).unwrap();
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(
                    want, &bytes,
                    "--threads {threads} changed the persisted ordered bytes"
                ),
            }
        }

        // All three ops against the persisted dict, through the engine.
        let out = run_capture(&[
            "bulk-ordered",
            &dict_str,
            "--queries",
            "200",
            "--batch",
            "64",
            "--seed",
            "9",
        ])
        .unwrap();
        assert!(out.contains("serving ordered n = 300 keys"), "{out}");
        assert!(out.contains("ord-replicated"), "{out}");
        assert!(out.contains("predecessor: 200 queries"), "{out}");
        assert!(out.contains("rank: 200 queries"), "{out}");
        assert!(out.contains("range-count: 100 range(s)"), "{out}");

        // The same persisted dict serves over TCP.
        let served = run_capture(&[
            "serve-net",
            &dict_str,
            "--ordered",
            "--duration",
            "0.05",
            "--addr",
            "127.0.0.1:0",
        ])
        .unwrap();
        assert!(
            served.contains("serve-net (ordered): n = 300 keys"),
            "{served}"
        );

        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn bulk_ordered_answers_a_known_key_file_exactly() {
        let keys_path = tmp("ordered-keys.txt");
        std::fs::write(&keys_path, "10\n20\n30\n").unwrap();
        let dict_path = tmp("ordered-known.dict");
        let dict_str = dict_path.to_str().unwrap().to_string();
        let out = run_capture(&[
            "build-ordered",
            "--out",
            &dict_str,
            "--keys",
            keys_path.to_str().unwrap(),
            "--scheme",
            "adversarial",
        ])
        .unwrap();
        assert!(out.contains("ord-adversarial scheme"), "{out}");
        assert!(out.contains("span [10 .. 30]"), "{out}");

        // 5 is below the minimum (no predecessor), 25 has one.
        let probes_path = tmp("ordered-probes.txt");
        std::fs::write(&probes_path, "5\n25\n").unwrap();
        let out = run_capture(&[
            "bulk-ordered",
            &dict_str,
            "--keys",
            probes_path.to_str().unwrap(),
            "--op",
            "predecessor",
        ])
        .unwrap();
        assert!(out.contains("1 with a predecessor, 1 below min"), "{out}");
        assert!(!out.contains("rank:"), "--op must select one op: {out}");

        // The [5, 25] range covers the stored keys 10 and 20.
        let out = run_capture(&[
            "bulk-ordered",
            &dict_str,
            "--keys",
            probes_path.to_str().unwrap(),
            "--op",
            "range-count",
        ])
        .unwrap();
        assert!(out.contains("1 non-empty, 2 stored keys covered"), "{out}");

        let _ = std::fs::remove_file(&keys_path);
        let _ = std::fs::remove_file(&probes_path);
        let _ = std::fs::remove_file(&dict_path);
    }

    #[test]
    fn ordered_cli_rejects_bad_flag_combinations() {
        for bad in [
            &["build-ordered", "--random", "8"][..], // no --out
            &[
                "build-ordered",
                "--out",
                "/tmp/x",
                "--random",
                "8",
                "--scheme",
                "cuckoo",
            ][..],
            &["bulk-ordered"][..], // no dict source
            &["bulk-ordered", "--random", "8", "--op", "sort"][..],
            &[
                "bulk-ordered",
                "--random",
                "8",
                "--keys",
                "f",
                "--queries",
                "4",
            ][..],
            &["bulk-ordered", "/nonexistent", "--scheme", "replicated"][..],
            &["serve-net", "--random", "8", "--ordered", "--dynamic"][..],
            &["serve-net", "--random", "8", "--ordered", "--shards", "2"][..],
            &["serve-net", "--random", "8", "--scheme", "replicated"][..],
            &[
                "loadgen",
                "--addr",
                "127.0.0.1:1",
                "--random",
                "8",
                "--ordered",
                "--write-every",
                "2",
            ][..],
            &["bench-mt", "--ordered", "--schemes", "lcd"][..],
            &["bench-mt", "--ordered", "--window", "0.5"][..],
            &["bench-mt", "--ordered", "--ord-ops", "sort"][..],
        ] {
            assert_eq!(run_capture(bad).unwrap_err().code, 2, "{bad:?}");
        }
    }

    #[test]
    fn serve_net_ordered_serves_the_ordered_loadgen_mix() {
        let port_file = tmp("serve-net-ordered.addr");
        let _ = std::fs::remove_file(&port_file);
        let port_file_str = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run_capture(&[
                "serve-net",
                "--ordered",
                "--random",
                "300",
                "--workers",
                "2",
                "--duration",
                "2.0",
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file_str,
            ])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if s.trim().contains(':') {
                    break s.trim().to_string();
                }
            }
            assert!(std::time::Instant::now() < deadline, "no port file");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        // Members-only pool: every predecessor lands on the key itself,
        // so the ordered mix must answer every opcode with hits.
        let out = run_capture(&[
            "loadgen",
            "--ordered",
            "--addr",
            &addr,
            "--random",
            "300",
            "--connections",
            "2",
            "--duration",
            "0.5",
            "--batch",
            "32",
            "--format",
            "json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert!(v["requests"].as_u64().unwrap() >= 3, "{out}");
        assert!(v["predecessors"].as_u64().unwrap() > 0, "{out}");
        assert!(v["ranks"].as_u64().unwrap() > 0, "{out}");
        assert!(v["range_counts"].as_u64().unwrap() > 0, "{out}");
        assert!(v["hits"].as_u64().unwrap() > 0, "{out}");

        let table = run_capture(&[
            "loadgen",
            "--ordered",
            "--addr",
            &addr,
            "--random",
            "300",
            "--connections",
            "1",
            "--duration",
            "0.2",
            "--batch",
            "16",
        ])
        .unwrap();
        assert!(table.contains("loadgen (ordered):"), "{table}");
        assert!(table.contains("ordered mix:"), "{table}");

        let served = server.join().unwrap().unwrap();
        assert!(served.contains("serve-net (ordered):"), "{served}");
        assert!(served.contains("served 2.0s:"), "{served}");
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn bench_mt_ordered_table_names_schemes_and_levels() {
        let out = run_capture(&[
            "bench-mt",
            "--ordered",
            "--random",
            "256",
            "--ops",
            "200",
            "--batch",
            "32",
            "--threads",
            "1",
            "--ord-ops",
            "predecessor,range-count",
            "--workloads",
            "uniform",
            "--serialize",
            "off",
        ])
        .unwrap();
        assert!(out.contains("bench-mt --ordered"), "{out}");
        assert!(out.contains("ord-replicated"), "{out}");
        assert!(out.contains("ord-adversarial"), "{out}");
        assert!(out.contains("phi_root"), "{out}");
    }

    #[test]
    fn bench_mt_ordered_json_self_validates_and_merges() {
        let out = run_capture(&[
            "bench-mt",
            "--ordered",
            "--quick",
            "--random",
            "128",
            "--ops",
            "100",
            "--threads",
            "1",
            "--schemes",
            "ord-replicated",
            "--serialize",
            "off",
            "--format",
            "json",
        ])
        .unwrap();
        let section: serde_json::Value = serde_json::from_str(&out).unwrap();
        lcds_bench::summary::validate_ordered(&section).unwrap();
        // `--quick` with no --ord-ops runs the predecessor op only.
        let rows = section["rows"].as_array().unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r["op"] == "predecessor"), "{out}");

        // And the --out merge lands a validated `ordered` section in the
        // committed serve artifact's envelope.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let src = [
            format!("{root}/BENCH_serve.json"),
            format!("{root}/rootpkg/BENCH_serve.json"),
        ]
        .into_iter()
        .find(|p| std::path::Path::new(p).exists())
        .expect("committed BENCH_serve.json");
        let out_path = tmp("bench-mt-ordered-merge.json");
        std::fs::copy(&src, &out_path).unwrap();
        let text = run_capture(&[
            "bench-mt",
            "--ordered",
            "--quick",
            "--random",
            "128",
            "--ops",
            "100",
            "--threads",
            "1",
            "--schemes",
            "ord-adversarial",
            "--serialize",
            "off",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("merged ordered"), "{text}");
        let merged: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        lcds_bench::summary::validate_serve_summary(&merged).unwrap();
        lcds_bench::summary::validate_ordered(&merged["ordered"]).unwrap();
        let _ = std::fs::remove_file(&out_path);
    }
}

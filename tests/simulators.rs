//! Cross-crate simulator tests: the contended-memory machines against real
//! dictionaries, and the invariants tying simulation to contention theory.

use lcds_sim::rounds::simulate;
use lcds_sim::threads::replay;
use lcds_sim::traces::collect;
use low_contention::prelude::*;

#[test]
fn round_machine_lower_bounds_hold() {
    // makespan ≥ ⌈total probes / p⌉ (work) and ≥ max cell busy (hot spot).
    let keys = uniform_keys(1024, 0x51);
    let mut rng = seeded(0x52);
    let d = build_dict(&keys, &mut rng).unwrap();
    let dist = positive_dist(&keys);
    for p in [1usize, 4, 16] {
        let t = collect(&d, &dist, p, 16, &mut rng);
        let r = simulate(&t.traces, &t.queries);
        assert!(r.makespan * p as u64 >= r.total_probes, "work bound, p={p}");
        assert!(r.makespan >= r.max_cell_busy, "hot-spot bound, p={p}");
        assert!(r.parallelism() <= p as f64 + 1e-9);
    }
}

#[test]
fn low_contention_beats_binary_search_on_the_round_machine() {
    let n = 2048;
    let keys = uniform_keys(n, 0x53);
    let mut rng = seeded(0x54);
    let lcd = build_dict(&keys, &mut rng).unwrap();
    let bin = BinarySearchDict::build(&keys).unwrap();
    let dist = positive_dist(&keys);

    let p = 64;
    let t_lcd = collect(&lcd, &dist, p, 16, &mut rng);
    let t_bin = collect(&bin, &dist, p, 16, &mut rng);
    let r_lcd = simulate(&t_lcd.traces, &t_lcd.queries);
    let r_bin = simulate(&t_bin.traces, &t_bin.queries);

    // Binary search: root cell serves once/round ⇒ throughput ≤ ~1.
    assert!(
        r_bin.throughput() <= 1.05,
        "binary search {}",
        r_bin.throughput()
    );
    // The flat structure should be several times faster at p = 64.
    assert!(
        r_lcd.throughput() > 3.0 * r_bin.throughput(),
        "lcd {} vs bin {}",
        r_lcd.throughput(),
        r_bin.throughput()
    );
}

#[test]
fn hot_cell_busy_matches_contention_prediction() {
    // E[#probes on cell j] = queries · Φ(j): the busiest cell of binary
    // search must be probed exactly once per query (the root).
    let keys = uniform_keys(512, 0x55);
    let bin = BinarySearchDict::build(&keys).unwrap();
    let dist = positive_dist(&keys);
    let mut rng = seeded(0x56);
    let t = collect(&bin, &dist, 8, 32, &mut rng);
    let r = simulate(&t.traces, &t.queries);
    assert_eq!(r.max_cell_busy, r.queries, "root probed once per query");
}

#[test]
fn thread_replay_accounts_for_every_probe() {
    let keys = uniform_keys(256, 0x57);
    let mut rng = seeded(0x58);
    let d = build_dict(&keys, &mut rng).unwrap();
    let dist = mixed_dist(&keys, 0.5, 256, 0x59);
    let t = collect(&d, &dist, 4, 200, &mut rng);
    let expected: u64 = t.traces.iter().map(|tr| tr.len() as u64).sum();
    let r = replay(&t.traces, &t.queries, d.num_cells());
    assert_eq!(r.total_probes, expected);
    assert_eq!(r.queries, 800);
    assert!(r.qps() > 0.0);
}

#[test]
fn traces_respect_probe_bounds() {
    let keys = uniform_keys(512, 0x5A);
    let mut rng = seeded(0x5B);
    let d = build_dict(&keys, &mut rng).unwrap();
    let dist = positive_dist(&keys);
    let t = collect(&d, &dist, 2, 100, &mut rng);
    for trace in &t.traces {
        assert_eq!(
            trace.len() as u64,
            100 * d.max_probes() as u64,
            "positive queries probe every row exactly once"
        );
        assert!(trace.iter().all(|&c| c < d.num_cells()));
    }
}

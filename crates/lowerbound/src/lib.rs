//! Section 3 of the paper, mechanized: the lower bound showing that for
//! *arbitrary* query distributions, balanced cell-probing schemes (with
//! independent probes, `b ≤ polylog(n)` bits per cell, and contention
//! `φ* ≤ polylog(n)/s`) need `t* = Ω(log log n)` probes on any problem of
//! VC-dimension `n`.
//!
//! A lower bound cannot be "run", but every ingredient of its proof can be
//! implemented, exercised, and measured:
//!
//! * [`vcdim`] — Definition 11 by brute force; verifies VC-dim(membership)
//!   `= n` (experiment T9).
//! * [`lemmas`] — Lemma 16's pigeonhole bound (property-tested on random
//!   stochastic matrices) and Lemma 15's adversary construction, actually
//!   searching for the hitting set the paper only proves exists (T8).
//! * [`productspace`] — Appendix A's Lemma 19 simulation (≥ ¼ success,
//!   exact conditional marginals) and Lemma 21 coupling (expected distinct
//!   cells ≤ `Σ_j max_i`), both validated by Monte Carlo (T7).
//! * [`game`] — the Lemma 14 communication game, playable against the
//!   Theorem 13 adversary; shows balanced strategies starving.
//! * [`recursion`] — the information recursion
//!   `E[C_t] ≤ √(a·E[C_{t−1}])` solved numerically: minimal feasible `t*`
//!   vs `n` reproduces the `log log n` curve (F5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blackbox;
pub mod game;
pub mod lemmas;
pub mod productspace;
pub mod recursion;
pub mod tree;
pub mod vcdim;

pub use blackbox::{measure_info, InfoMeasurement};
pub use game::{check_probe_spec, info_bound, play, uniform_strategy, GameTranscript};
pub use lemmas::{column_max_sum, lemma15_adversary, lemma16_holds, lemma16_r_size};
pub use productspace::{coupled_sample, simulate_probe, union_bound};
pub use recursion::{feasible, min_t_star, tstar_series};
pub use tree::{play_tree, GreedyTree, TreeStrategy, TreeTranscript, UniformTree};
pub use vcdim::ProblemTable;

//! Vectorized Mersenne-61 Horner evaluation (the `kernels-simd` feature).
//!
//! Both kernels evaluate the same Carter–Wegman polynomial as
//! [`crate::poly::horner`] over four keys per iteration. The arithmetic is
//! carry-free by construction: a 61-bit × 61-bit product is assembled from
//! four 32×32→64 partial products (`mul_epu32` lanes on AVX2, `vmull_u32`
//! on NEON) and folded with the Mersenne identities `2^61 ≡ 1` and
//! `2^64 ≡ 8 (mod P)`.
//!
//! Write `a·b = ll + mid·2^32 + hh·2^64` with `ll = alo·blo`,
//! `mid = alo·bhi + ahi·blo` and `hh = ahi·bhi`, where `alo/blo` are the
//! low 32 bits and `ahi/bhi` the high bits (so `ahi, bhi < 2^29` for
//! canonical inputs, making `mid < 2^62` — the sum of the two cross terms
//! cannot carry). Splitting `mid·2^32 = (mid >> 29)·2^61 + (mid & M29)·2^32`
//! with `M29 = 2^29 - 1` gives
//!
//! ```text
//! a·b ≡ (ll & P) + (ll >> 61) + (hh << 3)
//!       + ((mid & M29) << 32) + (mid >> 29)          (mod P)
//! ```
//!
//! Every right-hand term is below `2^61`, so the sum stays under `3·2^61`;
//! adding the Horner addend (`< P`) keeps it under `2^63`, one fold
//! `(r & P) + (r >> 61)` brings it to at most `P + 3`, and one conditional
//! subtraction canonicalizes. Because both paths end on the canonical
//! representative in `[0, P)`, algebraic equality *is* bit identity — the
//! property the `horner_batch` proptests pin down.

use crate::field::{reduce64, P};

const MASK29: u64 = (1 << 29) - 1;

/// Runs the vectorized kernel if this CPU supports it. Returns `false`
/// (leaving `out` untouched) when no vector unit is available, so the
/// caller can fall back to the scalar kernel.
pub fn horner_batch_simd(words: &[u64], xs: &[u64], out: &mut [u64]) -> bool {
    assert_eq!(xs.len(), out.len(), "output slice must match key slice");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { avx2::horner_batch(words, xs, out) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            // SAFETY: NEON support was just verified at runtime.
            unsafe { neon::horner_batch(words, xs, out) };
            return true;
        }
    }
    #[allow(unreachable_code)]
    {
        let _ = (words, xs, out);
        false
    }
}

/// The vector ISA the compiled-in kernel targets, if this CPU has it.
pub fn simd_isa() -> Option<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some("avx2");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Some("neon");
        }
    }
    None
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{reduce64, MASK29, P};
    use core::arch::x86_64::*;

    /// `horner` over 4 keys per iteration; the tail (< 4 keys) runs the
    /// scalar path, which produces identical canonical representatives.
    #[target_feature(enable = "avx2")]
    pub unsafe fn horner_batch(words: &[u64], xs: &[u64], out: &mut [u64]) {
        let vp = _mm256_set1_epi64x(P as i64);
        let full = xs.len() - xs.len() % 4;
        let mut i = 0;
        while i < full {
            let raw = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
            let x = reduce_lanes(raw, vp);
            let mut acc = _mm256_setzero_si256();
            for &w in words.iter().rev() {
                let vw = _mm256_set1_epi64x(reduce64(w) as i64);
                acc = mul_add_lanes(acc, x, vw, vp);
            }
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, acc);
            i += 4;
        }
        for j in full..xs.len() {
            out[j] = crate::poly::horner(words, xs[j]);
        }
    }

    /// `reduce64` on 4 lanes: arbitrary `u64` → canonical field element.
    /// `(x & P) + (x >> 61) ≤ P + 6`, so one conditional subtract finishes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_lanes(x: __m256i, vp: __m256i) -> __m256i {
        let folded = _mm256_add_epi64(_mm256_and_si256(x, vp), _mm256_srli_epi64::<61>(x));
        cond_sub_p(folded, vp)
    }

    /// Subtracts `P` from lanes `≥ P`. Callers keep lanes `< 2^62`, so the
    /// signed 64-bit compare is exact (both operands stay positive).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cond_sub_p(r: __m256i, vp: __m256i) -> __m256i {
        let pm1 = _mm256_set1_epi64x((P - 1) as i64);
        let ge = _mm256_cmpgt_epi64(r, pm1);
        _mm256_sub_epi64(r, _mm256_and_si256(ge, vp))
    }

    /// `(acc·x + w) mod P` on 4 lanes; all inputs canonical (`< P`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_add_lanes(acc: __m256i, x: __m256i, w: __m256i, vp: __m256i) -> __m256i {
        // mul_epu32 multiplies the low 32 bits of each 64-bit lane.
        let ahi = _mm256_srli_epi64::<32>(acc);
        let bhi = _mm256_srli_epi64::<32>(x);
        let ll = _mm256_mul_epu32(acc, x);
        let lh = _mm256_mul_epu32(acc, bhi);
        let hl = _mm256_mul_epu32(ahi, x);
        let hh = _mm256_mul_epu32(ahi, bhi);
        let mid = _mm256_add_epi64(lh, hl); // < 2^62: cannot carry
        let m29 = _mm256_set1_epi64x(MASK29 as i64);
        // acc·x ≡ (ll & P) + (ll >> 61) + (hh << 3)
        //         + ((mid & M29) << 32) + (mid >> 29)   (mod P), sum < 3·2^61.
        let mut r = _mm256_add_epi64(_mm256_and_si256(ll, vp), _mm256_srli_epi64::<61>(ll));
        r = _mm256_add_epi64(r, _mm256_slli_epi64::<3>(hh));
        r = _mm256_add_epi64(r, _mm256_slli_epi64::<32>(_mm256_and_si256(mid, m29)));
        r = _mm256_add_epi64(r, _mm256_srli_epi64::<29>(mid));
        // + w keeps the sum < 2^63; one fold reaches ≤ P + 3.
        r = _mm256_add_epi64(r, w);
        let folded = _mm256_add_epi64(_mm256_and_si256(r, vp), _mm256_srli_epi64::<61>(r));
        cond_sub_p(folded, vp)
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{reduce64, MASK29, P};
    use core::arch::aarch64::*;

    /// Same four-key iteration as the AVX2 kernel, built from two 2-lane
    /// NEON vectors; the algebra (and therefore the bit-identity argument)
    /// is identical.
    #[target_feature(enable = "neon")]
    pub unsafe fn horner_batch(words: &[u64], xs: &[u64], out: &mut [u64]) {
        let vp = vdupq_n_u64(P);
        let full = xs.len() - xs.len() % 4;
        let mut i = 0;
        while i < full {
            let x0 = reduce_lanes(vld1q_u64(xs.as_ptr().add(i)), vp);
            let x1 = reduce_lanes(vld1q_u64(xs.as_ptr().add(i + 2)), vp);
            let mut a0 = vdupq_n_u64(0);
            let mut a1 = vdupq_n_u64(0);
            for &w in words.iter().rev() {
                let vw = vdupq_n_u64(reduce64(w));
                a0 = mul_add_lanes(a0, x0, vw, vp);
                a1 = mul_add_lanes(a1, x1, vw, vp);
            }
            vst1q_u64(out.as_mut_ptr().add(i), a0);
            vst1q_u64(out.as_mut_ptr().add(i + 2), a1);
            i += 4;
        }
        for j in full..xs.len() {
            out[j] = crate::poly::horner(words, xs[j]);
        }
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn reduce_lanes(x: uint64x2_t, vp: uint64x2_t) -> uint64x2_t {
        let folded = vaddq_u64(vandq_u64(x, vp), vshrq_n_u64::<61>(x));
        cond_sub_p(folded, vp)
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn cond_sub_p(r: uint64x2_t, vp: uint64x2_t) -> uint64x2_t {
        let ge = vcgeq_u64(r, vp);
        vsubq_u64(r, vandq_u64(ge, vp))
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn mul_add_lanes(
        acc: uint64x2_t,
        x: uint64x2_t,
        w: uint64x2_t,
        vp: uint64x2_t,
    ) -> uint64x2_t {
        let alo = vmovn_u64(acc);
        let ahi = vshrn_n_u64::<32>(acc);
        let blo = vmovn_u64(x);
        let bhi = vshrn_n_u64::<32>(x);
        let ll = vmull_u32(alo, blo);
        let lh = vmull_u32(alo, bhi);
        let hl = vmull_u32(ahi, blo);
        let hh = vmull_u32(ahi, bhi);
        let mid = vaddq_u64(lh, hl); // < 2^62: cannot carry
        let m29 = vdupq_n_u64(MASK29);
        let mut r = vaddq_u64(vandq_u64(ll, vp), vshrq_n_u64::<61>(ll));
        r = vaddq_u64(r, vshlq_n_u64::<3>(hh));
        r = vaddq_u64(r, vshlq_n_u64::<32>(vandq_u64(mid, m29)));
        r = vaddq_u64(r, vshrq_n_u64::<29>(mid));
        r = vaddq_u64(r, w);
        let folded = vaddq_u64(vandq_u64(r, vp), vshrq_n_u64::<61>(r));
        cond_sub_p(folded, vp)
    }
}

//! The paper's quantitative claims, asserted end-to-end with the *exact*
//! contention computation.

use lcds_workloads::adversarial::adversarial_fks_keys;
use lcds_workloads::querygen::negative_pool;
use lcds_workloads::rng::FirstWordRng;
use low_contention::prelude::*;

/// Theorem 3: the low-contention dictionary's per-step contention ratio is
/// a constant independent of `n`, for positive AND negative uniform
/// queries (Lemma 10), and its probes and words/key are n-independent too.
#[test]
fn theorem3_full_package_across_sizes() {
    let mut ratios = Vec::new();
    for n in [512usize, 2048, 8192, 32768] {
        let keys = uniform_keys(n, 0x7E0 + n as u64);
        let mut rng = seeded(n as u64);
        let d = build_dict(&keys, &mut rng).unwrap();

        let pos = exact_contention(&d, &QueryPool::uniform(&keys)).max_step_ratio();
        // A finite pool under-samples the 2^61-key negative set; the max
        // statistic converges to the true Lemma 10 value only once each
        // cell sees many pool keys, hence the 32n pool.
        let negs = negative_pool(&keys, 32 * n, 0x7E1);
        let neg = exact_contention(&d, &QueryPool::uniform(&negs)).max_step_ratio();

        assert!(pos < 45.0, "n={n}: positive ratio {pos}");
        assert!(neg < 45.0, "n={n}: negative ratio {neg} (Lemma 10)");
        assert!(d.max_probes() <= 16, "n={n}: probes {}", d.max_probes());
        assert!(
            d.words_per_key() < 40.0,
            "n={n}: space {}",
            d.words_per_key()
        );
        ratios.push(pos);
    }
    // Flatness across a 64× size range: no systematic growth.
    let spread = ratios.iter().cloned().fold(0.0, f64::max)
        / ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.5, "ratio should be n-independent: {ratios:?}");
}

/// §1.3: the adversarial FKS instance really exhibits `Θ(√n)`-times-optimal
/// contention, and it grows as √n.
#[test]
fn fks_worst_case_is_sqrt_n() {
    let mut ratios = Vec::new();
    for n in [1024usize, 4096, 16384] {
        let seed = 0xADF5_0000 + n as u64;
        let keys = adversarial_fks_keys(n, seed);
        let mut rng = FirstWordRng::new(seed, seeded(seed ^ 99));
        let d = FksDict::build_default(&keys, &mut rng).unwrap();
        assert!(
            d.max_bucket_load as f64 >= (n as f64).sqrt() - 1.0,
            "n={n}: bucket {}",
            d.max_bucket_load
        );
        let ratio = exact_contention(&d, &QueryPool::uniform(&keys)).max_step_ratio();
        // ratio = (max ℓ / n) · cells ≈ √n · cells/n ≈ 5√n.
        assert!(
            ratio >= 2.0 * (n as f64).sqrt(),
            "n={n}: ratio {ratio} below the √n regime"
        );
        ratios.push(ratio);
    }
    assert!(
        ratios[2] / ratios[0] > 2.5,
        "√n growth expected over a 16× range: {ratios:?}"
    );
}

/// §1: binary search's root makes its ratio exactly `s`.
#[test]
fn binary_search_ratio_is_s() {
    for n in [100usize, 1000, 10000] {
        let keys = uniform_keys(n, 3);
        let d = BinarySearchDict::build(&keys).unwrap();
        let ratio = exact_contention(&d, &QueryPool::uniform(&keys)).max_step_ratio();
        assert!((ratio - n as f64).abs() < 1e-6, "n={n}: {ratio}");
    }
}

/// Monte-Carlo measurement agrees with the exact computation for every
/// scheme (validating both sides of the instrumentation).
#[test]
fn monte_carlo_cross_validates_exact() {
    let n = 1024;
    let keys = uniform_keys(n, 0xCC);
    let mut rng = seeded(0xCD);
    let dist = positive_dist(&keys);

    let lcd = build_dict(&keys, &mut rng).unwrap();
    let fks = FksDict::build_default(&keys, &mut rng).unwrap();
    let cuckoo = CuckooDict::build_default(&keys, &mut rng).unwrap();
    let bin = BinarySearchDict::build(&keys).unwrap();

    fn check<D: CellProbeDict + ExactProbes>(
        d: &D,
        dist: &impl QueryDistribution,
        rng: &mut impl rand::RngCore,
    ) {
        let exact = exact_contention(d, &dist.pool());
        let mc = measure_contention(d, dist, 300_000, rng);
        for t in 0..exact.step_max.len() {
            let (e, m) = (exact.step_max[t], mc.profile.step_max[t]);
            if e.max(m) > 1e-4 {
                let rel = (e - m).abs() / e.max(m);
                assert!(rel < 0.35, "{}: step {t}: exact {e} vs mc {m}", d.name());
            }
        }
        assert!(mc.profile.conservation_ok(1e-9));
        assert!(exact.conservation_ok(1e-9));
    }
    check(&lcd, &dist, &mut rng);
    check(&fks, &dist, &mut rng);
    check(&cuckoo, &dist, &mut rng);
    check(&bin, &dist, &mut rng);
}

/// Definition 1's conservation law `Σ_j Φ_t(j) ≤ 1`, with equality while
/// all queries are still running — exact, per scheme, per step.
#[test]
fn per_step_mass_is_conserved() {
    let keys = uniform_keys(512, 0xEE);
    let mut rng = seeded(0xEF);
    let d = build_dict(&keys, &mut rng).unwrap();
    let prof = exact_contention(&d, &QueryPool::uniform(&keys));
    for (t, &mass) in prof.step_sum.iter().enumerate() {
        assert!(
            (mass - 1.0).abs() < 1e-9,
            "positive queries probe every row once; step {t} mass {mass}"
        );
    }
}

/// The paper's replication observation: without replication the parameter
/// cell has contention 1; with it, the residual structure binds.
#[test]
fn replication_moves_the_bottleneck() {
    let keys = uniform_keys(2048, 0xAB);
    let mut rng = seeded(0xAC);
    let pool = QueryPool::uniform(&keys);

    let plain = FksDict::build(
        &keys,
        lcds_baselines::FksConfig {
            replication: Replication::None,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let replicated = FksDict::build_default(&keys, &mut rng).unwrap();

    let p_plain = exact_contention(&plain, &pool);
    let p_rep = exact_contention(&replicated, &pool);
    assert!(
        (p_plain.step_max[0] - 1.0).abs() < 1e-12,
        "unreplicated seed is probed by all"
    );
    assert!(
        p_rep.step_max[0] < 1e-2,
        "replication flattens the seed row"
    );
    assert!(
        p_rep.max_step() >= p_rep.step_max[1] && p_rep.step_max[1] > p_rep.step_max[0],
        "directory becomes the binding row"
    );
}

//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame — request or response — is a 20-byte header followed by an
//! opcode-specific payload, all little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0x4C434453 ("LCDS")
//! 4       1     version      1
//! 5       1     opcode
//! 6       2     reserved     must be zero
//! 8       8     request id   echoed verbatim in the response
//! 16      4     payload len  ≤ MAX_PAYLOAD (16 MiB)
//! 20      …     payload
//! ```
//!
//! The decoder follows the same hardening discipline as
//! [`lcds_core::persist::load`]: **every length is validated before it is
//! trusted** — the payload length against [`MAX_PAYLOAD`] before any
//! buffer is sized, the bulk key count against the payload length before
//! the key vector is allocated — and every failure is a typed
//! [`ProtoError`], never a panic. Arbitrary bytes fed to
//! [`decode_request`] / [`decode_response`] produce an error or a value;
//! the proptests in `tests/proto.rs` hold the decoder to that.
//!
//! Bulk requests carry a `first_index`: the **global stream position** of
//! their first key. Key `i` of the frame draws its balancing randomness
//! from position `first_index + i`, so a query stream split across
//! frames, pipelined windows, or `Busy` retries answers bit-identically
//! to one in-process [`lcds_serve::Engine::bulk_contains`] call.

use std::io::{self, Read};

/// Frame magic, `"LCDS"` read as a little-endian `u32`.
pub const MAGIC: u32 = 0x4C43_4453;

/// Current protocol version. Bump on any layout change. Version 2 added
/// the mutation opcodes ([`OP_INSERT`] / [`OP_REMOVE`] / [`OP_FLUSH`] and
/// their responses); version 3 added the telemetry opcode
/// ([`OP_TELEMETRY`] and its JSON-carrying response); version 4 added the
/// ordered-query opcodes ([`OP_PREDECESSOR`] / [`OP_RANK`] /
/// [`OP_RANGE_COUNT`] and their word-vector responses). Both ends must
/// speak the same version — the decoder rejects anything else as
/// [`ProtoError::BadVersion`].
pub const VERSION: u8 = 4;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Largest payload a frame may declare (16 MiB). Anything larger is
/// rejected as [`ProtoError::Oversized`] *before* any allocation.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Most keys one bulk frame can carry (fixed 12-byte bulk header + 8
/// bytes per key within [`MAX_PAYLOAD`]).
pub const MAX_BULK_KEYS: u32 = (MAX_PAYLOAD - 12) / 8;

/// Most `(lo, hi)` pairs one range-count frame can carry (fixed 12-byte
/// bulk header + 16 bytes per pair within [`MAX_PAYLOAD`]).
pub const MAX_BULK_RANGES: u32 = (MAX_PAYLOAD - 12) / 16;

/// Request opcode: liveness probe, answered inline by the server.
pub const OP_PING: u8 = 0x01;
/// Request opcode: single-key membership at a stream position.
pub const OP_CONTAINS: u8 = 0x02;
/// Request opcode: bulk membership of a stream slice.
pub const OP_BULK_CONTAINS: u8 = 0x03;
/// Request opcode: member count of a stream slice.
pub const OP_BULK_COUNT: u8 = 0x04;
/// Request opcode: dictionary statistics, answered inline.
pub const OP_STATS: u8 = 0x05;
/// Request opcode: insert one key (dynamic servers only).
pub const OP_INSERT: u8 = 0x06;
/// Request opcode: remove one key (dynamic servers only).
pub const OP_REMOVE: u8 = 0x07;
/// Request opcode: force a merge-and-rebuild now (dynamic servers only).
pub const OP_FLUSH: u8 = 0x08;
/// Request opcode: latest telemetry window snapshot, answered inline.
pub const OP_TELEMETRY: u8 = 0x09;
/// Request opcode: bulk predecessor of a stream slice (ordered servers
/// only).
pub const OP_PREDECESSOR: u8 = 0x0A;
/// Request opcode: bulk strict rank of a stream slice (ordered servers
/// only).
pub const OP_RANK: u8 = 0x0B;
/// Request opcode: bulk inclusive range count of a stream slice of
/// `(lo, hi)` pairs (ordered servers only).
pub const OP_RANGE_COUNT: u8 = 0x0C;

/// Response opcode for [`OP_PING`].
pub const OP_PONG: u8 = 0x81;
/// Response opcode for [`OP_CONTAINS`].
pub const OP_CONTAINS_RESULT: u8 = 0x82;
/// Response opcode for [`OP_BULK_CONTAINS`].
pub const OP_BULK_CONTAINS_RESULT: u8 = 0x83;
/// Response opcode for [`OP_BULK_COUNT`].
pub const OP_BULK_COUNT_RESULT: u8 = 0x84;
/// Response opcode for [`OP_STATS`].
pub const OP_STATS_RESULT: u8 = 0x85;
/// Response opcode for [`OP_INSERT`].
pub const OP_INSERT_RESULT: u8 = 0x86;
/// Response opcode for [`OP_REMOVE`].
pub const OP_REMOVE_RESULT: u8 = 0x87;
/// Response opcode for [`OP_FLUSH`].
pub const OP_FLUSH_RESULT: u8 = 0x88;
/// Response opcode for [`OP_TELEMETRY`]: a length-prefixed UTF-8 JSON
/// document (the latest window snapshot).
pub const OP_TELEMETRY_RESULT: u8 = 0x89;
/// Response opcode for [`OP_PREDECESSOR`]: one word per query, the
/// predecessor key or the no-predecessor sentinel (`u64::MAX`, safe
/// because every storable key is below `2^61 - 1`).
pub const OP_PREDECESSOR_RESULT: u8 = 0x8A;
/// Response opcode for [`OP_RANK`]: one rank word per query.
pub const OP_RANK_RESULT: u8 = 0x8B;
/// Response opcode for [`OP_RANGE_COUNT`]: one count word per pair.
pub const OP_RANGE_COUNT_RESULT: u8 = 0x8C;
/// Response opcode: request shed because the worker queue was full.
pub const OP_BUSY: u8 = 0xE0;
/// Response opcode: server-side failure, payload is a UTF-8 message.
pub const OP_ERROR: u8 = 0xEE;

/// Why a frame failed to decode (or an I/O layer failed underneath).
#[derive(Debug)]
pub enum ProtoError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic(u32),
    /// The version byte was not [`VERSION`].
    BadVersion(u8),
    /// An opcode this decoder does not know (includes a response opcode
    /// where a request was expected, and vice versa).
    UnknownOpcode(u8),
    /// The input ends before the frame does.
    Truncated {
        /// Bytes the frame needs.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The header declared a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        declared: u32,
        /// The protocol's cap.
        max: u32,
    },
    /// A structurally invalid payload (length mismatch, bad enum byte,
    /// non-canonical padding, non-UTF-8 error text, …).
    BadPayload(&'static str),
    /// The underlying reader or writer failed.
    Io(io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(got) => write!(f, "bad frame magic {got:#010x}"),
            ProtoError::BadVersion(got) => {
                write!(
                    f,
                    "unsupported protocol version {got} (this end speaks {VERSION})"
                )
            }
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            ProtoError::Oversized { declared, max } => {
                write!(
                    f,
                    "declared payload of {declared} bytes exceeds the {max}-byte cap"
                )
            }
            ProtoError::BadPayload(why) => write!(f, "bad payload: {why}"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// Dictionary statistics served by the `Stats` opcode — everything a
/// client needs to label a run without re-reading persist headers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DictStats {
    /// Stored keys across all shards.
    pub keys: u64,
    /// Cells across all shards.
    pub cells: u64,
    /// Shard count (1 for a single dictionary).
    pub shards: u32,
    /// Per-query probe bound.
    pub max_probes: u32,
    /// The query seed answers are deterministic in.
    pub seed: u64,
}

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Membership of `key` at global stream position `index`.
    Contains {
        /// Global stream position of this query.
        index: u64,
        /// The probed key.
        key: u64,
    },
    /// Bulk membership of a stream slice.
    BulkContains {
        /// Global stream position of `keys[0]`.
        first_index: u64,
        /// The probed keys.
        keys: Vec<u64>,
    },
    /// Member count of a stream slice.
    BulkCount {
        /// Global stream position of `keys[0]`.
        first_index: u64,
        /// The probed keys.
        keys: Vec<u64>,
    },
    /// Dictionary statistics.
    Stats,
    /// Inserts `key` into a dynamic dictionary. Static servers answer
    /// with [`Response::Error`].
    Insert {
        /// The key to insert.
        key: u64,
    },
    /// Removes `key` from a dynamic dictionary.
    Remove {
        /// The key to remove.
        key: u64,
    },
    /// Forces a merge-and-rebuild of a dynamic dictionary now.
    Flush,
    /// Latest telemetry window snapshot. Servers not started with a
    /// telemetry window answer with [`Response::Error`].
    Telemetry,
    /// Bulk predecessor queries over a stream slice. Only ordered
    /// servers answer; membership servers reply with [`Response::Error`].
    Predecessor {
        /// Global stream position of `keys[0]`.
        first_index: u64,
        /// The queried keys.
        keys: Vec<u64>,
    },
    /// Bulk strict-rank queries over a stream slice (ordered servers
    /// only).
    Rank {
        /// Global stream position of `keys[0]`.
        first_index: u64,
        /// The queried keys.
        keys: Vec<u64>,
    },
    /// Bulk inclusive range counts over a stream slice of `(lo, hi)`
    /// pairs (ordered servers only). Each pair occupies one stream
    /// position (`first_index + i`); its two descents share that
    /// position's randomness stream.
    RangeCount {
        /// Global stream position of `ranges[0]`.
        first_index: u64,
        /// The queried `(lo, hi)` pairs, inclusive on both ends.
        ranges: Vec<(u64, u64)>,
    },
}

impl Request {
    /// This request's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => OP_PING,
            Request::Contains { .. } => OP_CONTAINS,
            Request::BulkContains { .. } => OP_BULK_CONTAINS,
            Request::BulkCount { .. } => OP_BULK_COUNT,
            Request::Stats => OP_STATS,
            Request::Insert { .. } => OP_INSERT,
            Request::Remove { .. } => OP_REMOVE,
            Request::Flush => OP_FLUSH,
            Request::Telemetry => OP_TELEMETRY,
            Request::Predecessor { .. } => OP_PREDECESSOR,
            Request::Rank { .. } => OP_RANK,
            Request::RangeCount { .. } => OP_RANGE_COUNT,
        }
    }

    /// Stable label for per-opcode metrics
    /// (`lcds_net_request_latency_ns{op="…"}`).
    pub fn label(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Contains { .. } => "contains",
            Request::BulkContains { .. } => "bulk_contains",
            Request::BulkCount { .. } => "bulk_count",
            Request::Stats => "stats",
            Request::Insert { .. } => "insert",
            Request::Remove { .. } => "remove",
            Request::Flush => "flush",
            Request::Telemetry => "telemetry",
            Request::Predecessor { .. } => "predecessor",
            Request::Rank { .. } => "rank",
            Request::RangeCount { .. } => "range_count",
        }
    }
}

/// A decoded server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Single-key membership answer.
    Contains(bool),
    /// Bulk membership answers, in request key order.
    BulkContains(Vec<bool>),
    /// Member count.
    BulkCount(u64),
    /// Dictionary statistics.
    Stats(DictStats),
    /// Insert result: whether the key was newly inserted.
    Inserted(bool),
    /// Remove result: whether the key was present.
    Removed(bool),
    /// Flush result: the published generation index and live key count.
    Flushed {
        /// Generation index published by the flush.
        generation: u64,
        /// Live keys after the flush.
        keys: u64,
    },
    /// Telemetry snapshot: a self-describing JSON document (the
    /// [`lcds_obs::timeseries::TimeSeries::wire_snapshot`] schema —
    /// latest window delta, ring length, SLO status).
    Telemetry(String),
    /// Bulk predecessor answers, one word per query in request order;
    /// `u64::MAX` is the no-predecessor sentinel (never a storable key).
    PredecessorResult(Vec<u64>),
    /// Bulk strict-rank answers, one word per query in request order.
    RankResult(Vec<u64>),
    /// Bulk inclusive range counts, one word per pair in request order.
    RangeCountResult(Vec<u64>),
    /// Shed: the worker queue was full; retry after backing off.
    Busy,
    /// Server-side failure.
    Error(String),
}

impl Response {
    /// This response's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Pong => OP_PONG,
            Response::Contains(_) => OP_CONTAINS_RESULT,
            Response::BulkContains(_) => OP_BULK_CONTAINS_RESULT,
            Response::BulkCount(_) => OP_BULK_COUNT_RESULT,
            Response::Stats(_) => OP_STATS_RESULT,
            Response::Inserted(_) => OP_INSERT_RESULT,
            Response::Removed(_) => OP_REMOVE_RESULT,
            Response::Flushed { .. } => OP_FLUSH_RESULT,
            Response::Telemetry(_) => OP_TELEMETRY_RESULT,
            Response::PredecessorResult(_) => OP_PREDECESSOR_RESULT,
            Response::RankResult(_) => OP_RANK_RESULT,
            Response::RangeCountResult(_) => OP_RANGE_COUNT_RESULT,
            Response::Busy => OP_BUSY,
            Response::Error(_) => OP_ERROR,
        }
    }
}

/// A validated frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// The frame's opcode (not yet checked against either opcode set).
    pub opcode: u8,
    /// Client-chosen correlation id, echoed in the response.
    pub request_id: u64,
    /// Declared payload length, already checked against [`MAX_PAYLOAD`].
    pub payload_len: u32,
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("caller sliced 4 bytes"))
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("caller sliced 8 bytes"))
}

/// Validates the fixed 20-byte header at the front of `buf`.
pub fn decode_header(buf: &[u8]) -> Result<Header, ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated {
            need: HEADER_LEN,
            have: buf.len(),
        });
    }
    let magic = le_u32(&buf[0..4]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    if buf[4] != VERSION {
        return Err(ProtoError::BadVersion(buf[4]));
    }
    if buf[6] != 0 || buf[7] != 0 {
        return Err(ProtoError::BadPayload("reserved header bytes must be zero"));
    }
    let payload_len = le_u32(&buf[16..20]);
    if payload_len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized {
            declared: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    Ok(Header {
        opcode: buf[5],
        request_id: le_u64(&buf[8..16]),
        payload_len,
    })
}

fn frame(opcode: u8, request_id: u64, payload: Vec<u8>) -> Result<Vec<u8>, ProtoError> {
    if payload.len() as u64 > MAX_PAYLOAD as u64 {
        return Err(ProtoError::Oversized {
            declared: payload.len().min(u32::MAX as usize) as u32,
            max: MAX_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(opcode);
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

fn bulk_payload(first_index: u64, keys: &[u64]) -> Vec<u8> {
    let mut p = Vec::with_capacity(12 + keys.len() * 8);
    p.extend_from_slice(&first_index.to_le_bytes());
    p.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for k in keys {
        p.extend_from_slice(&k.to_le_bytes());
    }
    p
}

/// Encodes one request frame. Fails only when a bulk request exceeds
/// [`MAX_BULK_KEYS`] (callers chunk far below that).
pub fn encode_request(request_id: u64, req: &Request) -> Result<Vec<u8>, ProtoError> {
    let payload = match req {
        Request::Ping | Request::Stats | Request::Flush | Request::Telemetry => Vec::new(),
        Request::Insert { key } | Request::Remove { key } => key.to_le_bytes().to_vec(),
        Request::Contains { index, key } => {
            let mut p = Vec::with_capacity(16);
            p.extend_from_slice(&index.to_le_bytes());
            p.extend_from_slice(&key.to_le_bytes());
            p
        }
        Request::BulkContains { first_index, keys }
        | Request::BulkCount { first_index, keys }
        | Request::Predecessor { first_index, keys }
        | Request::Rank { first_index, keys } => {
            if keys.len() as u64 > MAX_BULK_KEYS as u64 {
                return Err(ProtoError::BadPayload("bulk request exceeds MAX_BULK_KEYS"));
            }
            bulk_payload(*first_index, keys)
        }
        Request::RangeCount {
            first_index,
            ranges,
        } => {
            if ranges.len() as u64 > MAX_BULK_RANGES as u64 {
                return Err(ProtoError::BadPayload(
                    "range request exceeds MAX_BULK_RANGES",
                ));
            }
            let mut p = Vec::with_capacity(12 + ranges.len() * 16);
            p.extend_from_slice(&first_index.to_le_bytes());
            p.extend_from_slice(&(ranges.len() as u32).to_le_bytes());
            for (lo, hi) in ranges {
                p.extend_from_slice(&lo.to_le_bytes());
                p.extend_from_slice(&hi.to_le_bytes());
            }
            p
        }
    };
    frame(req.opcode(), request_id, payload)
}

/// Encodes one response frame. Fails only when a bulk result exceeds the
/// payload cap (impossible for answers to a valid request).
pub fn encode_response(request_id: u64, resp: &Response) -> Result<Vec<u8>, ProtoError> {
    let payload = match resp {
        Response::Pong | Response::Busy => Vec::new(),
        Response::Contains(hit) => vec![u8::from(*hit)],
        Response::Inserted(fresh) => vec![u8::from(*fresh)],
        Response::Removed(was_present) => vec![u8::from(*was_present)],
        Response::Flushed { generation, keys } => {
            let mut p = Vec::with_capacity(16);
            p.extend_from_slice(&generation.to_le_bytes());
            p.extend_from_slice(&keys.to_le_bytes());
            p
        }
        Response::BulkContains(bits) => {
            if bits.len() as u64 > u32::MAX as u64 {
                return Err(ProtoError::BadPayload("bulk result exceeds u32 count"));
            }
            let mut p = Vec::with_capacity(4 + bits.len().div_ceil(8));
            p.extend_from_slice(&(bits.len() as u32).to_le_bytes());
            p.resize(4 + bits.len().div_ceil(8), 0u8);
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    p[4 + i / 8] |= 1 << (i % 8);
                }
            }
            p
        }
        Response::BulkCount(count) => count.to_le_bytes().to_vec(),
        Response::PredecessorResult(words)
        | Response::RankResult(words)
        | Response::RangeCountResult(words) => {
            if words.len() as u64 > (MAX_PAYLOAD as u64 - 4) / 8 {
                return Err(ProtoError::BadPayload(
                    "word-vector result exceeds the payload cap",
                ));
            }
            let mut p = Vec::with_capacity(4 + words.len() * 8);
            p.extend_from_slice(&(words.len() as u32).to_le_bytes());
            for w in words {
                p.extend_from_slice(&w.to_le_bytes());
            }
            p
        }
        Response::Stats(s) => {
            let mut p = Vec::with_capacity(32);
            p.extend_from_slice(&s.keys.to_le_bytes());
            p.extend_from_slice(&s.cells.to_le_bytes());
            p.extend_from_slice(&s.shards.to_le_bytes());
            p.extend_from_slice(&s.max_probes.to_le_bytes());
            p.extend_from_slice(&s.seed.to_le_bytes());
            p
        }
        Response::Telemetry(msg) | Response::Error(msg) => {
            let bytes = msg.as_bytes();
            let take = bytes.len().min((MAX_PAYLOAD as usize) - 4);
            // Truncate on a char boundary so the payload stays UTF-8.
            let take = (0..=take)
                .rev()
                .find(|&i| msg.is_char_boundary(i))
                .unwrap_or(0);
            let mut p = Vec::with_capacity(4 + take);
            p.extend_from_slice(&(take as u32).to_le_bytes());
            p.extend_from_slice(&bytes[..take]);
            p
        }
    };
    frame(resp.opcode(), request_id, payload)
}

fn expect_len(p: &[u8], want: usize, what: &'static str) -> Result<(), ProtoError> {
    if p.len() != want {
        return Err(ProtoError::BadPayload(what));
    }
    Ok(())
}

fn decode_bulk(p: &[u8]) -> Result<(u64, Vec<u64>), ProtoError> {
    if p.len() < 12 {
        return Err(ProtoError::BadPayload(
            "bulk payload shorter than its fixed header",
        ));
    }
    let first_index = le_u64(&p[0..8]);
    let count = le_u32(&p[8..12]);
    // Validate the declared count against the *actual* payload length
    // before allocating anything sized by it.
    if 12u64 + count as u64 * 8 != p.len() as u64 {
        return Err(ProtoError::BadPayload(
            "bulk key count disagrees with payload length",
        ));
    }
    let mut keys = Vec::with_capacity(count as usize);
    for chunk in p[12..].chunks_exact(8) {
        keys.push(le_u64(chunk));
    }
    Ok((first_index, keys))
}

/// Decodes a request payload for an already-validated header.
pub fn decode_request_payload(h: &Header, p: &[u8]) -> Result<Request, ProtoError> {
    expect_len(
        p,
        h.payload_len as usize,
        "payload slice disagrees with header",
    )?;
    match h.opcode {
        OP_PING => {
            expect_len(p, 0, "ping carries no payload")?;
            Ok(Request::Ping)
        }
        OP_STATS => {
            expect_len(p, 0, "stats carries no payload")?;
            Ok(Request::Stats)
        }
        OP_CONTAINS => {
            expect_len(p, 16, "contains payload must be index + key")?;
            Ok(Request::Contains {
                index: le_u64(&p[0..8]),
                key: le_u64(&p[8..16]),
            })
        }
        OP_BULK_CONTAINS => {
            let (first_index, keys) = decode_bulk(p)?;
            Ok(Request::BulkContains { first_index, keys })
        }
        OP_BULK_COUNT => {
            let (first_index, keys) = decode_bulk(p)?;
            Ok(Request::BulkCount { first_index, keys })
        }
        OP_INSERT => {
            expect_len(p, 8, "insert payload must be one key")?;
            Ok(Request::Insert { key: le_u64(p) })
        }
        OP_REMOVE => {
            expect_len(p, 8, "remove payload must be one key")?;
            Ok(Request::Remove { key: le_u64(p) })
        }
        OP_FLUSH => {
            expect_len(p, 0, "flush carries no payload")?;
            Ok(Request::Flush)
        }
        OP_TELEMETRY => {
            expect_len(p, 0, "telemetry carries no payload")?;
            Ok(Request::Telemetry)
        }
        OP_PREDECESSOR => {
            let (first_index, keys) = decode_bulk(p)?;
            Ok(Request::Predecessor { first_index, keys })
        }
        OP_RANK => {
            let (first_index, keys) = decode_bulk(p)?;
            Ok(Request::Rank { first_index, keys })
        }
        OP_RANGE_COUNT => {
            if p.len() < 12 {
                return Err(ProtoError::BadPayload(
                    "range payload shorter than its fixed header",
                ));
            }
            let first_index = le_u64(&p[0..8]);
            let count = le_u32(&p[8..12]);
            // Validate the declared count against the *actual* payload
            // length before allocating anything sized by it.
            if 12u64 + count as u64 * 16 != p.len() as u64 {
                return Err(ProtoError::BadPayload(
                    "range pair count disagrees with payload length",
                ));
            }
            let mut ranges = Vec::with_capacity(count as usize);
            for chunk in p[12..].chunks_exact(16) {
                ranges.push((le_u64(&chunk[0..8]), le_u64(&chunk[8..16])));
            }
            Ok(Request::RangeCount {
                first_index,
                ranges,
            })
        }
        other => Err(ProtoError::UnknownOpcode(other)),
    }
}

/// Decodes a response payload for an already-validated header.
pub fn decode_response_payload(h: &Header, p: &[u8]) -> Result<Response, ProtoError> {
    expect_len(
        p,
        h.payload_len as usize,
        "payload slice disagrees with header",
    )?;
    match h.opcode {
        OP_PONG => {
            expect_len(p, 0, "pong carries no payload")?;
            Ok(Response::Pong)
        }
        OP_BUSY => {
            expect_len(p, 0, "busy carries no payload")?;
            Ok(Response::Busy)
        }
        OP_CONTAINS_RESULT => {
            expect_len(p, 1, "contains result must be one byte")?;
            match p[0] {
                0 => Ok(Response::Contains(false)),
                1 => Ok(Response::Contains(true)),
                _ => Err(ProtoError::BadPayload(
                    "contains result byte must be 0 or 1",
                )),
            }
        }
        OP_BULK_CONTAINS_RESULT => {
            if p.len() < 4 {
                return Err(ProtoError::BadPayload("bulk result shorter than its count"));
            }
            let count = le_u32(&p[0..4]) as usize;
            let bitmap_len = count.div_ceil(8);
            if 4u64 + bitmap_len as u64 != p.len() as u64 {
                return Err(ProtoError::BadPayload(
                    "bulk result bitmap disagrees with its count",
                ));
            }
            // Canonical encoding: padding bits past `count` must be zero,
            // so every answer vector has exactly one byte representation.
            if count % 8 != 0 && p[4 + bitmap_len - 1] >> (count % 8) != 0 {
                return Err(ProtoError::BadPayload(
                    "bulk result padding bits must be zero",
                ));
            }
            let mut bits = Vec::with_capacity(count);
            for i in 0..count {
                bits.push(p[4 + i / 8] >> (i % 8) & 1 == 1);
            }
            Ok(Response::BulkContains(bits))
        }
        OP_BULK_COUNT_RESULT => {
            expect_len(p, 8, "bulk count result must be eight bytes")?;
            Ok(Response::BulkCount(le_u64(p)))
        }
        OP_PREDECESSOR_RESULT | OP_RANK_RESULT | OP_RANGE_COUNT_RESULT => {
            if p.len() < 4 {
                return Err(ProtoError::BadPayload(
                    "word-vector result shorter than its count",
                ));
            }
            let count = le_u32(&p[0..4]);
            if 4u64 + count as u64 * 8 != p.len() as u64 {
                return Err(ProtoError::BadPayload(
                    "word-vector count disagrees with payload length",
                ));
            }
            let mut words = Vec::with_capacity(count as usize);
            for chunk in p[4..].chunks_exact(8) {
                words.push(le_u64(chunk));
            }
            Ok(match h.opcode {
                OP_PREDECESSOR_RESULT => Response::PredecessorResult(words),
                OP_RANK_RESULT => Response::RankResult(words),
                _ => Response::RangeCountResult(words),
            })
        }
        OP_INSERT_RESULT => {
            expect_len(p, 1, "insert result must be one byte")?;
            match p[0] {
                0 => Ok(Response::Inserted(false)),
                1 => Ok(Response::Inserted(true)),
                _ => Err(ProtoError::BadPayload("insert result byte must be 0 or 1")),
            }
        }
        OP_REMOVE_RESULT => {
            expect_len(p, 1, "remove result must be one byte")?;
            match p[0] {
                0 => Ok(Response::Removed(false)),
                1 => Ok(Response::Removed(true)),
                _ => Err(ProtoError::BadPayload("remove result byte must be 0 or 1")),
            }
        }
        OP_FLUSH_RESULT => {
            expect_len(p, 16, "flush result must be generation + key count")?;
            Ok(Response::Flushed {
                generation: le_u64(&p[0..8]),
                keys: le_u64(&p[8..16]),
            })
        }
        OP_STATS_RESULT => {
            expect_len(p, 32, "stats result must be 32 bytes")?;
            Ok(Response::Stats(DictStats {
                keys: le_u64(&p[0..8]),
                cells: le_u64(&p[8..16]),
                shards: le_u32(&p[16..20]),
                max_probes: le_u32(&p[20..24]),
                seed: le_u64(&p[24..32]),
            }))
        }
        OP_TELEMETRY_RESULT => {
            if p.len() < 4 {
                return Err(ProtoError::BadPayload(
                    "telemetry payload shorter than its length",
                ));
            }
            let len = le_u32(&p[0..4]) as u64;
            if 4 + len != p.len() as u64 {
                return Err(ProtoError::BadPayload(
                    "telemetry text length disagrees with payload length",
                ));
            }
            let msg = std::str::from_utf8(&p[4..])
                .map_err(|_| ProtoError::BadPayload("telemetry text is not UTF-8"))?;
            Ok(Response::Telemetry(msg.to_string()))
        }
        OP_ERROR => {
            if p.len() < 4 {
                return Err(ProtoError::BadPayload(
                    "error payload shorter than its length",
                ));
            }
            let len = le_u32(&p[0..4]) as u64;
            if 4 + len != p.len() as u64 {
                return Err(ProtoError::BadPayload(
                    "error text length disagrees with payload length",
                ));
            }
            let msg = std::str::from_utf8(&p[4..])
                .map_err(|_| ProtoError::BadPayload("error text is not UTF-8"))?;
            Ok(Response::Error(msg.to_string()))
        }
        other => Err(ProtoError::UnknownOpcode(other)),
    }
}

/// Decodes one complete request frame from the front of `buf`, returning
/// the request id, the request, and the bytes consumed.
pub fn decode_request(buf: &[u8]) -> Result<(u64, Request, usize), ProtoError> {
    let h = decode_header(buf)?;
    let total = HEADER_LEN + h.payload_len as usize;
    if buf.len() < total {
        return Err(ProtoError::Truncated {
            need: total,
            have: buf.len(),
        });
    }
    let req = decode_request_payload(&h, &buf[HEADER_LEN..total])?;
    Ok((h.request_id, req, total))
}

/// Decodes one complete response frame from the front of `buf`.
pub fn decode_response(buf: &[u8]) -> Result<(u64, Response, usize), ProtoError> {
    let h = decode_header(buf)?;
    let total = HEADER_LEN + h.payload_len as usize;
    if buf.len() < total {
        return Err(ProtoError::Truncated {
            need: total,
            have: buf.len(),
        });
    }
    let resp = decode_response_payload(&h, &buf[HEADER_LEN..total])?;
    Ok((h.request_id, resp, total))
}

/// Reads exactly one response frame from a blocking reader (the client's
/// receive path). The payload buffer is sized by the header only *after*
/// the header's length check, so a hostile peer cannot force a huge
/// allocation.
pub fn read_response(r: &mut dyn Read) -> Result<(u64, Response), ProtoError> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head)?;
    let h = decode_header(&head)?;
    let mut payload = vec![0u8; h.payload_len as usize];
    r.read_exact(&mut payload)?;
    let resp = decode_response_payload(&h, &payload)?;
    Ok((h.request_id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_request_opcode() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Contains {
                index: 7,
                key: u64::MAX,
            },
            Request::BulkContains {
                first_index: 1 << 40,
                keys: vec![0, 1, u64::MAX],
            },
            Request::BulkCount {
                first_index: 0,
                keys: vec![42],
            },
            Request::Insert { key: 0 },
            Request::Insert { key: u64::MAX },
            Request::Remove { key: 7 },
            Request::Flush,
            Request::Telemetry,
            Request::Predecessor {
                first_index: 3,
                keys: vec![10, 20, 30],
            },
            Request::Rank {
                first_index: u64::MAX - 8,
                keys: vec![],
            },
            Request::RangeCount {
                first_index: 1 << 33,
                ranges: vec![(0, u64::MAX), (7, 7), (9, 3)],
            },
        ];
        for (i, req) in reqs.iter().enumerate() {
            let bytes = encode_request(i as u64 + 9, req).unwrap();
            let (id, got, used) = decode_request(&bytes).unwrap();
            assert_eq!(id, i as u64 + 9);
            assert_eq!(&got, req);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn round_trips_every_response_opcode() {
        let resps = [
            Response::Pong,
            Response::Busy,
            Response::Contains(true),
            Response::Contains(false),
            Response::BulkContains(vec![]),
            Response::BulkContains(vec![true; 8]),
            Response::BulkContains(vec![
                true, false, true, false, false, true, true, false, true,
            ]),
            Response::BulkCount(u64::MAX),
            Response::Stats(DictStats {
                keys: 5,
                cells: 150,
                shards: 3,
                max_probes: 7,
                seed: 0xC0FFEE,
            }),
            Response::Inserted(true),
            Response::Inserted(false),
            Response::Removed(true),
            Response::Removed(false),
            Response::Flushed {
                generation: u64::MAX,
                keys: 12_345,
            },
            Response::Error("shard exploded".to_string()),
            Response::Error(String::new()),
            Response::Telemetry("{\"record\":\"telemetry\",\"ring_len\":3}".to_string()),
            Response::Telemetry(String::new()),
            Response::PredecessorResult(vec![]),
            Response::PredecessorResult(vec![0, 42, u64::MAX]),
            Response::RankResult(vec![7]),
            Response::RangeCountResult(vec![0, 1, 2, u64::MAX]),
        ];
        for resp in &resps {
            let bytes = encode_response(3, resp).unwrap();
            let (id, got, used) = decode_response(&bytes).unwrap();
            assert_eq!(id, 3);
            assert_eq!(&got, resp);
            assert_eq!(used, bytes.len());
            // The Read-based path agrees with the slice path.
            let (id2, got2) = read_response(&mut &bytes[..]).unwrap();
            assert_eq!((id2, &got2), (3, resp));
        }
    }

    #[test]
    fn header_rejections_are_typed() {
        let good = encode_request(1, &Request::Ping).unwrap();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_request(&bad), Err(ProtoError::BadMagic(_))));

        let mut bad = good.clone();
        bad[4] = VERSION + 1;
        assert!(matches!(
            decode_request(&bad),
            Err(ProtoError::BadVersion(v)) if v == VERSION + 1
        ));
        // Version 1 frames (pre-mutation-opcode layout) are rejected too:
        // the protocol has no cross-version compatibility story.
        let mut bad = good.clone();
        bad[4] = 1;
        assert!(matches!(
            decode_request(&bad),
            Err(ProtoError::BadVersion(1))
        ));

        let mut bad = good.clone();
        bad[6] = 1;
        assert!(matches!(
            decode_request(&bad),
            Err(ProtoError::BadPayload(_))
        ));

        let mut bad = good.clone();
        bad[5] = 0x7F;
        assert!(matches!(
            decode_request(&bad),
            Err(ProtoError::UnknownOpcode(0x7F))
        ));
        // A response opcode is not a request.
        let pong = encode_response(1, &Response::Pong).unwrap();
        assert!(matches!(
            decode_request(&pong),
            Err(ProtoError::UnknownOpcode(OP_PONG))
        ));

        for cut in 0..good.len() {
            assert!(
                matches!(
                    decode_request(&good[..cut]),
                    Err(ProtoError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }

        let mut bad = good;
        bad[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_request(&bad),
            Err(ProtoError::Oversized { declared, max })
                if declared == MAX_PAYLOAD + 1 && max == MAX_PAYLOAD
        ));
    }

    #[test]
    fn bulk_count_is_cross_checked_before_allocation() {
        let good = encode_request(
            5,
            &Request::BulkContains {
                first_index: 0,
                keys: vec![1, 2, 3],
            },
        )
        .unwrap();
        // Forge the in-payload count upward: the declared 3 keys of data
        // cannot satisfy a count of 1 million, so the decoder must reject
        // on the length cross-check — not allocate for the forged count.
        let mut forged = good.clone();
        forged[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            decode_request(&forged),
            Err(ProtoError::BadPayload(_))
        ));
        // And downward.
        let mut forged = good;
        forged[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            decode_request(&forged),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn bulk_result_padding_must_be_canonical() {
        let bytes = encode_response(1, &Response::BulkContains(vec![true, false, true])).unwrap();
        let mut forged = bytes.clone();
        // Set a padding bit past count = 3.
        forged[HEADER_LEN + 4] |= 1 << 5;
        assert!(matches!(
            decode_response(&forged),
            Err(ProtoError::BadPayload(_))
        ));
        assert!(decode_response(&bytes).is_ok());
    }

    #[test]
    fn error_text_must_be_utf8_and_length_consistent() {
        let bytes = encode_response(1, &Response::Error("né".to_string())).unwrap();
        let (_, resp, _) = decode_response(&bytes).unwrap();
        assert_eq!(resp, Response::Error("né".to_string()));

        let mut forged = bytes.clone();
        let last = forged.len() - 1;
        forged[last] = 0xFF; // break the 2-byte UTF-8 sequence
        assert!(matches!(
            decode_response(&forged),
            Err(ProtoError::BadPayload(_))
        ));

        let mut forged = bytes;
        forged[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_response(&forged),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn mutation_payload_lengths_are_validated() {
        // Insert with a short payload.
        let good = encode_request(2, &Request::Insert { key: 9 }).unwrap();
        let mut forged = good.clone();
        forged[16..20].copy_from_slice(&4u32.to_le_bytes());
        forged.truncate(HEADER_LEN + 4);
        assert!(matches!(
            decode_request(&forged),
            Err(ProtoError::BadPayload(_))
        ));
        // Flush must carry no payload.
        let mut forged = encode_request(3, &Request::Flush).unwrap();
        forged[16..20].copy_from_slice(&8u32.to_le_bytes());
        forged.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_request(&forged),
            Err(ProtoError::BadPayload(_))
        ));
        // Result booleans must be canonical 0/1.
        let mut forged = encode_response(4, &Response::Inserted(true)).unwrap();
        forged[HEADER_LEN] = 2;
        assert!(matches!(
            decode_response(&forged),
            Err(ProtoError::BadPayload(_))
        ));
        let mut forged = encode_response(5, &Response::Removed(false)).unwrap();
        forged[HEADER_LEN] = 0xFF;
        assert!(matches!(
            decode_response(&forged),
            Err(ProtoError::BadPayload(_))
        ));
        // Flushed must be exactly 16 bytes.
        let good = encode_response(
            6,
            &Response::Flushed {
                generation: 1,
                keys: 2,
            },
        )
        .unwrap();
        let mut forged = good.clone();
        forged[16..20].copy_from_slice(&8u32.to_le_bytes());
        forged.truncate(HEADER_LEN + 8);
        assert!(matches!(
            decode_response(&forged),
            Err(ProtoError::BadPayload(_))
        ));
        assert!(decode_response(&good).is_ok());
    }

    #[test]
    fn oversized_bulk_requests_fail_at_encode_time() {
        // Constructing the actual Vec would need gigabytes; fake the
        // length check by asserting the constant, then exercise the
        // nearest reachable guard: MAX_BULK_KEYS itself round-trips the
        // arithmetic without overflow.
        assert!(12 + MAX_BULK_KEYS as u64 * 8 <= MAX_PAYLOAD as u64);
        assert!(12 + (MAX_BULK_KEYS as u64 + 1) * 8 > MAX_PAYLOAD as u64);
        assert!(12 + MAX_BULK_RANGES as u64 * 16 <= MAX_PAYLOAD as u64);
        assert!(12 + (MAX_BULK_RANGES as u64 + 1) * 16 > MAX_PAYLOAD as u64);
    }

    #[test]
    fn range_pair_count_is_cross_checked_before_allocation() {
        let good = encode_request(
            7,
            &Request::RangeCount {
                first_index: 11,
                ranges: vec![(1, 4), (5, 2)],
            },
        )
        .unwrap();
        assert_eq!(good.len(), HEADER_LEN + 12 + 2 * 16);
        // Forge the in-payload pair count upward and downward: both must
        // trip the length cross-check, never an allocation.
        for forged_count in [1_000_000u32, 1] {
            let mut forged = good.clone();
            forged[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&forged_count.to_le_bytes());
            assert!(matches!(
                decode_request(&forged),
                Err(ProtoError::BadPayload(_))
            ));
        }
        // A payload shorter than the fixed bulk header is typed, too.
        let mut forged = good;
        forged[16..20].copy_from_slice(&4u32.to_le_bytes());
        forged.truncate(HEADER_LEN + 4);
        assert!(matches!(
            decode_request(&forged),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn word_vector_result_count_is_cross_checked() {
        let good = encode_response(8, &Response::RankResult(vec![3, 1, 4])).unwrap();
        assert_eq!(good.len(), HEADER_LEN + 4 + 3 * 8);
        for forged_count in [77u32, 2] {
            let mut forged = good.clone();
            forged[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&forged_count.to_le_bytes());
            assert!(matches!(
                decode_response(&forged),
                Err(ProtoError::BadPayload(_))
            ));
        }
        // The three word-vector result opcodes share a layout but must
        // decode to distinct variants.
        let pred = encode_response(9, &Response::PredecessorResult(vec![u64::MAX])).unwrap();
        let (_, got, _) = decode_response(&pred).unwrap();
        assert_eq!(got, Response::PredecessorResult(vec![u64::MAX]));
        let rc = encode_response(10, &Response::RangeCountResult(vec![0])).unwrap();
        let (_, got, _) = decode_response(&rc).unwrap();
        assert_eq!(got, Response::RangeCountResult(vec![0]));
    }
}

//! Scheme registry: build every dictionary under test, uniformly typed.

use lcds_baselines::{
    BinarySearchDict, ChainingConfig, ChainingDict, CuckooConfig, CuckooDict, DmConfig, DmDict,
    FksConfig, FksDict, LinearProbeConfig, LinearProbeDict, Replication, RobinHoodConfig,
    RobinHoodDict,
};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::exact::ExactProbes;
use lcds_core::builder;
use lcds_workloads::rng::seeded;

/// A dictionary that is both instrumented and analytically describable —
/// everything the experiments need.
pub trait ExactDict: CellProbeDict + ExactProbes + Send + Sync {}

impl<T: CellProbeDict + ExactProbes + Send + Sync> ExactDict for T {}

/// Which schemes to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeSet {
    /// Every scheme (contention tables).
    All,
    /// The headline four: low-contention, FKS×n, cuckoo×n, binary search.
    Headline,
}

/// Builds the selected schemes over `keys`, deterministically from `seed`.
///
/// # Panics
/// Panics if any underlying build fails (the seeds used here are known
/// good for the sizes the experiments use).
pub fn build_schemes(keys: &[u64], seed: u64, set: SchemeSet) -> Vec<Box<dyn ExactDict>> {
    let mut out: Vec<Box<dyn ExactDict>> = Vec::new();
    out.push(Box::new(
        builder::build(keys, &mut seeded(seed)).expect("lcd build"),
    ));
    out.push(Box::new(
        FksDict::build(keys, FksConfig::default(), &mut seeded(seed ^ 1)).expect("fks build"),
    ));
    out.push(Box::new(
        CuckooDict::build(keys, CuckooConfig::default(), &mut seeded(seed ^ 2))
            .expect("cuckoo build"),
    ));
    if set == SchemeSet::All {
        out.push(Box::new(
            DmDict::build(keys, DmConfig::default(), &mut seeded(seed ^ 3)).expect("dm build"),
        ));
        out.push(Box::new(
            LinearProbeDict::build(keys, LinearProbeConfig::default(), &mut seeded(seed ^ 4))
                .expect("linear-probe build"),
        ));
        out.push(Box::new(
            RobinHoodDict::build(keys, RobinHoodConfig::default(), &mut seeded(seed ^ 6))
                .expect("robin-hood build"),
        ));
        out.push(Box::new(
            ChainingDict::build(keys, ChainingConfig::default(), &mut seeded(seed ^ 7))
                .expect("chaining build"),
        ));
        out.push(Box::new(
            FksDict::build(
                keys,
                FksConfig {
                    replication: Replication::None,
                    ..FksConfig::default()
                },
                &mut seeded(seed ^ 5),
            )
            .expect("fks×1 build"),
        ));
    }
    out.push(Box::new(BinarySearchDict::build(keys).expect("binsearch build")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_workloads::keysets::uniform_keys;

    #[test]
    fn registry_builds_all_schemes() {
        let keys = uniform_keys(256, 1);
        let all = build_schemes(&keys, 7, SchemeSet::All);
        assert_eq!(all.len(), 9);
        let names: Vec<String> = all.iter().map(|d| d.name()).collect();
        assert!(names.contains(&"low-contention".to_string()));
        assert!(names.contains(&"fks×n".to_string()));
        assert!(names.contains(&"fks×1".to_string()));
        assert!(names.contains(&"binary-search".to_string()));
        for d in &all {
            assert_eq!(d.len(), 256);
        }
    }

    #[test]
    fn headline_set_is_smaller() {
        let keys = uniform_keys(128, 2);
        let h = build_schemes(&keys, 8, SchemeSet::Headline);
        assert_eq!(h.len(), 4);
    }
}

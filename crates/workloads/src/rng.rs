//! Reproducible RNG plumbing.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The repository-standard deterministic RNG (ChaCha8, seeded).
pub fn seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// An RNG whose *first* `next_u64` returns a chosen word, then delegates.
///
/// Used by the adversarial instances: the FKS builder's first action is to
/// draw its top-level seed, so feeding it a known first word pins the hash
/// function the adversary crafted the key set against — exactly the
/// worst-case analysis setting of §1.3.
pub struct FirstWordRng<R: RngCore> {
    first: Option<u64>,
    inner: R,
}

impl<R: RngCore> FirstWordRng<R> {
    /// Wraps `inner`, making the first `next_u64` return `first`.
    pub fn new(first: u64, inner: R) -> FirstWordRng<R> {
        FirstWordRng {
            first: Some(first),
            inner,
        }
    }
}

impl<R: RngCore> RngCore for FirstWordRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        match self.first.take() {
            Some(w) => w,
            None => self.inner.next_u64(),
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Simple chunked fill via next_u64 so the pinned word is honored if
        // the first consumption is byte-wise.
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = seeded(43);
        assert_ne!(seeded(42).next_u64(), c.next_u64());
    }

    #[test]
    fn first_word_is_pinned_then_delegates() {
        let mut r = FirstWordRng::new(0xDEAD, seeded(1));
        assert_eq!(r.next_u64(), 0xDEAD);
        let mut plain = seeded(1);
        assert_eq!(r.next_u64(), plain.next_u64());
        assert_eq!(r.next_u64(), plain.next_u64());
    }

    #[test]
    fn fill_bytes_consumes_pinned_word_first() {
        let mut r = FirstWordRng::new(u64::from_le_bytes(*b"ABCDEFGH"), seeded(2));
        let mut buf = [0u8; 4];
        r.fill_bytes(&mut buf);
        assert_eq!(&buf, b"ABCD");
    }
}

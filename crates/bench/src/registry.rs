//! Scheme registry: build every dictionary under test, uniformly typed.
//!
//! Each build is timed into the global metrics registry (when
//! `lcds_obs::set_enabled(true)`) as
//! `lcds_scheme_build_ns{scheme="..."}`, so an experiment run exports
//! per-scheme construction durations alongside the core builder's own
//! phase spans.

use lcds_baselines::{
    BinarySearchDict, ChainingConfig, ChainingDict, CuckooConfig, CuckooDict, DmConfig, DmDict,
    FksConfig, FksDict, LinearProbeConfig, LinearProbeDict, Replication, RobinHoodConfig,
    RobinHoodDict,
};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::exact::ExactProbes;
use lcds_core::builder;
use lcds_workloads::rng::seeded;

/// Runs `build`, recording its wall time as
/// `lcds_scheme_build_ns{scheme="<name>"}` when telemetry is enabled.
fn timed_build<T>(name: &str, build: impl FnOnce() -> T) -> T {
    if !lcds_obs::enabled() {
        return build();
    }
    let start = std::time::Instant::now();
    let out = build();
    lcds_obs::global()
        .histogram(&format!("lcds_scheme_build_ns{{scheme=\"{name}\"}}"))
        .record(start.elapsed().as_nanos() as u64);
    out
}

/// A dictionary that is both instrumented and analytically describable —
/// everything the experiments need.
pub trait ExactDict: CellProbeDict + ExactProbes + Send + Sync {}

impl<T: CellProbeDict + ExactProbes + Send + Sync> ExactDict for T {}

/// Which schemes to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeSet {
    /// Every scheme (contention tables).
    All,
    /// The headline four: low-contention, FKS×n, cuckoo×n, binary search.
    Headline,
}

/// Builds the selected schemes over `keys`, deterministically from `seed`.
///
/// # Panics
/// Panics if any underlying build fails (the seeds used here are known
/// good for the sizes the experiments use).
pub fn build_schemes(keys: &[u64], seed: u64, set: SchemeSet) -> Vec<Box<dyn ExactDict>> {
    let mut out: Vec<Box<dyn ExactDict>> = Vec::new();
    out.push(Box::new(timed_build("low-contention", || {
        builder::build(keys, &mut seeded(seed)).expect("lcd build")
    })));
    out.push(Box::new(timed_build("fks×n", || {
        FksDict::build(keys, FksConfig::default(), &mut seeded(seed ^ 1)).expect("fks build")
    })));
    out.push(Box::new(timed_build("cuckoo", || {
        CuckooDict::build(keys, CuckooConfig::default(), &mut seeded(seed ^ 2))
            .expect("cuckoo build")
    })));
    if set == SchemeSet::All {
        out.push(Box::new(timed_build("dm", || {
            DmDict::build(keys, DmConfig::default(), &mut seeded(seed ^ 3)).expect("dm build")
        })));
        out.push(Box::new(timed_build("linear-probe", || {
            LinearProbeDict::build(keys, LinearProbeConfig::default(), &mut seeded(seed ^ 4))
                .expect("linear-probe build")
        })));
        out.push(Box::new(timed_build("robin-hood", || {
            RobinHoodDict::build(keys, RobinHoodConfig::default(), &mut seeded(seed ^ 6))
                .expect("robin-hood build")
        })));
        out.push(Box::new(timed_build("chaining", || {
            ChainingDict::build(keys, ChainingConfig::default(), &mut seeded(seed ^ 7))
                .expect("chaining build")
        })));
        out.push(Box::new(timed_build("fks×1", || {
            FksDict::build(
                keys,
                FksConfig {
                    replication: Replication::None,
                    ..FksConfig::default()
                },
                &mut seeded(seed ^ 5),
            )
            .expect("fks×1 build")
        })));
    }
    out.push(Box::new(timed_build("binary-search", || {
        BinarySearchDict::build(keys).expect("binsearch build")
    })));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_workloads::keysets::uniform_keys;

    #[test]
    fn registry_builds_all_schemes() {
        let keys = uniform_keys(256, 1);
        let all = build_schemes(&keys, 7, SchemeSet::All);
        assert_eq!(all.len(), 9);
        let names: Vec<String> = all.iter().map(|d| d.name()).collect();
        assert!(names.contains(&"low-contention".to_string()));
        assert!(names.contains(&"fks×n".to_string()));
        assert!(names.contains(&"fks×1".to_string()));
        assert!(names.contains(&"binary-search".to_string()));
        for d in &all {
            assert_eq!(d.len(), 256);
        }
    }

    #[test]
    fn scheme_builds_are_timed_when_telemetry_enabled() {
        lcds_obs::set_enabled(true);
        let keys = uniform_keys(128, 3);
        let _ = build_schemes(&keys, 9, SchemeSet::Headline);
        lcds_obs::set_enabled(false);
        let snap = lcds_obs::global().snapshot();
        for scheme in ["low-contention", "fks×n", "cuckoo", "binary-search"] {
            let name = format!("lcds_scheme_build_ns{{scheme=\"{scheme}\"}}");
            assert!(
                snap.histograms.get(&name).is_some_and(|h| h.count >= 1),
                "missing build timing for {scheme}"
            );
        }
    }

    #[test]
    fn headline_set_is_smaller() {
        let keys = uniform_keys(128, 2);
        let h = build_schemes(&keys, 8, SchemeSet::Headline);
        assert_eq!(h.len(), 4);
    }
}

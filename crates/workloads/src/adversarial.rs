//! Adversarial instances exhibiting worst-case baseline behaviour.
//!
//! §1.3's `Θ(√n)` figure for FKS is a *worst-case* statement: pairwise
//! independence only guarantees `max ℓ_i = O(√n)`, and there really are
//! accepted instances achieving it. Random keys won't show this (they
//! behave like balls-in-bins, `max ℓ ≈ ln n / ln ln n`), so experiment T1
//! also runs FKS on a crafted instance: knowing the top-level hash
//! `h(x) = ((a·x + b) mod P) mod n`, the adversary *inverts* it —
//! `x_j = a^{-1}(j·n − b) mod P` lands every `x_j` in bucket 0 — and packs
//! `⌊√n⌋` keys into one bucket while keeping `Σℓ² ≤ 4n` so FKS still
//! accepts the draw. [`crate::rng::FirstWordRng`] pins the builder to the
//! seed the adversary used.

use lcds_hashing::field::{Fe, P};
use lcds_hashing::mix::derive;
use lcds_hashing::MAX_KEY;
use std::collections::HashSet;

/// Crafts `n` distinct keys such that the FKS top-level function derived
/// from `seed` (range `n`) maps `⌊√n⌋` of them to bucket 0.
///
/// Build the dictionary with
/// `FirstWordRng::new(seed, …)` so the builder draws exactly this function.
///
/// # Panics
/// Panics if `n < 4` or the derived multiplier is degenerate (probability
/// `≈ 2^{-61}`; use another seed).
pub fn adversarial_fks_keys(n: usize, seed: u64) -> Vec<u64> {
    assert!(n >= 4, "adversarial instance needs n ≥ 4");
    let m = n as u64;
    // Mirror PerfectHash::from_seed's expansion exactly.
    let a = Fe::new(derive(seed, 0) | 1);
    let b = Fe::new(derive(seed, 1));
    assert!(a.value() != 0, "degenerate multiplier; pick another seed");
    let a_inv = a.inv();

    let heavy = (n as f64).sqrt().floor() as u64;
    let mut keys = Vec::with_capacity(n);
    let mut used = HashSet::with_capacity(n);

    // Preimages of bucket 0: field values v = j·m, j = 0, 1, 2, …
    let mut j = 0u64;
    while (keys.len() as u64) < heavy {
        let v = j * m; // < P for all j used here (heavy·m ≤ n^1.5 ≪ P)
        debug_assert!(v < P);
        let x = Fe::new(v).sub(b).mul(a_inv).value();
        j += 1;
        if x < MAX_KEY && used.insert(x) {
            keys.push(x);
        }
    }

    // Pad with generic keys (they spread ~uniformly; Σℓ² stays ≤ ~3n).
    let mut i = 0u64;
    while keys.len() < n {
        let x = derive(seed ^ 0xAD5E, i) % MAX_KEY;
        i += 1;
        if used.insert(x) {
            keys.push(x);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_hashing::perfect::PerfectHash;

    #[test]
    fn heavy_bucket_is_heavy() {
        for n in [64usize, 256, 1024, 4096] {
            let seed = 0x1234_5678_9ABC_DEF0 ^ n as u64;
            let keys = adversarial_fks_keys(n, seed);
            assert_eq!(keys.len(), n);
            let distinct: HashSet<u64> = keys.iter().copied().collect();
            assert_eq!(distinct.len(), n, "keys must be distinct");

            let top = PerfectHash::from_seed(seed, n as u64);
            let mut loads = vec![0u32; n];
            for &x in &keys {
                loads[top.eval(x) as usize] += 1;
            }
            let heavy = (n as f64).sqrt().floor() as u32;
            assert!(
                loads[0] >= heavy,
                "n={n}: bucket 0 load {} < √n = {heavy}",
                loads[0]
            );
            // FKS must still accept: Σℓ² ≤ 4n.
            let sum_sq: u64 = loads.iter().map(|&l| (l as u64) * (l as u64)).sum();
            assert!(sum_sq <= 4 * n as u64, "n={n}: Σℓ² = {sum_sq} > 4n");
        }
    }

    #[test]
    #[should_panic(expected = "n ≥ 4")]
    fn tiny_n_rejected() {
        let _ = adversarial_fks_keys(3, 1);
    }
}

//! Sorted-array binary search — the paper's opening example of a
//! contention disaster: "the entry in the middle of the table is accessed
//! on every query" (§1).
//!
//! The structure is a single row of `n` sorted keys; the query is the
//! textbook deterministic search, so the root cell has contention exactly
//! 1 (= `s` times optimal), the two depth-1 cells ½ each, and so on. It is
//! also the extreme case for the lower-bound discussion: a deterministic
//! algorithm trivially satisfies Definition 12's independence requirement,
//! and no balancing randomness exists to spread the load.

use crate::common::{checked_sorted_keys, BaselineError};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::exact::{ExactProbes, ProbeSet};
use lcds_cellprobe::sink::ProbeSink;
use lcds_cellprobe::table::Table;
use rand::RngCore;

/// A sorted-array membership structure queried by binary search.
#[derive(Clone, Debug)]
pub struct BinarySearchDict {
    table: Table,
    n: u64,
}

impl BinarySearchDict {
    /// Builds the sorted array.
    pub fn build(keys: &[u64]) -> Result<BinarySearchDict, BaselineError> {
        let sorted = checked_sorted_keys(keys)?;
        let n = sorted.len() as u64;
        let mut table = Table::new(1, n, 0);
        for (i, &x) in sorted.iter().enumerate() {
            table.write(0, i as u64, x);
        }
        Ok(BinarySearchDict { table, n })
    }

    /// The sorted stored keys.
    pub fn keys(&self) -> &[u64] {
        self.table.words()
    }

    /// The deterministic probe path for query `x` (cells in probe order).
    pub fn probe_path(&self, x: u64) -> Vec<u64> {
        let mut path = Vec::new();
        let (mut lo, mut hi) = (0u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            path.push(mid);
            let v = self.table.peek(0, mid);
            if v == x {
                break;
            } else if v < x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        path
    }
}

impl CellProbeDict for BinarySearchDict {
    fn name(&self) -> String {
        "binary-search".into()
    }

    fn contains(&self, x: u64, _rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
        let (mut lo, mut hi) = (0u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let v = self.table.read(0, mid, sink);
            if v == x {
                return true;
            } else if v < x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        false
    }

    fn num_cells(&self) -> u64 {
        self.n
    }

    fn max_probes(&self) -> u32 {
        // ⌊log₂ n⌋ + 1 probes suffice for the half-open invariant above —
        // exactly the bit length of n.
        64 - (self.n as u64).leading_zeros()
    }

    fn len(&self) -> usize {
        self.n as usize
    }
}

impl ExactProbes for BinarySearchDict {
    fn probe_sets(&self, x: u64, out: &mut Vec<ProbeSet>) {
        out.extend(self.probe_path(x).into_iter().map(ProbeSet::fixed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::dist::QueryPool;
    use lcds_cellprobe::exact::exact_contention;
    use lcds_cellprobe::measure::verify_membership;
    use lcds_cellprobe::sink::TraceSink;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn membership_is_correct() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3 + 1).collect();
        let d = BinarySearchDict::build(&keys).unwrap();
        let negs: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        verify_membership(&d, &keys, &negs, &mut rng(1)).unwrap();
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let keys: Vec<u64> = (0..1024u64).collect();
        let d = BinarySearchDict::build(&keys).unwrap();
        assert_eq!(d.max_probes(), 11);
        let mut r = rng(2);
        for x in [0u64, 511, 512, 1023, 5000] {
            let mut t = TraceSink::new();
            t.begin_query();
            let _ = d.contains(x, &mut r, &mut t);
            assert!(t.trace().len() <= 11, "x={x}: {} probes", t.trace().len());
        }
    }

    #[test]
    fn root_cell_has_contention_one() {
        let keys: Vec<u64> = (0..256u64).map(|i| i * 2).collect();
        let d = BinarySearchDict::build(&keys).unwrap();
        let prof = exact_contention(&d, &QueryPool::uniform(d.keys()));
        // Every query's first probe is the middle cell.
        assert!((prof.step_max[0] - 1.0).abs() < 1e-12);
        assert!((prof.max_step_ratio() - 256.0).abs() < 1e-6);
    }

    #[test]
    fn depth_two_cells_get_half_mass() {
        let keys: Vec<u64> = (0..256u64).collect();
        let d = BinarySearchDict::build(&keys).unwrap();
        let prof = exact_contention(&d, &QueryPool::uniform(d.keys()));
        // Step 2 max should be ≈ 1/2 (one of the two depth-1 nodes).
        assert!((prof.step_max[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn probe_path_matches_contains_trace() {
        let keys: Vec<u64> = (0..777u64).map(|i| i * 7 + 3).collect();
        let d = BinarySearchDict::build(&keys).unwrap();
        let mut r = rng(3);
        for x in [3u64, 100, 776 * 7 + 3, 2, 10_000] {
            let mut t = TraceSink::new();
            t.begin_query();
            let _ = d.contains(x, &mut r, &mut t);
            assert_eq!(t.trace(), d.probe_path(x).as_slice(), "x={x}");
        }
    }

    #[test]
    fn single_key() {
        let d = BinarySearchDict::build(&[42]).unwrap();
        let mut r = rng(4);
        verify_membership(&d, &[42], &[0, 41, 43], &mut r).unwrap();
        assert_eq!(d.max_probes(), 1);
    }

    #[test]
    fn space_is_exactly_n() {
        let keys: Vec<u64> = (0..100u64).collect();
        let d = BinarySearchDict::build(&keys).unwrap();
        assert_eq!(d.num_cells(), 100);
        assert!((d.words_per_key() - 1.0).abs() < 1e-12);
    }
}

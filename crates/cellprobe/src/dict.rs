//! The object-safe query interface every static dictionary implements.

use crate::rngutil::StreamRng;
use crate::sink::ProbeSink;
use rand::RngCore;

/// A static membership dictionary queried through the cell-probe model.
///
/// Implementations must answer `contains` by reading cells exclusively
/// through a probe-recording [`crate::table::Table::read`] (or by reporting
/// equivalent probes to the sink), so that contention accounting sees every
/// memory touch — including reads of hash parameters, directories, and
/// headers, which are exactly the cells the paper shows become hot.
///
/// The trait is object-safe: experiment harnesses hold `Box<dyn
/// CellProbeDict>` and iterate schemes uniformly.
pub trait CellProbeDict {
    /// Human-readable scheme name (used in experiment tables).
    fn name(&self) -> String;

    /// Answers "is `x` a member?", recording every cell probe into `sink`.
    ///
    /// `rng` supplies the query algorithm's balancing randomness (choice of
    /// replica, §2.3); deterministic schemes such as binary search simply
    /// ignore it.
    fn contains(&self, x: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool;

    /// Total number of cells `s` in the structure (the denominator of the
    /// `1/s` contention optimum and the numerator of space accounting).
    fn num_cells(&self) -> u64;

    /// Upper bound on probes per query (the paper's `t`).
    fn max_probes(&self) -> u32;

    /// Number of keys stored (the paper's `n`).
    fn len(&self) -> usize;

    /// Whether the dictionary stores no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Words of storage per stored key — the space row of experiment T4.
    fn words_per_key(&self) -> f64 {
        if self.len() == 0 {
            f64::INFINITY
        } else {
            self.num_cells() as f64 / self.len() as f64
        }
    }

    /// Bulk membership: appends `contains(keys[i])` for every key to `out`.
    ///
    /// This is the serving-path entry point. The balancing randomness for
    /// `keys[i]` is drawn from [`StreamRng::for_stream`]`(seed,
    /// first_index + i)` — a function of the key's *global* position only —
    /// so answers and per-key replica choices are identical however a
    /// caller chunks a large query array into batches (see
    /// `lcds-serve`). Implementations may override this to plan and
    /// execute probes batch-at-a-time (grouped by table region, with
    /// read-ahead); overrides must return exactly the answers the
    /// sequential path returns, but may probe *fewer* cells — e.g. reading
    /// a replicated hash-parameter row once per batch instead of once per
    /// key — and may order probes by region rather than by query, so
    /// per-query-step sinks ([`crate::sink::StepSink`],
    /// [`crate::sink::ProbeCountSink`]) do not apply; use counting or
    /// tracing sinks with batched paths.
    fn contains_batch(
        &self,
        keys: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        out.reserve(keys.len());
        for (i, &x) in keys.iter().enumerate() {
            let mut rng = StreamRng::for_stream(seed, first_index + i as u64);
            sink.begin_query();
            out.push(self.contains(x, &mut rng, sink));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A toy dictionary over a sorted vec, for trait-level tests.
    struct VecDict(Vec<u64>);

    impl CellProbeDict for VecDict {
        fn name(&self) -> String {
            "vec".into()
        }
        fn contains(&self, x: u64, _rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
            for (i, &k) in self.0.iter().enumerate() {
                sink.probe(i as u64);
                if k == x {
                    return true;
                }
            }
            false
        }
        fn num_cells(&self) -> u64 {
            self.0.len() as u64
        }
        fn max_probes(&self) -> u32 {
            self.0.len() as u32
        }
        fn len(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let d: Box<dyn CellProbeDict> = Box::new(VecDict(vec![1, 5, 9]));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(d.contains(5, &mut rng, &mut NullSink));
        assert!(!d.contains(6, &mut rng, &mut NullSink));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!((d.words_per_key() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dict_space_is_infinite_per_key() {
        let d = VecDict(vec![]);
        assert!(d.is_empty());
        assert!(d.words_per_key().is_infinite());
    }

    #[test]
    fn default_contains_batch_matches_per_key_answers() {
        let d = VecDict(vec![1, 5, 9, 42]);
        let probes = [0u64, 1, 5, 6, 9, 42, 100];
        let mut out = Vec::new();
        d.contains_batch(&probes, 0, 7, &mut NullSink, &mut out);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let expect: Vec<bool> = probes
            .iter()
            .map(|&x| d.contains(x, &mut rng, &mut NullSink))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn contains_batch_is_chunking_invariant() {
        let d = VecDict((0..50).map(|i| i * 3).collect());
        let probes: Vec<u64> = (0..120).collect();
        let mut whole = Vec::new();
        d.contains_batch(&probes, 0, 99, &mut NullSink, &mut whole);
        for chunk in [1usize, 7, 64] {
            let mut pieced = Vec::new();
            for (c, part) in probes.chunks(chunk).enumerate() {
                d.contains_batch(part, (c * chunk) as u64, 99, &mut NullSink, &mut pieced);
            }
            assert_eq!(pieced, whole, "chunk size {chunk}");
        }
    }
}

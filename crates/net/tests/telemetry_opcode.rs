//! Loopback tests for the `Telemetry` opcode (wire version 3): the
//! polled per-window counter deltas must sum to the registry's final
//! totals — the acceptance criterion that the wire answers are
//! *consistent with the in-process registry*, not a parallel metric
//! universe — and servers started without a sampler must answer a typed
//! error, not garbage.

use lcds_core::builder::build;
use lcds_net::client::{Client, ClientConfig, ClientError};
use lcds_net::server::{serve_on_any, serve_on_any_with, Served, ServerConfig};
use lcds_obs::{Registry, TimeSeries, TimeSeriesConfig};
use lcds_serve::{Engine, EngineConfig};
use lcds_workloads::uniform_keys;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

const KEYS_METRIC: &str = "telemetry_test_keys_total";

fn tiny_engine(n: usize, salt: u64) -> Arc<Engine> {
    let keys = uniform_keys(n, salt);
    let d = build(&keys, &mut ChaCha8Rng::seed_from_u64(salt)).expect("build dictionary");
    Arc::new(Engine::new(d, salt, EngineConfig::with_batch(64)))
}

fn quick_client() -> ClientConfig {
    ClientConfig {
        read_timeout: Duration::from_secs(5),
        ..ClientConfig::default()
    }
}

#[test]
fn polled_window_deltas_sum_to_final_counter_totals() {
    let registry = Registry::new();
    let ts = Arc::new(TimeSeries::new(
        registry.clone(),
        TimeSeriesConfig {
            window: Duration::from_secs(1),
            capacity: 8,
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve_on_any_with(
        listener,
        Served::Static(tiny_engine(256, 11)),
        ServerConfig::default(),
        Some(Arc::clone(&ts)),
    )
    .expect("serve");
    let mut client = Client::connect_with(handle.local_addr(), quick_client()).expect("connect");

    // Before any sample the ring is empty but the document is still
    // well-formed and self-describing.
    let doc = client.telemetry().expect("telemetry while ring empty");
    assert_eq!(doc["record"], "telemetry");
    assert_eq!(doc["ring_len"].as_u64(), Some(0));
    assert!(doc["window"].is_null());

    // Four rounds of known counter increments, each closed by a sample
    // and observed through the wire. Real dictionary traffic rides along
    // so the opcode is exercised amid genuine load.
    let increments: [u64; 4] = [1, 10, 0, 1000];
    let mut summed = 0u64;
    let probes: Vec<u64> = uniform_keys(64, 99);
    for (round, inc) in increments.iter().enumerate() {
        registry.counter(KEYS_METRIC).add(*inc);
        let _ = client.bulk_contains(&probes, 0).expect("bulk over TCP");
        ts.sample();
        let doc = client.telemetry().expect("telemetry poll");
        assert_eq!(doc["record"], "telemetry");
        assert_eq!(doc["ring_len"].as_u64(), Some(round as u64 + 1));
        let w = &doc["window"];
        assert!(w.is_object(), "latest window must be present");
        // A window is a *delta*: exactly this round's increment.
        let delta = w["counters"][KEYS_METRIC].as_u64().unwrap_or(0);
        assert_eq!(delta, *inc, "round {round} delta");
        assert!(w["end_ns"].as_u64() >= w["start_ns"].as_u64());
        summed += delta;
    }
    let total = registry.snapshot().counters[KEYS_METRIC];
    assert_eq!(summed, total, "window deltas must sum to the final total");
    handle.shutdown();
}

#[test]
fn servers_without_a_sampler_answer_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve_on_any(
        listener,
        Served::Static(tiny_engine(128, 23)),
        ServerConfig::default(),
    )
    .expect("serve");
    let mut client = Client::connect_with(handle.local_addr(), quick_client()).expect("connect");
    match client.telemetry() {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("telemetry disabled"), "got: {msg}")
        }
        other => panic!("wanted a server error, got {other:?}"),
    }
    // The connection survives the refused opcode: later requests answer.
    client.ping().expect("ping after telemetry error");
    handle.shutdown();
}

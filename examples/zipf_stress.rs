//! Zipf stress: what happens when the query distribution is *not* uniform
//! within the positive set — the regime where Theorem 3's guarantee does
//! not apply and the §3 lower bound says no oblivious scheme can win.
//!
//! The construction algorithm may know the distribution (it could
//! replicate hot keys' buckets!) but the *query* algorithm does not — and
//! this example shows the contention of every scheme degrading as skew
//! grows, then prints the Theorem 13 floor: how many probes any balanced
//! scheme would need as `n` grows.
//!
//! ```text
//! cargo run --release --example zipf_stress
//! ```

use lcds_cellprobe::report::{sig4, TextTable};
use lcds_lowerbound::recursion::tstar_series;
use low_contention::prelude::*;

fn main() {
    let n = 8192;
    let keys = uniform_keys(n, 0x21FF);
    let mut rng = seeded(0x2200);

    let lcd = build_dict(&keys, &mut rng).expect("lcd");
    let fks = FksDict::build_default(&keys, &mut rng).expect("fks");
    let cuckoo = CuckooDict::build_default(&keys, &mut rng).expect("cuckoo");

    let thetas = [0.0, 0.5, 1.0, 1.5];
    let mut table = TextTable::new(
        format!("contention ratio under Zipf(θ) positive queries, n = {n}"),
        &["scheme", "θ=0 (uniform)", "θ=0.5", "θ=1.0", "θ=1.5"],
    );
    for (name, ratios) in [
        ("low-contention", zipf_ratios(&lcd, &keys, &thetas)),
        ("fks×n", zipf_ratios(&fks, &keys, &thetas)),
        ("cuckoo×n", zipf_ratios(&cuckoo, &keys, &thetas)),
    ] {
        let mut row = vec![name.to_string()];
        row.extend(ratios.iter().map(|&r| sig4(r)));
        table.row(row);
    }
    println!("{}", table.markdown());
    println!(
        "At θ = 0 the low-contention dictionary is flat, as Theorem 3 \
         promises. As skew grows, the hot key's *data cell* (and its \
         bucket's header range) concentrates mass — the query algorithm \
         cannot replicate what it does not know is hot. That is exactly \
         the regime of the §3 lower bound:\n"
    );

    let mut table = TextTable::new(
        "Theorem 13 floor: probes any balanced scheme needs (b = 64, φ*·s = 16)",
        &["log₂ n", "min t*", "log₂ log₂ n"],
    );
    for (ln, t, ll) in tstar_series(&[16.0, 32.0, 64.0, 256.0, 1024.0], 64.0, 16.0) {
        table.row(vec![ln.to_string(), t.to_string(), sig4(ll)]);
    }
    println!("{}", table.markdown());
}

fn zipf_ratios<D: CellProbeDict + ExactProbes>(d: &D, keys: &[u64], thetas: &[f64]) -> Vec<f64> {
    thetas
        .iter()
        .map(|&theta| {
            let pool = zipf_over_keys(keys, theta, 0x217).pool();
            exact_contention(d, &pool).max_step_ratio()
        })
        .collect()
}

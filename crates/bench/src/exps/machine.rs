//! Simulated- and real-machine experiments: F3 (round-based throughput vs
//! processors), F4 (real-thread atomics throughput).

use crate::registry::{build_schemes, SchemeSet};
use lcds_cellprobe::report::{sig4, TextTable};
use lcds_sim::rounds::simulate;
use lcds_sim::threads::replay;
use lcds_sim::traces::collect;
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::querygen::positive_dist;
use lcds_workloads::rng::seeded;
use serde_json::json;

use super::ExpOutput;

/// **F3** — the round machine: queries per round vs processor count.
/// Flat-contention schemes scale; hot-cell schemes saturate (binary search
/// at ≈ `1/t` queries/round no matter how many processors).
pub fn f3(quick: bool) -> ExpOutput {
    let n = if quick { 512 } else { 4096 };
    let qpp = if quick { 8 } else { 24 };
    let procs: Vec<usize> = if quick {
        vec![1, 8, 32]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    };
    let seed = 0xF300 + n as u64;
    let keys = uniform_keys(n, seed);
    let dist = positive_dist(&keys);
    let schemes = build_schemes(&keys, seed, SchemeSet::Headline);

    let mut headers: Vec<String> = vec!["scheme".into()];
    headers.extend(procs.iter().map(|p| format!("p={p}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(
        format!("F3 — round-machine throughput (queries/round), n = {n}, {qpp} queries/proc"),
        &headers_ref,
    );
    let mut csv = String::from("scheme,processors,throughput,makespan,parallelism\n");
    let mut grid = Vec::new();
    for dict in &schemes {
        let mut row = vec![dict.name()];
        let mut points = Vec::new();
        for &p in &procs {
            let mut rng = seeded(seed ^ p as u64);
            let traces = collect(&**dict, &dist, p, qpp as u64, &mut rng);
            let res = simulate(&traces.traces, &traces.queries);
            row.push(sig4(res.throughput()));
            csv.push_str(&format!(
                "{},{p},{},{},{}\n",
                dict.name(),
                res.throughput(),
                res.makespan,
                res.parallelism()
            ));
            points.push(json!({
                "p": p,
                "throughput": res.throughput(),
                "makespan": res.makespan,
            }));
        }
        table.row(row);
        grid.push(json!({ "scheme": dict.name(), "points": points }));
    }
    ExpOutput {
        id: "f3",
        tables: vec![table],
        series: vec![("f3_round_machine.csv".into(), csv)],
        json: json!({ "n": n, "queries_per_proc": qpp, "schemes": grid }),
    }
}

/// **F4** — real threads hammering per-cell atomics: queries/second vs
/// thread count on this machine. Wall-clock numbers are hardware-specific;
/// the *ordering* (low-contention scales, binary search plateaus) is the
/// reproduced claim.
pub fn f4(quick: bool) -> ExpOutput {
    let n = if quick { 512 } else { 4096 };
    let qpp: u64 = if quick { 500 } else { 20_000 };
    let ncpu = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= ncpu {
        threads.push(threads.last().unwrap() * 2);
    }
    if quick {
        threads.truncate(2);
    }

    let seed = 0xF400 + n as u64;
    let keys = uniform_keys(n, seed);
    let dist = positive_dist(&keys);
    let schemes = build_schemes(&keys, seed, SchemeSet::Headline);

    let mut headers: Vec<String> = vec!["scheme".into()];
    headers.extend(threads.iter().map(|t| format!("{t} thr (Mq/s)")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(
        format!("F4 — real-thread atomic replay, n = {n}, {qpp} queries/thread ({ncpu} CPUs)"),
        &headers_ref,
    );
    let mut csv = String::from("scheme,threads,mqps\n");
    let mut grid = Vec::new();
    for dict in &schemes {
        let mut row = vec![dict.name()];
        let mut points = Vec::new();
        // Collect the widest trace set once; reuse prefixes per thread count.
        let mut rng = seeded(seed ^ 0xF4);
        let widest = collect(&**dict, &dist, *threads.last().unwrap(), qpp, &mut rng);
        for &t in &threads {
            let res = replay(&widest.traces[..t], &widest.queries[..t], dict.num_cells());
            let mqps = res.qps() / 1e6;
            if lcds_obs::enabled() {
                let reg = lcds_obs::global();
                reg.gauge(&format!(
                    "lcds_experiment_qps{{exp=\"f4\",scheme=\"{}\",threads=\"{t}\"}}",
                    dict.name()
                ))
                .set(res.qps());
                reg.counter(&format!(
                    "lcds_replay_stalls_total{{scheme=\"{}\"}}",
                    dict.name()
                ))
                .add(res.stalls());
            }
            row.push(sig4(mqps));
            csv.push_str(&format!("{},{t},{mqps}\n", dict.name()));
            points.push(json!({ "threads": t, "mqps": mqps, "stalls": res.stalls() }));
        }
        table.row(row);
        grid.push(json!({ "scheme": dict.name(), "points": points }));
    }
    ExpOutput {
        id: "f4",
        tables: vec![table],
        series: vec![("f4_threads.csv".into(), csv)],
        json: json!({ "n": n, "queries_per_thread": qpp, "cpus": ncpu, "schemes": grid }),
    }
}

/// **F11** — the machine-model ablation: the same traces on a queuing
/// memory (one probe served per cell per round) vs a **combining** memory
/// (all readers of a cell served together, as in read-broadcast caches and
/// combining networks [9, 13]). Combining erases contention — even binary
/// search scales — which delimits exactly where the paper's measure
/// matters: machines that serialize same-cell access.
pub fn f11(quick: bool) -> ExpOutput {
    use lcds_sim::rounds::simulate_combining;

    let n = if quick { 512 } else { 4096 };
    let qpp = if quick { 8 } else { 24 };
    let procs = if quick { 32 } else { 256 };
    let seed = 0xF110 + n as u64;
    let keys = uniform_keys(n, seed);
    let dist = positive_dist(&keys);
    let schemes = build_schemes(&keys, seed, SchemeSet::Headline);

    let mut table = TextTable::new(
        format!("F11 — queuing vs combining memory at p = {procs}, n = {n} (queries/round)"),
        &["scheme", "queuing", "combining", "combining gain ×"],
    );
    let mut rows = Vec::new();
    for dict in &schemes {
        let mut rng = seeded(seed ^ 0x11);
        let traces = collect(&**dict, &dist, procs, qpp as u64, &mut rng);
        let q = simulate(&traces.traces, &traces.queries);
        let c = simulate_combining(&traces.traces, &traces.queries);
        table.row(vec![
            dict.name(),
            sig4(q.throughput()),
            sig4(c.throughput()),
            sig4(c.throughput() / q.throughput()),
        ]);
        rows.push(json!({
            "scheme": dict.name(),
            "queuing": q.throughput(),
            "combining": c.throughput(),
        }));
    }
    ExpOutput {
        id: "f11",
        tables: vec![table],
        series: vec![],
        json: json!({ "n": n, "processors": procs, "rows": rows }),
    }
}

/// **F13** — per-query latency on the round machine (p50/p99/max) at a
/// fixed processor count. In closed-loop saturation a hot cell inflates
/// the *whole* latency distribution: binary search's median equals the
/// processor count (every query waits through the root queue) while the
/// flat structure's median stays at its own probe count — queue delay vs
/// pure service time.
pub fn f13(quick: bool) -> ExpOutput {
    use lcds_sim::rounds::simulate_latencies;

    let n = if quick { 512 } else { 4096 };
    let qpp = if quick { 8 } else { 32 };
    let procs = if quick { 32 } else { 128 };
    let seed = 0xF130 + n as u64;
    let keys = uniform_keys(n, seed);
    let dist = positive_dist(&keys);
    let schemes = build_schemes(&keys, seed, SchemeSet::Headline);

    let mut table = TextTable::new(
        format!("F13 — per-query latency (rounds) at p = {procs}, n = {n}"),
        &["scheme", "p50", "p99", "max", "mean"],
    );
    let mut rows = Vec::new();
    for dict in &schemes {
        let mut rng = seeded(seed ^ 0x13);
        let traces = collect(&**dict, &dist, procs, qpp as u64, &mut rng);
        let (_, lat) = simulate_latencies(&traces.traces, &traces.bounds);
        table.row(vec![
            dict.name(),
            lat.p50().to_string(),
            lat.p99().to_string(),
            lat.max().to_string(),
            sig4(lat.mean()),
        ]);
        rows.push(json!({
            "scheme": dict.name(),
            "p50": lat.p50(),
            "p99": lat.p99(),
            "max": lat.max(),
            "mean": lat.mean(),
        }));
    }
    ExpOutput {
        id: "f13",
        tables: vec![table],
        series: vec![],
        json: json!({ "n": n, "processors": procs, "queries_per_proc": qpp, "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f13_hot_cells_are_a_tail_phenomenon() {
        let out = f13(true);
        let rows = out.json["rows"].as_array().unwrap();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r["scheme"] == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let bin = get("binary-search");
        let lcd = get("low-contention");
        let procs = out.json["processors"].as_u64().unwrap();
        // Binary search: every query waits through the root queue, so even
        // the MEDIAN latency ≈ p (vs ~10 uncontended probes).
        assert!(
            bin["p50"].as_u64().unwrap() >= procs * 7 / 10,
            "bin median should be queue-bound: {bin} (p = {procs})"
        );
        // The flat structure's median stays at its own probe count.
        assert!(
            lcd["p50"].as_u64().unwrap() <= 2 * 15,
            "lcd median should be service-bound: {lcd}"
        );
        assert!(
            bin["mean"].as_f64().unwrap() > 1.5 * lcd["mean"].as_f64().unwrap(),
            "bin {bin} vs lcd {lcd}"
        );
    }

    #[test]
    fn f11_combining_rescues_binary_search() {
        let out = f11(true);
        let rows = out.json["rows"].as_array().unwrap();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r["scheme"] == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let bin = get("binary-search");
        // Combining erases the root-cell bottleneck…
        assert!(
            bin["combining"].as_f64().unwrap() > 3.0 * bin["queuing"].as_f64().unwrap(),
            "combining must rescue binary search: {bin}"
        );
        // …while the flat scheme barely changes (it was never queuing).
        let lcd = get("low-contention");
        let gain = lcd["combining"].as_f64().unwrap() / lcd["queuing"].as_f64().unwrap();
        assert!(gain < 2.0, "lcd combining gain {gain} should be small");
    }

    #[test]
    fn f3_low_contention_scales_binary_search_saturates() {
        let out = f3(true);
        let schemes = out.json["schemes"].as_array().unwrap();
        let series = |name: &str| -> Vec<f64> {
            schemes.iter().find(|s| s["scheme"] == name).unwrap()["points"]
                .as_array()
                .unwrap()
                .iter()
                .map(|p| p["throughput"].as_f64().unwrap())
                .collect()
        };
        let lcd = series("low-contention");
        let bin = series("binary-search");
        // From p=1 to p=32, lcd throughput must grow substantially…
        assert!(
            lcd.last().unwrap() > &(lcd[0] * 8.0),
            "lcd should scale: {lcd:?}"
        );
        // …while binary search saturates at ≤ 1 query/round: every query
        // passes through the root cell, which serves one probe per round.
        assert!(
            bin.last().unwrap() <= &1.05,
            "binary search must cap at ~1 query/round: {bin:?}"
        );
        assert!(
            lcd.last().unwrap() > &1.5,
            "lcd must beat the root-cell cap: {lcd:?}"
        );
        assert!(lcd.last().unwrap() > bin.last().unwrap());
    }

    #[test]
    fn f4_runs_and_reports() {
        let out = f4(true);
        let schemes = out.json["schemes"].as_array().unwrap();
        assert!(!schemes.is_empty());
        for s in schemes {
            for p in s["points"].as_array().unwrap() {
                assert!(p["mqps"].as_f64().unwrap() > 0.0);
            }
        }
    }
}

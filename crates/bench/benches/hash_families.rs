//! Evaluation cost of the hashing substrate: field multiplication,
//! polynomial families by degree, the DM combination, and the single-word
//! perfect hash.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lcds_hashing::dm::DmFamily;
use lcds_hashing::family::{HashFamily, HashFunction};
use lcds_hashing::perfect::PerfectHash;
use lcds_hashing::poly::{horner, PolyFamily};
use lcds_workloads::rng::seeded;

fn bench_hashing(c: &mut Criterion) {
    let mut rng = seeded(0xAB);

    let mut group = c.benchmark_group("hash_eval");
    for d in [2usize, 4, 8] {
        let h = PolyFamily::new(d, 1 << 20).sample(&mut rng);
        group.bench_with_input(BenchmarkId::new("poly", d), &h, |b, h| {
            let mut x = 1u64;
            b.iter(|| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                black_box(h.eval(black_box(x)))
            });
        });
        let words = h.words();
        group.bench_with_input(BenchmarkId::new("horner_words", d), &words, |b, w| {
            let mut x = 1u64;
            b.iter(|| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                black_box(horner(black_box(w), black_box(x)))
            });
        });
    }

    let dm = DmFamily::new(4, 1 << 8, 1 << 20).sample(&mut rng);
    group.bench_function("dm_d4", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            black_box(dm.eval(black_box(x)))
        });
    });

    let ms = lcds_hashing::multiply_shift::MultShiftFamily::new(20).sample(&mut rng);
    group.bench_function("multiply_shift", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            black_box(ms.eval(black_box(x)))
        });
    });
    let mas = lcds_hashing::multiply_shift::MultAddShiftFamily::new(20).sample(&mut rng);
    group.bench_function("multiply_add_shift", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            black_box(mas.eval(black_box(x)))
        });
    });

    let ph = PerfectHash::from_seed(0x1234_5678, 81);
    group.bench_function("perfect_seeded", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            black_box(ph.eval(black_box(x)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);

//! Offline test harness: see `tests/determinism.rs`.

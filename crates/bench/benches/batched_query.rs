//! Batched vs per-key bulk querying (criterion): the planned,
//! region-grouped engine against a per-key `contains` loop, single- and
//! multi-threaded, plus the sharded router. Complements experiment F14
//! (which reports one-shot wall-clock Mq/s) with criterion's statistics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::rngutil::StreamRng;
use lcds_cellprobe::sink::NullSink;
use lcds_serve::{bulk_contains, EngineConfig, ShardedLcd};
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::querygen::negative_pool;
use lcds_workloads::rng::seeded;

fn bench_batched(c: &mut Criterion) {
    let n = 1 << 14;
    let keys = uniform_keys(n, 0xBA7);
    let probes: Vec<u64> = keys
        .iter()
        .copied()
        .chain(negative_pool(&keys, n, 0xBA8))
        .collect();
    let dict = lcds_core::builder::build(&keys, &mut seeded(0xBA9)).expect("build");

    let mut group = c.benchmark_group("batched_query");
    group.throughput(Throughput::Elements(probes.len() as u64));

    // Per-key sequential loop: the probe-chained baseline.
    group.bench_function("per_key/seq", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (i, &x) in probes.iter().enumerate() {
                let mut rng = StreamRng::for_stream(7, i as u64);
                hits += usize::from(dict.contains(black_box(x), &mut rng, &mut NullSink));
            }
            black_box(hits)
        });
    });

    // Planned engine, single thread, across batch sizes.
    for batch in [64usize, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("planned/seq", batch),
            &batch,
            |b, &batch| {
                let cfg = EngineConfig {
                    batch,
                    parallel: false,
                };
                b.iter(|| black_box(bulk_contains(&dict, black_box(&probes), 7, cfg)));
            },
        );
    }

    // Parallel: per-key loop vs planned engine at the same thread count.
    group.bench_function("per_key/par", |b| {
        use rayon::prelude::*;
        b.iter(|| {
            let out: Vec<bool> = probes
                .par_chunks(1024)
                .enumerate()
                .flat_map_iter(|(cix, chunk)| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(move |(i, &x)| {
                            let mut rng = StreamRng::for_stream(7, (cix * 1024 + i) as u64);
                            dict.contains(x, &mut rng, &mut NullSink)
                        })
                        .collect::<Vec<bool>>()
                })
                .collect();
            black_box(out)
        });
    });
    group.bench_function("planned/par", |b| {
        b.iter(|| {
            black_box(bulk_contains(
                &dict,
                black_box(&probes),
                7,
                EngineConfig::with_batch(1024),
            ))
        });
    });

    // Sharded router.
    for shards in [2usize, 4] {
        let sharded =
            ShardedLcd::build(&keys, shards, 0xD15C, &mut seeded(0xBAA)).expect("sharded build");
        group.bench_with_input(
            BenchmarkId::new("sharded/par", shards),
            &sharded,
            |b, sharded| {
                b.iter(|| black_box(sharded.bulk_contains(black_box(&probes), 7, true)));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_batched);
criterion_main!(benches);

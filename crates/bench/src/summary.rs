//! Schemas for the committed bench artifacts: `BENCH_build.json`
//! (written by the `build_throughput` bench) and `BENCH_serve.json`
//! (written by the TCP loadgen, `lcds loadgen --format json`, collated
//! by hand or by CI).
//!
//! The artifacts are committed at the repository root so EXPERIMENTS.md
//! can quote numbers with provenance; a silent shape drift there would
//! turn into stale or unparseable docs long after the bench ran. Writers
//! validate through [`validate_bench_summary`] /
//! [`validate_serve_summary`] before writing (and panic loudly on a
//! mismatch — a schema bug is our bug, not an I/O accident), and
//! `tests/bench_schema.rs` holds the committed files to the same
//! contract.

use serde_json::Value;

/// Current schema version of the bench artifacts. Bump on any breaking
/// field change and teach the validators both shapes only if a migration
/// window is genuinely needed.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

fn req<'v>(doc: &'v Value, key: &str) -> Result<&'v Value, String> {
    doc.get(key)
        .ok_or_else(|| format!("missing required field `{key}`"))
}

fn req_u64(doc: &Value, key: &str) -> Result<u64, String> {
    req(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn req_str<'v>(doc: &'v Value, key: &str) -> Result<&'v str, String> {
    let s = req(doc, key)?
        .as_str()
        .ok_or_else(|| format!("`{key}` must be a string"))?;
    if s.is_empty() {
        return Err(format!("`{key}` must not be empty"));
    }
    Ok(s)
}

/// Shared envelope every bench artifact carries: the named `bench`, the
/// current `schema_version`, a numeric `seed`, `host_parallelism ≥ 1`, a
/// non-empty `git_rev`, and a `points` array (empty only with a `status`
/// string explaining why). Returns the points for per-bench validation.
fn validate_header<'v>(doc: &'v Value, bench_name: &str) -> Result<&'v Vec<Value>, String> {
    if !doc.is_object() {
        return Err("summary must be a JSON object".into());
    }
    let bench = req_str(doc, "bench")?;
    if bench != bench_name {
        return Err(format!("`bench` is {bench:?}, expected {bench_name:?}"));
    }
    let version = req_u64(doc, "schema_version")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "`schema_version` is {version}, this tooling expects {BENCH_SCHEMA_VERSION}"
        ));
    }
    req_u64(doc, "seed")?;
    if req_u64(doc, "host_parallelism")? == 0 {
        return Err("`host_parallelism` must be at least 1".into());
    }
    req_str(doc, "git_rev")?;
    let points = req(doc, "points")?
        .as_array()
        .ok_or("`points` must be an array")?;
    if points.is_empty() && doc.get("status").and_then(Value::as_str).is_none() {
        return Err("empty `points` requires a `status` explaining why".into());
    }
    Ok(points)
}

/// Validates a `BENCH_build.json` document against the current schema.
///
/// Required: `bench` = `"build_throughput"`, `schema_version` =
/// [`BENCH_SCHEMA_VERSION`], a numeric `seed`, `host_parallelism ≥ 1`, a
/// non-empty `git_rev`, and a `points` array where every entry carries
/// `n`, `sequential_build_ns`, and a non-empty `par_build` map of
/// per-thread-count measurements. An empty `points` array is legal only
/// for a placeholder that says so via `status`.
pub fn validate_bench_summary(doc: &Value) -> Result<(), String> {
    let points = validate_header(doc, "build_throughput")?;
    for (i, p) in points.iter().enumerate() {
        let ctx = |e: String| format!("points[{i}]: {e}");
        req_u64(p, "n").map_err(ctx)?;
        req_u64(p, "sequential_build_ns").map_err(ctx)?;
        let par = req(p, "par_build")
            .map_err(ctx)?
            .as_object()
            .ok_or_else(|| format!("points[{i}]: `par_build` must be an object"))?;
        if par.is_empty() {
            return Err(format!("points[{i}]: `par_build` must not be empty"));
        }
        for (threads, cell) in par {
            threads.parse::<usize>().map_err(|_| {
                format!("points[{i}]: par_build key {threads:?} is not a thread count")
            })?;
            req_u64(cell, "build_ns")
                .map_err(|e| format!("points[{i}].par_build[{threads}]: {e}"))?;
        }
    }
    Ok(())
}

/// Validates a `BENCH_serve.json` document against the current schema.
///
/// Same envelope as [`validate_bench_summary`] with `bench` =
/// `"serve_throughput"`; every point is one closed-loop loadgen run and
/// must carry `n`, `workers`, `connections`, a non-empty `workload`,
/// `requests ≥ 1`, a positive `qps`, and a `latency_ns` object with
/// `p50`/`p90`/`p99` quantiles.
pub fn validate_serve_summary(doc: &Value) -> Result<(), String> {
    let points = validate_header(doc, "serve_throughput")?;
    for (i, p) in points.iter().enumerate() {
        let ctx = |e: String| format!("points[{i}]: {e}");
        req_u64(p, "n").map_err(ctx)?;
        if req_u64(p, "workers").map_err(ctx)? == 0 {
            return Err(format!("points[{i}]: `workers` must be at least 1"));
        }
        if req_u64(p, "connections").map_err(ctx)? == 0 {
            return Err(format!("points[{i}]: `connections` must be at least 1"));
        }
        req_str(p, "workload").map_err(ctx)?;
        if req_u64(p, "requests").map_err(ctx)? == 0 {
            return Err(format!(
                "points[{i}]: `requests` must be positive — a zero-request run is a failed run"
            ));
        }
        let qps = req(p, "qps")
            .map_err(ctx)?
            .as_f64()
            .ok_or_else(|| format!("points[{i}]: `qps` must be a number"))?;
        if qps.is_nan() || qps <= 0.0 {
            return Err(format!("points[{i}]: `qps` must be positive"));
        }
        let lat = req(p, "latency_ns").map_err(ctx)?;
        for q in ["p50", "p90", "p99"] {
            req_u64(lat, q).map_err(|e| format!("points[{i}].latency_ns: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn valid() -> Value {
        json!({
            "bench": "build_throughput",
            "schema_version": BENCH_SCHEMA_VERSION,
            "seed": 7,
            "host_parallelism": 8,
            "git_rev": "deadbeef",
            "points": [{
                "n": 16384,
                "sequential_build_ns": 1_000_000,
                "par_build": {
                    "1": { "build_ns": 1_000_000 },
                    "4": { "build_ns": 300_000 },
                },
            }],
        })
    }

    #[test]
    fn accepts_the_writers_shape() {
        validate_bench_summary(&valid()).unwrap();
    }

    #[test]
    fn accepts_a_labeled_placeholder() {
        let mut doc = valid();
        doc["points"] = json!([]);
        doc["status"] = json!("pending-measurement");
        validate_bench_summary(&doc).unwrap();
    }

    #[test]
    fn rejects_drifted_documents() {
        let cases: Vec<(fn(&mut Value), &str)> = vec![
            (|d| d["schema_version"] = json!(99), "schema_version"),
            (
                |d| {
                    d.as_object_mut().unwrap().remove("git_rev");
                },
                "git_rev",
            ),
            (|d| d["git_rev"] = json!(""), "git_rev"),
            (|d| d["host_parallelism"] = json!(0), "host_parallelism"),
            (|d| d["bench"] = json!("other"), "bench"),
            (|d| d["points"] = json!([]), "points"),
            (|d| d["points"][0]["par_build"] = json!({}), "par_build"),
            (
                |d| d["points"][0]["par_build"] = json!({"x": {"build_ns": 1}}),
                "thread count",
            ),
            (
                |d| {
                    d["points"][0].as_object_mut().unwrap().remove("n");
                },
                "`n`",
            ),
        ];
        for (mutate, want) in cases {
            let mut doc = valid();
            mutate(&mut doc);
            let err = validate_bench_summary(&doc).unwrap_err();
            assert!(err.contains(want), "error {err:?} should mention {want:?}");
        }
    }

    fn valid_serve() -> Value {
        json!({
            "bench": "serve_throughput",
            "schema_version": BENCH_SCHEMA_VERSION,
            "seed": 7,
            "host_parallelism": 8,
            "git_rev": "deadbeef",
            "points": [{
                "n": 100_000,
                "workers": 4,
                "connections": 8,
                "workload": "zipf",
                "requests": 12345,
                "qps": 9876.5,
                "latency_ns": { "p50": 40_000, "p90": 90_000, "p99": 400_000 },
            }],
        })
    }

    #[test]
    fn accepts_the_serve_shape_and_its_placeholder() {
        validate_serve_summary(&valid_serve()).unwrap();
        let mut doc = valid_serve();
        doc["points"] = json!([]);
        doc["status"] = json!("pending-measurement");
        validate_serve_summary(&doc).unwrap();
    }

    #[test]
    fn serve_and_build_schemas_do_not_cross() {
        assert!(validate_serve_summary(&valid())
            .unwrap_err()
            .contains("serve_throughput"));
        assert!(validate_bench_summary(&valid_serve())
            .unwrap_err()
            .contains("build_throughput"));
    }

    #[test]
    fn rejects_drifted_serve_documents() {
        let cases: Vec<(fn(&mut Value), &str)> = vec![
            (|d| d["points"][0]["requests"] = json!(0), "requests"),
            (|d| d["points"][0]["qps"] = json!(0.0), "qps"),
            (|d| d["points"][0]["workers"] = json!(0), "workers"),
            (|d| d["points"][0]["connections"] = json!(0), "connections"),
            (|d| d["points"][0]["workload"] = json!(""), "workload"),
            (
                |d| {
                    d["points"][0]["latency_ns"]
                        .as_object_mut()
                        .unwrap()
                        .remove("p99");
                },
                "p99",
            ),
            (|d| d["points"] = json!([]), "points"),
        ];
        for (mutate, want) in cases {
            let mut doc = valid_serve();
            mutate(&mut doc);
            let err = validate_serve_summary(&doc).unwrap_err();
            assert!(err.contains(want), "error {err:?} should mention {want:?}");
        }
    }
}

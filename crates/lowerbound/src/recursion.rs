//! The Theorem 13 information recursion, solved numerically.
//!
//! With `a₁ = b·φ*·s` and `a = (5 ln 2)·b²·t*·φ*·s·n`, the proof derives
//!
//! ```text
//! E[C_1] ≤ a₁,   E[C_t] ≤ √(a · E[C_{t-1}])   ⇒   E[C_t] ≤ a₁^{2^{1-t}} · a^{1-2^{1-t}},
//! ```
//!
//! and the algorithm needs `Σ_{t ≤ t*} E[C_t] ≥ n · 2^{-2t*}` bits. For
//! `b ≤ polylog(n)` and `φ* ≤ polylog(n)/s`, feasibility forces
//! `t* = Ω(log log n)`. [`min_t_star`] finds the smallest feasible `t*`
//! for concrete `(n, b, polylog factors)`; experiment F5 plots it against
//! `log₂ log₂ n`.

/// Per-round information ceiling `E[C_t] ≤ a₁^{2^{1-t}} · a^{1-2^{1-t}}`
/// (in log₂ space to avoid overflow for huge `n`).
fn log2_ct_bound(t: u32, log2_a1: f64, log2_a: f64) -> f64 {
    let w = 2f64.powi(1 - t as i32); // 2^{1-t}
    w * log2_a1 + (1.0 - w) * log2_a
}

/// `log₂ Σ_{t=1..t*} bound_t`, computed stably via max + log-sum-exp.
fn log2_total_bits(t_star: u32, log2_a1: f64, log2_a: f64) -> f64 {
    let logs: Vec<f64> = (1..=t_star)
        .map(|t| log2_ct_bound(t, log2_a1, log2_a))
        .collect();
    let mx = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = logs.iter().map(|&l| 2f64.powf(l - mx)).sum();
    mx + sum.log2()
}

/// Is `t*` rounds *possibly* enough — does the recursion ceiling reach the
/// required `n · 2^{-2t*}` bits?
pub fn feasible(t_star: u32, log2_n: f64, b: f64, phi_s: f64) -> bool {
    assert!(t_star >= 1 && b >= 1.0 && phi_s > 0.0);
    // a₁ = b·(φ*s); a = (5 ln 2)·b²·t*·(φ*s)·n.
    let log2_a1 = (b * phi_s).log2();
    let log2_a = (5.0 * std::f64::consts::LN_2 * b * b * t_star as f64 * phi_s).log2() + log2_n;
    let have = log2_total_bits(t_star, log2_a1, log2_a);
    let need = log2_n - 2.0 * t_star as f64;
    have >= need
}

/// The smallest `t*` for which the information requirement is satisfiable —
/// the lower bound on probe complexity for a balanced scheme on a problem
/// of VC-dimension `n = 2^log2_n`, cell size `b` bits, and contention
/// `φ* = phi_s / s`.
///
/// ```
/// use lcds_lowerbound::recursion::min_t_star;
/// // The Ω(log log n) growth: quadrupling the exponent adds ~2 probes.
/// let small = min_t_star(16.0, 64.0, 16.0);
/// let large = min_t_star(256.0, 64.0, 16.0);
/// assert!(large >= small + 2);
/// ```
pub fn min_t_star(log2_n: f64, b: f64, phi_s: f64) -> u32 {
    for t in 1..=64 {
        if feasible(t, log2_n, b, phi_s) {
            return t;
        }
    }
    64
}

/// The F5 series: `(log2_n, min t*, log₂ log₂ n)` for a sweep of sizes.
pub fn tstar_series(log2_ns: &[f64], b: f64, phi_s: f64) -> Vec<(f64, u32, f64)> {
    log2_ns
        .iter()
        .map(|&ln| (ln, min_t_star(ln, b, phi_s), ln.log2()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursion_closed_form_matches_iteration() {
        // Iterating E[C_t] = √(a·E[C_{t-1}]) from a₁ must match the closed
        // form a₁^{2^{1-t}} a^{1-2^{1-t}}.
        let (a1, a) = (8.0f64, 1e6f64);
        let mut c = a1;
        for t in 1..=10u32 {
            let closed = 2f64.powf(log2_ct_bound(t, a1.log2(), a.log2()));
            assert!(
                (c.log2() - closed.log2()).abs() < 1e-9,
                "t={t}: iter {c} vs closed {closed}"
            );
            c = (a * c).sqrt();
        }
    }

    #[test]
    fn min_tstar_is_monotone_in_n() {
        let b = 64.0;
        let phi_s = 16.0; // φ*·s = polylog
        let mut prev = 0;
        for log2_n in [8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0] {
            let t = min_t_star(log2_n, b, phi_s);
            assert!(t >= prev, "t*({log2_n}) = {t} < previous {prev}");
            prev = t;
        }
    }

    #[test]
    fn min_tstar_grows_like_log_log_n() {
        let b = 64.0;
        let phi_s = 16.0;
        // t*(n) within a small additive band of log₂ log₂ n.
        for log2_n in [16.0f64, 32.0, 64.0, 256.0, 1024.0] {
            let t = min_t_star(log2_n, b, phi_s) as f64;
            let ll = log2_n.log2();
            assert!(
                t >= ll - 5.0 && t <= ll + 5.0,
                "log2 n = {log2_n}: t* = {t} vs log2 log2 n = {ll:.2}"
            );
        }
    }

    #[test]
    fn one_round_suffices_only_for_tiny_problems() {
        let b = 64.0;
        let phi_s = 16.0;
        // Small n: even 1 round's a₁ = b·φ*s = 1024 bits ≥ n/4.
        assert_eq!(min_t_star(10.0, b, phi_s), 1); // n = 1024, need 256/4
                                                   // Large n: 1 round cannot.
        assert!(min_t_star(40.0, b, phi_s) > 1);
    }

    #[test]
    fn higher_contention_budget_weakens_the_bound() {
        // Larger φ*·s (more allowed contention) ⇒ smaller t*.
        let b = 64.0;
        let tight = min_t_star(64.0, b, 2.0);
        let loose = min_t_star(64.0, b, 4096.0);
        assert!(loose <= tight, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn series_is_well_formed() {
        let series = tstar_series(&[8.0, 16.0, 32.0], 64.0, 16.0);
        assert_eq!(series.len(), 3);
        for (ln, t, ll) in series {
            assert!(t >= 1);
            assert!((ll - ln.log2()).abs() < 1e-12);
        }
    }
}

//! Per-row contention breakdown: *which* part of the structure is hottest
//! under a given query pool — the interpretability layer over the exact
//! profile.
//!
//! Theorem 3's analysis is row-by-row (§2.3: "at each step … probes are
//! balanced over a range of size s, s/r, s/m, or ℓ²"); this module reports
//! the measured counterpart so regressions point at the responsible row.

use crate::dict::LowContentionDict;
use lcds_cellprobe::dist::QueryPool;
use lcds_cellprobe::exact::exact_contention;

/// One row's contention summary.
#[derive(Clone, Debug, PartialEq)]
pub struct RowSummary {
    /// Human-readable row name (`"f[0]"`, `"z"`, `"histogram[2]"`, …).
    pub name: String,
    /// Largest total contention of any cell in the row.
    pub max_phi: f64,
    /// `max_phi · total cells` — the ratio-to-optimal contribution.
    pub ratio: f64,
}

/// Per-row breakdown of a dictionary's exact contention.
#[derive(Clone, Debug)]
pub struct RowReport {
    /// One summary per table row, in layout order.
    pub rows: Vec<RowSummary>,
}

impl RowReport {
    /// The row with the largest ratio — the structure's bottleneck under
    /// this pool.
    pub fn hottest(&self) -> &RowSummary {
        self.rows
            .iter()
            .max_by(|a, b| a.ratio.partial_cmp(&b.ratio).unwrap())
            .expect("layout always has rows")
    }

    /// Renders a compact multi-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!("{:<14} ratio {:8.2}\n", r.name, r.ratio));
        }
        out
    }
}

/// Computes the per-row breakdown under `pool`.
pub fn row_report(dict: &LowContentionDict, pool: &QueryPool) -> RowReport {
    let prof = exact_contention(dict, pool);
    let l = dict.layout();
    let p = dict.params();
    let s = p.s as usize;
    let cells = prof.num_cells as f64;

    let mut names = Vec::with_capacity(l.num_rows() as usize);
    for i in 0..p.d {
        names.push(format!("f[{i}]"));
    }
    for i in 0..p.d {
        names.push(format!("g[{i}]"));
    }
    names.push("z".into());
    names.push("gbas".into());
    for i in 0..p.rho {
        names.push(format!("histogram[{i}]"));
    }
    names.push("header".into());
    names.push("data".into());
    // f and g rows interleave in the layout? No: rows 0..d are f, d..2d are
    // g — but names were pushed in that exact order above.

    let rows = names
        .into_iter()
        .enumerate()
        .map(|(row, name)| {
            let max_phi = prof.total[row * s..(row + 1) * s]
                .iter()
                .copied()
                .fold(0.0, f64::max);
            RowSummary {
                name,
                max_phi,
                ratio: max_phi * cells,
            }
        })
        .collect();
    RowReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use lcds_hashing::mix::derive;
    use lcds_hashing::MAX_KEY;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample(n: u64, salt: u64) -> LowContentionDict {
        let mut set = std::collections::HashSet::new();
        let mut i = 0u64;
        while (set.len() as u64) < n {
            set.insert(derive(salt, i) % MAX_KEY);
            i += 1;
        }
        let keys: Vec<u64> = set.into_iter().collect();
        build(&keys, &mut ChaCha8Rng::seed_from_u64(salt)).unwrap()
    }

    #[test]
    fn report_covers_every_row_once() {
        let d = sample(600, 1);
        let report = row_report(&d, &QueryPool::uniform(d.keys()));
        assert_eq!(report.rows.len(), d.layout().num_rows() as usize);
        let expected_names = 2 * d.params().d + 2 + d.params().rho as usize + 2;
        assert_eq!(report.rows.len(), expected_names);
    }

    #[test]
    fn replicated_rows_are_exactly_flat() {
        let d = sample(800, 2);
        let report = row_report(&d, &QueryPool::uniform(d.keys()));
        let rows = d.layout().num_rows() as f64;
        // f/g rows: Φ = 1/s exactly ⇒ ratio = cells/s = #rows.
        for r in &report.rows[..2 * d.params().d] {
            assert!(
                (r.ratio - rows).abs() < 1e-9,
                "{}: ratio {} vs rows {rows}",
                r.name,
                r.ratio
            );
        }
    }

    #[test]
    fn uniform_positive_bottleneck_is_data_or_header() {
        // Under uniform positives, singleton-bucket data cells carry 1/n —
        // the largest ratio (≈ cells/n ≈ rows·β).
        let d = sample(1024, 3);
        let report = row_report(&d, &QueryPool::uniform(d.keys()));
        let hot = report.hottest();
        assert!(
            hot.name == "data" || hot.name == "header" || hot.name == "z",
            "unexpected bottleneck {}",
            hot.name
        );
        assert!(report.to_text().contains("gbas"));
    }

    #[test]
    fn skewed_pool_moves_the_bottleneck_to_data() {
        let d = sample(512, 4);
        let mut entries: Vec<(u64, f64)> = d.keys().iter().map(|&k| (k, 1e-6)).collect();
        entries[0].1 = 1.0;
        let report = row_report(&d, &QueryPool::weighted(entries));
        assert_eq!(report.hottest().name, "data");
        // The hot key's single data cell gets ~ all the mass.
        assert!(report.hottest().max_phi > 0.9);
    }
}

//! Contended shared-memory simulators — the "machine" the paper never had.
//!
//! The paper measures contention abstractly (probe probabilities, §1.1).
//! To see what those probabilities *cost*, this crate provides two machines
//! that execute probe traces collected from any
//! [`lcds_cellprobe::CellProbeDict`]:
//!
//! * [`rounds`] — a deterministic queuing machine where each cell serves
//!   one probe per time unit (the Dwork–Herlihy–Waarts contention-cost
//!   view). Used by experiment F3: throughput vs processors.
//! * [`threads`] — real OS threads hammering `AtomicU64` cells on a real
//!   multicore, so hot cells become bouncing cache lines. Used by
//!   experiment F4 and the `contended_throughput` criterion bench.
//! * [`traces`] — trace collection shared by both.
//!
//! The prediction being validated: the low-contention dictionary's flat
//! `Φ` lets both machines scale near-linearly with processors, while FKS
//! saturates at `n/max ℓ`-ish parallelism on its hottest directory cell
//! and binary search saturates at 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rounds;
pub mod threads;
pub mod traces;

pub use rounds::{
    run_workload, simulate, simulate_combining, simulate_latencies, LatencyProfile, SimResult,
};
pub use threads::{replay, StallTracker, ThreadRunResult, ThreadStats};
pub use traces::{collect, Traces};

//! Per-query probe tracing: sampled, bounded, chrome-trace-exportable.
//!
//! The metrics layer aggregates; traces *explain*. A [`TraceSink`]
//! attached to one batch records which cells were probed, at which plan
//! stage, in which order — enough to reconstruct why a batch was slow or
//! which layout region a contention spike hit. Records land in a global
//! bounded [`TraceBuffer`] and export to chrome://tracing JSON via
//! [`crate::trace_export`].
//!
//! # Cost contract
//!
//! Tracing is off by default. The production call sites
//! (`lcds_serve::bulk_contains` et al.) ask [`try_batch_trace`] once per
//! batch; with tracing disabled that is **one branch on one relaxed
//! atomic load** — no allocation, no lock, no time syscall. Enabled,
//! batches are sampled 1-in-[`sample_period`]: unsampled batches pay one
//! extra relaxed `fetch_add`. Only a sampled batch allocates a record and
//! takes the buffer lock (once, on publish).

use lcds_cellprobe::sink::{PlanStage, ProbeSink};
use lcds_cellprobe::table::CellId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::events::monotonic_ns;

static TRACING: AtomicBool = AtomicBool::new(false);
static SAMPLE_PERIOD: AtomicU64 = AtomicU64::new(64);
static BATCH_COUNTER: AtomicU64 = AtomicU64::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static TICK: AtomicU64 = AtomicU64::new(0);

/// Turns trace capture on or off (independent of the metrics
/// [`crate::enabled`] flag, so metrics can stay on while tracing is off).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Is trace capture enabled?
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Sets the batch sampling period: 1-in-`period` batches are traced.
/// Clamped to ≥ 1 (`1` traces every batch).
pub fn set_sample_period(period: u64) {
    SAMPLE_PERIOD.store(period.max(1), Ordering::Relaxed);
}

/// The configured batch sampling period.
pub fn sample_period() -> u64 {
    SAMPLE_PERIOD.load(Ordering::Relaxed)
}

/// Next value of the global monotonic probe tick. Ticks give a total
/// order over traced probes across threads without per-probe clock reads.
#[inline]
pub fn next_tick() -> u64 {
    TICK.fetch_add(1, Ordering::Relaxed)
}

/// Fresh id for a trace record (batch or span), process-unique.
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// One traced probe: which cell, at which plan stage, at which global
/// tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceProbe {
    /// Plan stage the executor had declared when the probe happened.
    pub stage: PlanStage,
    /// Probed cell.
    pub cell: CellId,
    /// Global monotonic tick (see [`next_tick`]).
    pub tick: u64,
}

/// A traced batch execution: identity, timing, and the probe sequence.
#[derive(Clone, Debug)]
pub struct BatchTrace {
    /// Process-unique trace id.
    pub trace_id: u64,
    /// Shard the batch ran against (0 for an unsharded engine).
    pub shard: u32,
    /// Index of the batch within its bulk call.
    pub batch_index: u64,
    /// [`monotonic_ns`] at sink creation.
    pub start_ns: u64,
    /// [`monotonic_ns`] at publish.
    pub end_ns: u64,
    /// Probes in execution order.
    pub probes: Vec<TraceProbe>,
}

/// A completed instrumentation span (builder phase), mirrored into the
/// trace so build timelines render next to query batches.
#[derive(Clone, Debug)]
pub struct SpanTrace {
    /// Process-unique span id.
    pub span_id: u64,
    /// Span name (a `names::ALL_SPANS` constant at every first-party
    /// call site).
    pub name: String,
    /// [`monotonic_ns`] at span entry.
    pub start_ns: u64,
    /// [`monotonic_ns`] at span drop.
    pub end_ns: u64,
}

/// One record in the trace buffer.
#[derive(Clone, Debug)]
pub enum TraceRecord {
    /// A sampled batch execution.
    Batch(BatchTrace),
    /// A completed builder-phase span.
    Span(SpanTrace),
}

/// Bounded ring of [`TraceRecord`]s. Overflow evicts the oldest record
/// and counts it; publishing never blocks beyond one short mutex.
#[derive(Debug)]
pub struct TraceBuffer {
    inner: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
    capacity: usize,
}

impl TraceBuffer {
    /// Default ring capacity (records, not probes).
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// New buffer holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            inner: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Appends a record, evicting the oldest at capacity.
    pub fn push(&self, record: TraceRecord) {
        let mut g = self.inner.lock().expect("trace buffer poisoned");
        if g.len() == self.capacity {
            g.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        g.push_back(record);
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace buffer poisoned").len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the buffered records (oldest first).
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the buffered records (oldest first).
    pub fn drain(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .expect("trace buffer poisoned")
            .drain(..)
            .collect()
    }
}

/// The process-global trace buffer.
pub fn global_traces() -> &'static TraceBuffer {
    static BUF: OnceLock<TraceBuffer> = OnceLock::new();
    BUF.get_or_init(|| TraceBuffer::with_capacity(TraceBuffer::DEFAULT_CAPACITY))
}

/// Asks to trace one batch. Returns a live [`TraceSink`] for 1-in-
/// [`sample_period`] batches while tracing is enabled, `None` otherwise.
///
/// Call once per batch on the serving path; match on the result and fall
/// back to a [`NullSink`](lcds_cellprobe::sink::NullSink) when `None`.
#[inline]
pub fn try_batch_trace(shard: u32, batch_index: u64) -> Option<TraceSink> {
    if !tracing_enabled() {
        return None;
    }
    let period = sample_period();
    if BATCH_COUNTER.fetch_add(1, Ordering::Relaxed) % period != 0 {
        return None;
    }
    Some(TraceSink::new(shard, batch_index))
}

/// A [`ProbeSink`] that records every probe with its plan stage and a
/// global tick, then publishes the batch to [`global_traces`] on drop.
#[derive(Debug)]
pub struct TraceSink {
    trace: Option<BatchTrace>,
    current_stage: PlanStage,
}

impl TraceSink {
    /// Starts a trace for (`shard`, `batch_index`) with a fresh trace id.
    pub fn new(shard: u32, batch_index: u64) -> TraceSink {
        TraceSink {
            trace: Some(BatchTrace {
                trace_id: next_id(),
                shard,
                batch_index,
                start_ns: monotonic_ns(),
                end_ns: 0,
                probes: Vec::new(),
            }),
            current_stage: PlanStage::Other,
        }
    }

    /// Probes recorded so far.
    pub fn probes(&self) -> &[TraceProbe] {
        self.trace.as_ref().map_or(&[], |t| t.probes.as_slice())
    }

    /// The trace id this sink is recording under.
    pub fn trace_id(&self) -> u64 {
        self.trace.as_ref().map_or(0, |t| t.trace_id)
    }

    /// Stamps `end_ns` and publishes the record (also done by drop; use
    /// `finish` to publish at a point of your choosing).
    pub fn finish(mut self) {
        self.publish();
    }

    fn publish(&mut self) {
        if let Some(mut t) = self.trace.take() {
            t.end_ns = monotonic_ns();
            global_traces().push(TraceRecord::Batch(t));
            crate::counter(crate::names::TRACE_RECORDS_TOTAL).inc();
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.publish();
    }
}

impl ProbeSink for TraceSink {
    #[inline]
    fn probe(&mut self, cell: CellId) {
        if let Some(t) = self.trace.as_mut() {
            t.probes.push(TraceProbe {
                stage: self.current_stage,
                cell,
                tick: next_tick(),
            });
        }
    }

    fn stage(&mut self, stage: PlanStage) {
        self.current_stage = stage;
    }
}

/// Publishes a completed span into the trace buffer under the span's own
/// id (so the chrome slice joins back to its `span` event). Called from
/// the [`Span`](crate::Span) drop path when tracing is enabled.
pub fn record_span(span_id: u64, name: &str, start_ns: u64, end_ns: u64) {
    global_traces().push(TraceRecord::Span(SpanTrace {
        span_id,
        name: name.to_string(),
        start_ns,
        end_ns,
    }));
    crate::counter(crate::names::TRACE_RECORDS_TOTAL).inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global tracing state is shared across the test harness's threads,
    // so everything that toggles it lives in this single test.
    #[test]
    fn sampling_gate_and_sink_lifecycle() {
        set_tracing(false);
        assert!(try_batch_trace(0, 0).is_none(), "disabled ⇒ no sink");

        // A standalone sink records stages, cells, and ticks in order.
        let mut sink = TraceSink::new(3, 7);
        let id = sink.trace_id();
        assert!(id > 0);
        sink.stage(PlanStage::Coefficients);
        sink.probe(10);
        sink.stage(PlanStage::Data);
        sink.probe(20);
        sink.probe(21);
        assert_eq!(sink.probes().len(), 3);
        assert_eq!(sink.probes()[0].stage, PlanStage::Coefficients);
        assert_eq!(sink.probes()[2].stage, PlanStage::Data);
        assert!(sink.probes()[0].tick < sink.probes()[1].tick);
        sink.finish();
        let published = global_traces().records().iter().any(|r| {
            matches!(r, TraceRecord::Batch(b) if b.trace_id == id
                 && b.shard == 3 && b.batch_index == 7 && b.probes.len() == 3)
        });
        assert!(published, "finished sink must land in the global buffer");

        // Enabled at period 1: every batch gets a sink; period 4: 1-in-4.
        set_tracing(true);
        set_sample_period(1);
        assert!(try_batch_trace(0, 0).is_some());
        set_sample_period(4);
        let hits = (0..64).filter(|&i| try_batch_trace(0, i).is_some()).count();
        assert_eq!(hits, 16, "strided sampler takes exactly 1-in-4");
        set_tracing(false);
        set_sample_period(64);
    }

    #[test]
    fn trace_buffer_evicts_oldest_and_counts_drops() {
        let buf = TraceBuffer::with_capacity(2);
        for i in 0..3u64 {
            buf.push(TraceRecord::Span(SpanTrace {
                span_id: i,
                name: format!("s{i}"),
                start_ns: i,
                end_ns: i + 1,
            }));
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        let recs = buf.drain();
        assert!(buf.is_empty());
        match &recs[0] {
            TraceRecord::Span(s) => assert_eq!(s.span_id, 1),
            other => panic!("expected span, got {other:?}"),
        }
    }
}

//! The ordered dictionary against a sorted-`Vec` binary-search oracle:
//! predecessor, strict rank, and inclusive range count, over arbitrary
//! key sets and probe points — including universe boundaries and the
//! splitter seams of the sharded router.

use low_contention::hashing::MAX_KEY;
use low_contention::prelude::*;
use proptest::prelude::*;

/// Sorted, deduplicated reference set.
fn oracle_keys(keys: &[u64]) -> Vec<u64> {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted
}

/// Largest stored key `≤ q`, or [`NO_PREDECESSOR`].
fn oracle_predecessor(sorted: &[u64], q: u64) -> u64 {
    match sorted.partition_point(|&k| k <= q) {
        0 => NO_PREDECESSOR,
        i => sorted[i - 1],
    }
}

/// Strict rank `#{k < q}`.
fn oracle_rank(sorted: &[u64], q: u64) -> u64 {
    sorted.partition_point(|&k| k < q) as u64
}

/// Inclusive `#{lo ≤ k ≤ hi}` (0 when inverted).
fn oracle_range_count(sorted: &[u64], lo: u64, hi: u64) -> u64 {
    if lo > hi {
        return 0;
    }
    (sorted.partition_point(|&k| k <= hi) - sorted.partition_point(|&k| k < lo)) as u64
}

/// Probe points that stress every seam: the keys themselves, their ±1
/// neighbours, and the universe boundaries.
fn seam_probes(sorted: &[u64]) -> Vec<u64> {
    let mut probes = vec![0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX];
    for &k in sorted {
        probes.push(k);
        probes.push(k.wrapping_sub(1));
        probes.push(k.saturating_add(1));
    }
    probes
}

fn check_against_oracle(keys: &[u64], scheme: OrdScheme, seed: u64) {
    let sorted = oracle_keys(keys);
    let dict = build_ordered(keys, scheme).expect("ordered build");
    let engine = OrderedEngine::new(
        dict,
        seed,
        EngineConfig {
            batch: 32,
            parallel: false,
        },
    );
    let probes = seam_probes(&sorted);
    let preds = engine.bulk_predecessor(&probes);
    let ranks = engine.bulk_rank(&probes);
    for (i, &q) in probes.iter().enumerate() {
        assert_eq!(
            preds[i],
            oracle_predecessor(&sorted, q),
            "predecessor({q}) over {} keys",
            sorted.len()
        );
        assert_eq!(
            ranks[i],
            oracle_rank(&sorted, q),
            "rank({q}) over {} keys",
            sorted.len()
        );
    }
    let pairs: Vec<(u64, u64)> = probes
        .iter()
        .zip(probes.iter().rev())
        .map(|(&a, &b)| (a, b)) // deliberately includes inverted pairs
        .collect();
    let counts = engine.bulk_range_count(&pairs);
    for (i, &(lo, hi)) in pairs.iter().enumerate() {
        assert_eq!(
            counts[i],
            oracle_range_count(&sorted, lo, hi),
            "range_count({lo}, {hi}) over {} keys",
            sorted.len()
        );
    }
}

#[test]
fn boundary_key_sets_both_schemes() {
    let shapes: Vec<Vec<u64>> = vec![
        vec![0],
        vec![MAX_KEY - 1], // top of the storable universe
        vec![0, MAX_KEY - 1],
        vec![5],
        (0..9u64).collect(), // exactly one branch-wide leaf + root
        (0..64u64).map(|i| i * 3).collect(),
        uniform_keys(700, 0x0D0E), // multiple levels
    ];
    for keys in &shapes {
        for scheme in [OrdScheme::Replicated, OrdScheme::Adversarial] {
            check_against_oracle(keys, scheme, 0x5EA5);
        }
    }
}

#[test]
fn sharded_splitter_seams_match_the_oracle() {
    use lcds_cellprobe::sink::NullSink;
    use low_contention::ordered::ShardedOrdered;

    // Clustered keys give uneven shard spans, so the router's splitter
    // run is exercised away from uniform boundaries too.
    let keys = clustered_keys(600, 6, 3_000, 0x51AB);
    let sorted = oracle_keys(&keys);
    for shards in [2usize, 3, 7] {
        let s = ShardedOrdered::par_build(&keys, shards, OrdScheme::Replicated).expect("shards");
        assert_eq!(s.len(), sorted.len());
        let mut rng = seeded(0xC0DE ^ shards as u64);
        for &q in &seam_probes(&sorted) {
            let want = match oracle_predecessor(&sorted, q) {
                NO_PREDECESSOR => None,
                p => Some(p),
            };
            assert_eq!(
                s.predecessor(q, &mut rng, &mut NullSink),
                want,
                "sharded({shards}) predecessor({q})"
            );
            assert_eq!(
                s.rank(q, &mut rng, &mut NullSink),
                oracle_rank(&sorted, q),
                "sharded({shards}) rank({q})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary key sets and probes: every answer matches the
    /// binary-search oracle under both replica-choice schemes.
    #[test]
    fn prop_ordered_matches_oracle(
        keys in proptest::collection::hash_set(0..MAX_KEY, 1..150),
        probes in proptest::collection::vec(0..u64::MAX, 24),
        seed in 0..u64::MAX,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let sorted = oracle_keys(&keys);
        for scheme in [OrdScheme::Replicated, OrdScheme::Adversarial] {
            let dict = build_ordered(&keys, scheme).unwrap();
            let engine = OrderedEngine::new(dict, seed, EngineConfig { batch: 16, parallel: false });
            let preds = engine.bulk_predecessor(&probes);
            let ranks = engine.bulk_rank(&probes);
            for (i, &q) in probes.iter().enumerate() {
                prop_assert_eq!(preds[i], oracle_predecessor(&sorted, q), "pred {}", q);
                prop_assert_eq!(ranks[i], oracle_rank(&sorted, q), "rank {}", q);
            }
            let pairs: Vec<(u64, u64)> = probes.chunks_exact(2)
                .map(|w| (w[0], w[1]))
                .collect();
            let counts = engine.bulk_range_count(&pairs);
            for (i, &(lo, hi)) in pairs.iter().enumerate() {
                prop_assert_eq!(counts[i], oracle_range_count(&sorted, lo, hi), "range {} {}", lo, hi);
            }
        }
    }

    /// Chunked engine answers are bit-identical to one-shot answers at
    /// any batch size — the stream-position contract the wire path
    /// relies on.
    #[test]
    fn prop_any_chunking_is_bit_identical(
        keys in proptest::collection::hash_set(0..MAX_KEY, 2..120),
        probes in proptest::collection::vec(0..u64::MAX, 33),
        batch in 1usize..40,
        seed in 0..u64::MAX,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let dict = build_ordered(&keys, OrdScheme::Replicated).unwrap();
        let one = OrderedEngine::new(
            dict,
            seed,
            EngineConfig { batch: probes.len().max(1), parallel: false },
        );
        let chunked = OrderedEngine::new(
            build_ordered(&keys, OrdScheme::Replicated).unwrap(),
            seed,
            EngineConfig { batch, parallel: true },
        );
        prop_assert_eq!(one.bulk_predecessor(&probes), chunked.bulk_predecessor(&probes));
        prop_assert_eq!(one.bulk_rank(&probes), chunked.bulk_rank(&probes));
        let pairs: Vec<(u64, u64)> = probes.chunks_exact(2).map(|w| (w[0], w[1])).collect();
        prop_assert_eq!(one.bulk_range_count(&pairs), chunked.bulk_range_count(&pairs));
    }
}

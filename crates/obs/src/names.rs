//! Canonical metric names for cross-crate instrumentation.
//!
//! Library crates that record into the global [`Registry`](crate::Registry)
//! name their series through these constants so the exporter, the docs
//! (`docs/OBSERVABILITY.md`), and dashboards stay in agreement — a typo'd
//! metric name silently creates a parallel empty series, which is exactly
//! the kind of bug a constant can't have.

/// Wall time of one whole dictionary construction (span; exported with an
/// `_ns` suffix like every span histogram).
pub const BUILD_TOTAL: &str = "lcds_build_total";

/// Wall time of the `(f, g, z)` rejection-sampling loop (span).
pub const BUILD_HASH_DRAW: &str = "lcds_build_hash_draw";

/// Wall time of the replicated-row table fills (span).
pub const BUILD_TABLE_LAYOUT: &str = "lcds_build_table_layout";

/// Wall time of the per-group histogram encoding + fills (span).
pub const BUILD_HISTOGRAM_LAYOUT: &str = "lcds_build_histogram_layout";

/// Wall time of the per-bucket perfect-hash seed searches (span).
pub const BUILD_PERFECT_HASH: &str = "lcds_build_perfect_hash";

/// `(f, g, z)` draws rejected by `P(S)` across all builds (counter).
pub const BUILD_HASH_RETRIES_TOTAL: &str = "lcds_build_hash_retries_total";

/// Perfect-hash seeds tried across all buckets and builds (counter).
pub const BUILD_SEED_TRIALS_TOTAL: &str = "lcds_build_seed_trials_total";

/// Worst single bucket's seed trials seen so far (gauge, set-max).
pub const BUILD_SEED_TRIALS_MAX: &str = "lcds_build_seed_trials_max";

/// Distribution of seed trials per non-empty bucket (histogram).
pub const BUILD_SEED_TRIALS_PER_BUCKET: &str = "lcds_build_seed_trials_per_bucket";

/// Completed dictionary constructions (counter).
pub const BUILDS_TOTAL: &str = "lcds_builds_total";

/// Rayon worker threads available to the parallel builder (gauge).
pub const BUILD_PAR_WORKERS: &str = "lcds_build_par_workers";

/// Batches executed by the `lcds-serve` bulk engine (counter).
pub const SERVE_BATCHES_TOTAL: &str = "lcds_serve_batches_total";

/// Keys answered by the `lcds-serve` bulk engine (counter).
pub const SERVE_KEYS_TOTAL: &str = "lcds_serve_keys_total";

/// Distribution of batch sizes handed to the planned executor (histogram).
pub const SERVE_BATCH_DEPTH: &str = "lcds_serve_batch_depth";

/// Probe-plan entries laid out by the core batch planner (counter; one
/// entry per key per batch).
pub const SERVE_PLAN_ENTRIES_TOTAL: &str = "lcds_serve_plan_entries_total";

/// Plan entries still active after histogram lookup — i.e. keys whose
/// bucket was non-empty and proceeded to header/data probes (counter).
/// `active / entries` is the hit-ish rate of the probe plan's early exit.
pub const SERVE_PLAN_ACTIVE_TOTAL: &str = "lcds_serve_plan_active_entries_total";

/// Number of shards in a sharded serving dictionary (gauge).
pub const SERVE_SHARDS: &str = "lcds_serve_shards";

/// Distribution of per-shard sub-batch sizes after the splitter routes a
/// batch (histogram). A skewed distribution means the splitter is
/// unbalanced for the offered key mix.
pub const SERVE_SHARD_DEPTH: &str = "lcds_serve_shard_batch_depth";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_names_share_the_subsystem_prefix() {
        for name in [
            SERVE_BATCHES_TOTAL,
            SERVE_KEYS_TOTAL,
            SERVE_BATCH_DEPTH,
            SERVE_PLAN_ENTRIES_TOTAL,
            SERVE_PLAN_ACTIVE_TOTAL,
            SERVE_SHARDS,
            SERVE_SHARD_DEPTH,
        ] {
            assert!(name.starts_with("lcds_serve_"), "{name}");
        }
    }

    #[test]
    fn build_names_share_the_subsystem_prefix() {
        for name in [
            BUILD_TOTAL,
            BUILD_HASH_DRAW,
            BUILD_TABLE_LAYOUT,
            BUILD_HISTOGRAM_LAYOUT,
            BUILD_PERFECT_HASH,
            BUILD_HASH_RETRIES_TOTAL,
            BUILD_SEED_TRIALS_TOTAL,
            BUILD_SEED_TRIALS_MAX,
            BUILD_SEED_TRIALS_PER_BUCKET,
            BUILDS_TOTAL,
            BUILD_PAR_WORKERS,
        ] {
            assert!(name.starts_with("lcds_build"), "{name}");
        }
    }
}

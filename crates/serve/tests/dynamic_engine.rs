//! Concurrency test for the generation-swapped [`DynamicEngine`]: reader
//! threads hammer the engine while a writer mutates and rebuilds under
//! them. Every read pins one published generation, so its answers must
//! match that generation's membership oracle *exactly* — a torn read, a
//! half-applied delta, or a swap observed mid-batch would all surface as
//! a key answered against the wrong generation.

use lcds_hashing::mix::derive;
use lcds_hashing::MAX_KEY;
use lcds_serve::{DynamicEngine, EngineConfig};
use lcds_workloads::uniform_keys;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const READERS: usize = 4;
const OPS: u64 = 600;

#[test]
fn concurrent_readers_always_see_one_whole_generation() {
    let initial = uniform_keys(400, 3);
    let engine = Arc::new(
        DynamicEngine::new(&initial, 21, 22, EngineConfig::with_batch(32))
            .expect("build dynamic engine"),
    );

    // Probe stream: initial members, keys the writer will insert, and
    // keys nobody ever inserts — so both flips (absent→present on
    // insert, present→absent on remove) are represented.
    let probes: Vec<u64> = initial
        .iter()
        .copied()
        .take(100)
        .chain((0..150).map(|i| derive(5, i) % MAX_KEY))
        .chain((0..50).map(|i| derive(6, i) % MAX_KEY))
        .collect();

    // generation index → exact live key set when it was published. The
    // writer records each entry right after the publish, so readers may
    // briefly see a generation the oracle does not know yet — they spin,
    // never skip, so every verification is exact.
    let oracle: Mutex<HashMap<u64, HashSet<u64>>> = Mutex::new(HashMap::from([(
        0u64,
        initial.iter().copied().collect::<HashSet<u64>>(),
    )]));
    let done = AtomicBool::new(false);
    let verified = AtomicU64::new(0);
    // The writer holds off until every reader has verified generation 0,
    // so each reader deterministically observes at least one swap (its
    // final pass sees the last generation).
    let started = AtomicU64::new(0);

    thread::scope(|s| {
        for r in 0..READERS {
            let engine = Arc::clone(&engine);
            let probes = &probes;
            let oracle = &oracle;
            let done = &done;
            let verified = &verified;
            let started = &started;
            s.spawn(move || {
                let mut seen_generations = HashSet::new();
                loop {
                    let finishing = done.load(Ordering::SeqCst);
                    let generation = engine.snapshot();
                    let expected = loop {
                        if let Some(live) =
                            oracle.lock().expect("oracle lock").get(&generation.index())
                        {
                            break live.clone();
                        }
                        // Published but not yet recorded: the writer is
                        // between the swap and the oracle insert.
                        thread::yield_now();
                    };
                    let answers = engine.bulk_contains_on(&generation, probes, 0);
                    for (i, &x) in probes.iter().enumerate() {
                        assert_eq!(
                            answers[i],
                            expected.contains(&x),
                            "reader {r}: key {x} answered against a torn view of \
                             generation {}",
                            generation.index()
                        );
                    }
                    if seen_generations.insert(generation.index()) && seen_generations.len() == 1 {
                        started.fetch_add(1, Ordering::SeqCst);
                    }
                    verified.fetch_add(1, Ordering::Relaxed);
                    if finishing {
                        break;
                    }
                }
                assert!(
                    seen_generations.len() > 1,
                    "reader {r} never observed a swap — the test lost its race \
                     coverage"
                );
            });
        }

        // The writer: enough fresh inserts to cross the delta capacity
        // several times (each crossing is a full rebuild + swap), plus
        // removes so tombstones are in play.
        while started.load(Ordering::SeqCst) < READERS as u64 {
            thread::yield_now();
        }
        let mut live: HashSet<u64> = initial.iter().copied().collect();
        for i in 0..OPS {
            let (applied, key) = if i % 5 == 4 {
                let key = derive(5, i / 2) % MAX_KEY;
                (engine.remove(key).expect("remove"), key)
            } else {
                let key = derive(5, i) % MAX_KEY;
                (engine.insert(key).expect("insert"), key)
            };
            if applied {
                if i % 5 == 4 {
                    live.remove(&key);
                } else {
                    live.insert(key);
                }
                oracle
                    .lock()
                    .expect("oracle lock")
                    .insert(engine.generation(), live.clone());
            }
        }
        done.store(true, Ordering::SeqCst);
    });

    let c = engine.counters();
    assert!(
        c.rebuilds >= 2,
        "the op count was sized to force rebuilds mid-read (got {})",
        c.rebuilds
    );
    assert!(c.swaps > 0 && verified.load(Ordering::Relaxed) > 0);

    // Post-mortem determinism: the final generation answers identically
    // at every chunking (readers above used one batch size).
    let generation = engine.snapshot();
    let whole = engine.bulk_contains_on(&generation, &probes, 0);
    for split in [1usize, 33, 100, probes.len()] {
        let (a, b) = probes.split_at(split.min(probes.len()));
        let mut stitched = engine.bulk_contains_on(&generation, a, 0);
        stitched.extend(engine.bulk_contains_on(&generation, b, a.len() as u64));
        assert_eq!(stitched, whole, "split {split}");
    }
}

//! Offline adaptation of `tests/par_build_determinism.rs` from the real
//! repository: identical plain tests, with the three proptest properties
//! rewritten as deterministic seeded loops (the container has no network,
//! so `proptest` itself is stubbed out of the overlay).

use lcds_cellprobe::rngutil::StreamRng;
use lcds_core::{par_build, persist};
use lcds_serve::ShardedLcd;
use rand::RngCore;

const THREAD_MATRIX: [usize; 3] = [1, 2, 8];
const SHARD_MATRIX: [usize; 2] = [1, 4];

fn keyset(n: usize, salt: u64) -> Vec<u64> {
    lcds_workloads::keysets::uniform_keys(n, salt)
}

fn dict_bytes(d: &lcds_core::LowContentionDict) -> Vec<u8> {
    let mut buf = Vec::new();
    persist::save(d, &mut buf).unwrap();
    buf
}

fn sharded_bytes(s: &ShardedLcd) -> Vec<Vec<u8>> {
    s.shards().iter().map(dict_bytes).collect()
}

fn on_pool<T: Send>(threads: usize, work: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(work)
}

#[test]
fn thread_shard_matrix_is_byte_identical_to_sequential() {
    let keys = keyset(2000, 0xD00D);
    let (splitter_seed, build_seed) = (5, 77);

    for &shards in &SHARD_MATRIX {
        let reference: Vec<Vec<u8>> = if shards == 1 {
            vec![dict_bytes(
                &lcds_core::build_seeded(&keys, build_seed).unwrap(),
            )]
        } else {
            sharded_bytes(
                &ShardedLcd::build_seeded(&keys, shards, splitter_seed, build_seed).unwrap(),
            )
        };

        for &threads in &THREAD_MATRIX {
            let parallel: Vec<Vec<u8>> = on_pool(threads, || {
                if shards == 1 {
                    vec![dict_bytes(
                        &lcds_core::par_build(&keys, build_seed).unwrap(),
                    )]
                } else {
                    sharded_bytes(
                        &ShardedLcd::par_build(&keys, shards, splitter_seed, build_seed).unwrap(),
                    )
                }
            });
            assert_eq!(
                reference, parallel,
                "par_build diverged from the sequential twin at \
                 {threads} thread(s) × {shards} shard(s)"
            );
        }
    }
}

#[test]
fn repeated_parallel_builds_are_stable() {
    let keys = keyset(800, 0xFACE);
    let first = on_pool(2, || dict_bytes(&lcds_core::par_build(&keys, 31).unwrap()));
    for _ in 0..3 {
        let again = on_pool(2, || dict_bytes(&lcds_core::par_build(&keys, 31).unwrap()));
        assert_eq!(first, again);
    }
}

#[test]
fn matrix_artifacts_answer_queries() {
    let keys = keyset(500, 0xBEEF);
    let sharded = on_pool(2, || ShardedLcd::par_build(&keys, 4, 5, 77).unwrap());
    let answers = sharded.bulk_contains(&keys, 9, true);
    assert!(answers.iter().all(|&b| b), "a stored key went missing");
    let negs = lcds_workloads::querygen::negative_pool(&keys, 64, 0x9E9);
    let answers = sharded.bulk_contains(&negs, 9, true);
    assert!(!answers.iter().any(|&b| b), "a non-member was reported");
}

// ---------------------------------------------------------------------------
// Stream-overlap properties, as deterministic sweeps instead of proptest.
// ---------------------------------------------------------------------------

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn golden_inverse() -> u64 {
    let mut inv: u64 = 1;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(GOLDEN.wrapping_mul(inv)));
    }
    assert_eq!(GOLDEN.wrapping_mul(inv), 1);
    inv
}

fn draws_until_replay(a: &StreamRng, b: &StreamRng) -> u64 {
    b.state()
        .wrapping_sub(a.state())
        .wrapping_mul(golden_inverse())
}

const HORIZON: u64 = 1 << 20;

/// Deterministic case generator for the loop-based property sweeps.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn bucket_streams_never_overlap_within_horizon() {
    let mut g = 0x0FF1_17E5u64;
    let mut cases = 0;
    while cases < 256 {
        let seed = splitmix(&mut g);
        let b1 = splitmix(&mut g) % 100_000;
        let b2 = splitmix(&mut g) % 100_000;
        if b1 == b2 {
            continue;
        }
        cases += 1;
        let s1 = StreamRng::for_lane(seed, par_build::lanes::BUCKET, b1);
        let s2 = StreamRng::for_lane(seed, par_build::lanes::BUCKET, b2);
        let fwd = draws_until_replay(&s1, &s2);
        let back = draws_until_replay(&s2, &s1);
        assert!(
            fwd > HORIZON && back > HORIZON,
            "bucket {b1} and {b2} streams under seed {seed} are only {} draws apart",
            fwd.min(back)
        );
    }
}

#[test]
fn lanes_never_overlap_within_horizon() {
    let mut g = 0x7A9Eu64;
    for _ in 0..256 {
        let seed = splitmix(&mut g);
        let i = splitmix(&mut g) % 10_000;
        let j = splitmix(&mut g) % 10_000;
        let a = StreamRng::for_lane(seed, par_build::lanes::DRAW, i);
        let b = StreamRng::for_lane(seed, par_build::lanes::BUCKET, j);
        let fwd = draws_until_replay(&a, &b);
        let back = draws_until_replay(&b, &a);
        assert!(fwd > HORIZON && back > HORIZON);
    }
}

#[test]
fn shard_seeds_inherit_decorrelation() {
    let mut g = 0x5EEDu64;
    let mut cases = 0;
    while cases < 256 {
        let seed = splitmix(&mut g);
        let k1 = splitmix(&mut g) % 64;
        let k2 = splitmix(&mut g) % 64;
        if k1 == k2 {
            continue;
        }
        cases += 1;
        let s1 = lcds_core::shard_seed(seed, k1);
        let s2 = lcds_core::shard_seed(seed, k2);
        assert_ne!(s1, s2);
        let a = StreamRng::for_lane(s1, par_build::lanes::BUCKET, 0);
        let b = StreamRng::for_lane(s2, par_build::lanes::BUCKET, 0);
        let fwd = draws_until_replay(&a, &b);
        let back = draws_until_replay(&b, &a);
        assert!(fwd > HORIZON && back > HORIZON);
    }
}

#[test]
fn draws_until_replay_counts_actual_draws() {
    let mut walker = StreamRng::for_lane(42, par_build::lanes::BUCKET, 0);
    let origin = walker;
    for _ in 0..137 {
        let _ = walker.next_u64();
    }
    assert_eq!(draws_until_replay(&origin, &walker), 137);
    assert_eq!(draws_until_replay(&walker, &origin), 137u64.wrapping_neg());
}

//! Property tests for the space-saving top-K hot-cell detector: the
//! classic guarantees hold on arbitrary streams, and the detector finds
//! the true hottest cell of a Zipf(1.1) probe stream with bounded memory
//! (the acceptance criterion for online contention-drift detection).

use lcds_cellprobe::sink::ProbeSink;
use lcds_obs::TopKSink;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

proptest! {
    /// Space-saving invariants on arbitrary streams:
    /// 1. every tracked estimate over-approximates the true count, and
    ///    `count − error` under-approximates it;
    /// 2. any cell with true frequency > total/capacity is tracked;
    /// 3. memory never exceeds the capacity.
    #[test]
    fn space_saving_invariants(
        stream in prop::collection::vec(0u64..64, 1..2000),
        capacity in 1usize..24,
    ) {
        let mut sketch = TopKSink::new(capacity);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &cell in &stream {
            sketch.probe(cell);
            *truth.entry(cell).or_default() += 1;
        }
        let total = stream.len() as u64;
        prop_assert_eq!(sketch.total(), total);
        prop_assert!(sketch.hottest().len() <= capacity);

        for hc in sketch.hottest() {
            let t = truth[&hc.cell];
            prop_assert!(hc.count >= t, "cell {}: estimate {} < true {}", hc.cell, hc.count, t);
            prop_assert!(hc.guaranteed() <= t,
                "cell {}: guaranteed {} > true {}", hc.cell, hc.guaranteed(), t);
        }
        for (&cell, &t) in &truth {
            if t > total / capacity as u64 {
                prop_assert!(sketch.contains(cell),
                    "heavy cell {cell} (true {t} > {total}/{capacity}) not tracked");
            }
        }
    }
}

/// Draws one cell from a Zipf(θ) distribution over `m` cells whose
/// identities are scrambled (so "hottest" is not simply cell 0).
struct ZipfCells {
    cdf: Vec<f64>,
    m: u64,
}

impl ZipfCells {
    fn new(m: u64, theta: f64) -> ZipfCells {
        let weights: Vec<f64> = (1..=m).map(|i| (i as f64).powf(-theta)).collect();
        let z: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(m as usize);
        let mut acc = 0.0;
        for w in weights {
            acc += w / z;
            cdf.push(acc);
        }
        ZipfCells { cdf, m }
    }

    /// Rank `r` (0 = hottest) → scrambled cell id. `m` is a power of two
    /// and the multiplier is odd, so this is a bijection on `[0, m)`
    /// (the `+1` keeps rank 0 off cell 0).
    fn cell_of_rank(&self, r: u64) -> u64 {
        (r + 1).wrapping_mul(0x9E3779B97F4A7C15) % self.m
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        let u: f64 = rng.random();
        let rank = self.cdf.partition_point(|&c| c < u) as u64;
        self.cell_of_rank(rank.min(self.m - 1))
    }
}

/// The acceptance-criterion test: over a Zipf(1.1) trace on 4096 cells,
/// a 64-entry sketch (64/4096 = 1.6% of per-cell memory) always contains
/// — and ranks first — the true hottest cell.
#[test]
fn zipf_hottest_cell_is_detected_with_bounded_memory() {
    let m = 4096u64;
    let zipf = ZipfCells::new(m, 1.1);
    for seed in 0..5u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x21BF + seed);
        let mut sketch = TopKSink::new(64);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        sketch.begin_query();
        for _ in 0..200_000 {
            let cell = zipf.sample(&mut rng);
            sketch.probe(cell);
            *truth.entry(cell).or_default() += 1;
        }
        let (&true_hottest, &true_count) = truth
            .iter()
            .max_by_key(|&(cell, count)| (*count, *cell))
            .unwrap();
        assert_eq!(
            true_hottest,
            zipf.cell_of_rank(0),
            "zipf sanity: rank 0 is hottest"
        );

        assert!(
            sketch.contains(true_hottest),
            "seed {seed}: true hottest cell {true_hottest} not tracked"
        );
        let top = sketch.top(1);
        assert_eq!(
            top[0].cell, true_hottest,
            "seed {seed}: detector ranked {:?} first, true hottest is {true_hottest} ({true_count} probes)",
            top[0]
        );
        // Bounded memory: the sketch tracked ≤ 64 of 4096 cells.
        assert!(sketch.hottest().len() <= 64);
        // Zipf(1.1) puts ≈ 9% of mass on rank 0 over 4096 cells; the
        // estimate must agree to within the sketch's error bound.
        assert!(top[0].count >= true_count);
        assert!(top[0].guaranteed() <= true_count);
        assert!(
            sketch.hottest_share() > 0.04,
            "share {}",
            sketch.hottest_share()
        );
    }
}

//! Experiment runner: regenerates the tables and figures of DESIGN.md §4.
//!
//! ```text
//! experiments all                    # run everything, full scale
//! experiments t1 f5 f3               # run a subset
//! experiments --quick all            # tiny parameters (smoke test)
//! experiments --out results all      # artifact directory (default: results/)
//! experiments --metrics out.prom all # + Prometheus metrics snapshot
//! experiments --events out.jsonl all # + JSON-lines event stream
//! ```
//!
//! `--metrics` / `--events` enable the global `lcds-obs` telemetry layer:
//! builder phase spans, per-scheme construction timings, replay
//! progress/stall counters, and per-experiment wall times all land in the
//! exported snapshot (metric names in docs/OBSERVABILITY.md).

use lcds_bench::exps::{run, ALL_IDS};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut metrics_path: Option<PathBuf> = None;
    let mut events_path: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--metrics" => {
                metrics_path = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--metrics needs a file path");
                    std::process::exit(2);
                })));
            }
            "--events" => {
                events_path = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--events needs a file path");
                    std::process::exit(2);
                })));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [--out DIR] [--metrics FILE] [--events FILE] \
                     (all | t1 t2 … f8)..."
                );
                eprintln!("experiments: {}", ALL_IDS.join(" "));
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_lowercase()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiments selected; try `experiments all` or `--help`");
        std::process::exit(2);
    }
    ids.dedup();

    let telemetry = metrics_path.is_some() || events_path.is_some();
    if telemetry {
        lcds_obs::set_enabled(true);
    }

    println!(
        "# Low-Contention Data Structures — experiment run ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    for id in &ids {
        let start = Instant::now();
        let output = run(id, quick);
        output.print();
        if let Err(e) = output.write_artifacts(&out_dir) {
            eprintln!("warning: could not write artifacts for {id}: {e}");
        }
        let elapsed = start.elapsed();
        if telemetry {
            lcds_obs::global()
                .histogram(&format!("lcds_experiment_ns{{exp=\"{id}\"}}"))
                .record(elapsed.as_nanos() as u64);
            lcds_obs::emit(
                "experiment_complete",
                serde_json::json!({ "exp": id, "wall_s": elapsed.as_secs_f64() }),
            );
        }
        println!(
            "_{} finished in {:.2}s; artifacts in {}_\n",
            id.to_uppercase(),
            elapsed.as_secs_f64(),
            out_dir.display()
        );
    }

    if let Some(path) = metrics_path {
        let text = lcds_obs::export::to_prometheus(&lcds_obs::global().snapshot());
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("error: could not write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "_metrics: {} series lines → {}_",
            text.lines().filter(|l| !l.starts_with('#')).count(),
            path.display()
        );
    }
    if let Some(path) = events_path {
        let text = lcds_obs::export::events_to_jsonl(&lcds_obs::global_events().events());
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("error: could not write events to {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "_events: {} records → {}_",
            text.lines().count(),
            path.display()
        );
    }
}

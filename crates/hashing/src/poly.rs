//! `d`-wise independent Carter–Wegman polynomial hash families `H^d_m`.
//!
//! A uniform degree-`(d-1)` polynomial over `GF(P)` evaluated at `d`
//! distinct points yields `d` independent uniform field elements [1]; the
//! final reduction to `[m]` by `mod m` perturbs uniformity by at most
//! `m / P ≤ 2^-37` per point for every range used here, which is the
//! standard (and here negligible) trade made by practical implementations.
//!
//! The paper (§2.1) uses members of `H^d_m` both directly and as the `f`
//! and `g` ingredients of the DM family, and the query algorithm must be
//! able to *reconstruct* a function from the raw coefficient words it reads
//! out of the table — hence [`PolyHash::from_words`] / [`PolyHash::words`].

use crate::family::{HashFamily, HashFunction};
use crate::field::{Fe, P};
use rand::Rng;

/// The family `H^d_m`: uniform degree-`(d-1)` polynomials over `GF(P)`,
/// reduced to `[m]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolyFamily {
    d: usize,
    m: u64,
}

impl PolyFamily {
    /// Creates the family of `d`-wise independent functions into `[m]`.
    ///
    /// # Panics
    /// Panics if `d == 0` or `m == 0` or `m > P`.
    pub fn new(d: usize, m: u64) -> PolyFamily {
        assert!(d >= 1, "independence degree must be at least 1");
        assert!(m >= 1 && m <= P, "range must be in [1, P]");
        PolyFamily { d, m }
    }

    /// The independence degree `d`.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// The range size `m`.
    pub fn range(&self) -> u64 {
        self.m
    }
}

impl HashFamily for PolyFamily {
    type Function = PolyHash;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PolyHash {
        let coeffs = (0..self.d)
            .map(|_| Fe::from_canonical(rng.random_range(0..P)))
            .collect();
        PolyHash { coeffs, m: self.m }
    }
}

/// A sampled member of `H^d_m`: `h(x) = (Σ_i c_i x^i mod P) mod m`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolyHash {
    /// Coefficients `c_0 .. c_{d-1}`, constant term first.
    coeffs: Vec<Fe>,
    m: u64,
}

impl PolyHash {
    /// Reconstructs a function from raw coefficient words (e.g. read out of
    /// a cell-probe table) and the range `m`.
    ///
    /// Words are reduced into the field, so any `u64` content is accepted;
    /// round-tripping [`PolyHash::words`] is exact.
    pub fn from_words(words: &[u64], m: u64) -> PolyHash {
        assert!(!words.is_empty(), "a polynomial needs at least one word");
        assert!(m >= 1 && m <= P);
        PolyHash {
            coeffs: words.iter().map(|&w| Fe::new(w)).collect(),
            m,
        }
    }

    /// The coefficient words, constant term first — exactly what the
    /// construction algorithm writes into the table's replicated rows.
    pub fn words(&self) -> Vec<u64> {
        self.coeffs.iter().map(|c| c.value()).collect()
    }

    /// The independence degree (number of coefficients).
    pub fn degree(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the polynomial over the field *without* the final range
    /// reduction; useful when the caller layers its own reduction (as the
    /// DM combination does).
    #[inline]
    pub fn eval_field(&self, x: u64) -> Fe {
        let x = Fe::new(x);
        // Horner's rule, highest coefficient first.
        let mut acc = Fe::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc.mul_add(x, c);
        }
        acc
    }
}

/// Evaluates `(Σ_i words_i · x^i mod P)` by Horner's rule, reducing each
/// word into the field — the allocation-free path query algorithms use
/// after reading coefficient words out of a table into a stack buffer.
#[inline]
pub fn horner(words: &[u64], x: u64) -> u64 {
    let x = Fe::new(x);
    let mut acc = Fe::ZERO;
    for &w in words.iter().rev() {
        acc = acc.mul_add(x, Fe::new(w));
    }
    acc.value()
}

impl HashFunction for PolyHash {
    #[inline]
    fn eval(&self, x: u64) -> u64 {
        self.eval_field(x).value() % self.m
    }

    fn range(&self) -> u64 {
        self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn outputs_stay_in_range() {
        let fam = PolyFamily::new(4, 97);
        let h = fam.sample(&mut rng(1));
        for x in 0..1000u64 {
            assert!(h.eval(x) < 97);
        }
    }

    #[test]
    fn words_roundtrip() {
        let fam = PolyFamily::new(5, 1 << 20);
        let h = fam.sample(&mut rng(2));
        let rebuilt = PolyHash::from_words(&h.words(), h.range());
        for x in [0u64, 1, 17, 1 << 40, P - 1] {
            assert_eq!(h.eval(x), rebuilt.eval(x));
        }
        assert_eq!(h, rebuilt);
    }

    #[test]
    fn degree_one_is_constant() {
        // d = 1 polynomials are constants: same output everywhere.
        let fam = PolyFamily::new(1, 1000);
        let h = fam.sample(&mut rng(3));
        let v = h.eval(0);
        for x in 1..100 {
            assert_eq!(h.eval(x), v);
        }
    }

    #[test]
    fn horner_matches_naive_evaluation() {
        let h = PolyHash::from_words(&[3, 5, 7], 1 << 30);
        // 3 + 5x + 7x² at x = 10 → 753.
        assert_eq!(h.eval_field(10).value(), 753);
    }

    #[test]
    fn horner_matches_polyhash_eval() {
        let fam = PolyFamily::new(4, 1 << 20);
        let h = fam.sample(&mut rng(7));
        let words = h.words();
        for x in [0u64, 1, 999_999, P - 1] {
            assert_eq!(horner(&words, x) % h.range(), h.eval(x));
            assert_eq!(horner(&words, x), h.eval_field(x).value());
        }
    }

    #[test]
    fn pairwise_uniformity_chi_squared_smoke() {
        // For a pairwise family, each output value should appear ~uniformly
        // over many sampled functions at a fixed point.
        let m = 8u64;
        let fam = PolyFamily::new(2, m);
        let mut counts = vec![0u32; m as usize];
        let mut r = rng(4);
        let trials = 8000;
        for _ in 0..trials {
            let h = fam.sample(&mut r);
            counts[h.eval(123_456) as usize] += 1;
        }
        let expected = trials as f64 / m as f64;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "value {v} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn pairwise_collision_probability_is_near_one_over_m() {
        let m = 64u64;
        let fam = PolyFamily::new(2, m);
        let mut r = rng(5);
        let trials = 20_000;
        let mut collisions = 0u32;
        for _ in 0..trials {
            let h = fam.sample(&mut r);
            if h.eval(1) == h.eval(2) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let ideal = 1.0 / m as f64;
        assert!(
            (rate - ideal).abs() < 0.6 * ideal + 0.003,
            "collision rate {rate:.5} vs ideal {ideal:.5}"
        );
    }

    #[test]
    #[should_panic(expected = "independence degree")]
    fn zero_degree_rejected() {
        let _ = PolyFamily::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "range must be")]
    fn zero_range_rejected() {
        let _ = PolyFamily::new(2, 0);
    }

    proptest! {
        #[test]
        fn prop_eval_below_range(words in proptest::collection::vec(0..u64::MAX, 1..6),
                                 m in 1..(1u64 << 40),
                                 x in 0..P) {
            let h = PolyHash::from_words(&words, m);
            prop_assert!(h.eval(x) < m);
        }

        #[test]
        fn prop_roundtrip(words in proptest::collection::vec(0..P, 1..6), x in 0..P) {
            let h = PolyHash::from_words(&words, 1 << 20);
            let again = PolyHash::from_words(&h.words(), 1 << 20);
            prop_assert_eq!(h.eval(x), again.eval(x));
        }
    }
}

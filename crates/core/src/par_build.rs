//! Rayon-parallel construction pipeline, bit-for-bit identical to its
//! sequential twin for the same seed at every thread count.
//!
//! The §2.2 construction is expected `O(n)` but embarrassingly parallel in
//! all three of its expensive stages:
//!
//! 1. **`P(S)` verification** — per-key `(g(x), h(x))` assignment is a pure
//!    map, and the class/group/bucket load tallies are sums of per-chunk
//!    tallies (`u32` addition is commutative and associative, so any
//!    fold/reduce schedule produces the same totals).
//! 2. **Table layout** — every row of the table is filled independently
//!    (replicated coefficients, residue-indexed `z`/GBAS/histogram words),
//!    so rows go to workers as disjoint `&mut [u64]` slices.
//! 3. **Per-bucket perfect hashing** — each group owns a contiguous,
//!    gap-free `[GBAS(i), GBAS(i) + Σ_k ℓ²)` range of the header and data
//!    rows, so groups are carved into disjoint slice pairs and searched in
//!    parallel; buckets within a group run serially on their own RNG
//!    streams.
//!
//! **Determinism contract.** Randomness is keyed by a single `u64` seed and
//! addressed positionally through [`StreamRng`] lanes, never drawn from a
//! shared sequential stream: hash-draw attempt `a` samples `(f, g, z)` on
//! `for_lane(seed, DRAW, a)`, bucket `b` searches perfect-hash seeds on
//! `for_lane(seed, BUCKET, b)`, and shard `k` of a sharded build derives
//! its sub-seed on the `SHARD` lane. Every random value is therefore a pure
//! function of `(seed, position)`, independent of thread count, chunk size,
//! or scheduling — which is what makes `par_build` and [`build_seeded`]
//! byte-identical (the determinism matrix in
//! `tests/par_build_determinism.rs` asserts this through `persist::save`).

use crate::builder::{BuildError, BuildStats};
use crate::dict::{LowContentionDict, EMPTY};
use crate::histogram;
use crate::layout::Layout;
use crate::params::{Params, ParamsConfig};
use lcds_cellprobe::rngutil::StreamRng;
use lcds_cellprobe::table::Table;
use lcds_hashing::family::{HashFamily, HashFunction};
use lcds_hashing::perfect::PerfectHashBuilder;
use lcds_hashing::poly::{PolyFamily, PolyHash};
use lcds_hashing::MAX_KEY;
use lcds_obs::names as metric;
use rand::Rng;
use rayon::prelude::*;

/// Lane namespaces partitioning the build seed's stream space. Distinct
/// lanes give unrelated stream families (see [`StreamRng::for_lane`]), so
/// "draw attempt 3" and "bucket 3" never collide.
pub mod lanes {
    /// Hash-draw attempts: attempt `a` samples `(f, g, z)` on stream `a`.
    pub const DRAW: u64 = 1;
    /// Perfect-hash searches: bucket `b` tries seeds on stream `b`.
    pub const BUCKET: u64 = 2;
    /// Sharded builds: shard `k` builds under the sub-seed
    /// [`super::shard_seed`]`(seed, k)`.
    pub const SHARD: u64 = 3;
}

/// The sub-seed shard `k` builds under when a sharded dictionary is built
/// from one top-level seed (used by `lcds-serve`). A full `StreamRng`
/// derivation, so shard sub-seeds are as decorrelated from each other and
/// from the draw/bucket lanes as independent seeds.
#[inline]
pub fn shard_seed(seed: u64, shard: u64) -> u64 {
    StreamRng::for_lane(seed, lanes::SHARD, shard).state()
}

/// Per-key chunk size for the parallel fold/reduce over load tallies.
const TALLY_CHUNK: usize = 8 * 1024;

/// One `(f, g, z)` draw, reproducible from `(seed, attempt)`.
struct Draw {
    f: PolyHash,
    g: PolyHash,
    z: Vec<u64>,
}

/// Samples draw attempt `a` on its own stream — a pure function of
/// `(seed, a)`, so retry `a` is the same triple no matter how many earlier
/// attempts were verified in parallel or serially.
fn draw_at(p: &Params, seed: u64, attempt: u64) -> Draw {
    let mut rng = StreamRng::for_lane(seed, lanes::DRAW, attempt);
    let f = PolyFamily::new(p.d, p.s).sample(&mut rng);
    let g = PolyFamily::new(p.d, p.r).sample(&mut rng);
    let z: Vec<u64> = (0..p.r).map(|_| rng.random_range(0..p.s)).collect();
    Draw { f, g, z }
}

/// `(g(x), h(x))` for one key under one draw.
#[inline]
fn assign_key(p: &Params, d: &Draw, x: u64) -> (u64, u64) {
    let gx = d.g.eval(x);
    (gx, p.displace(d.f.eval(x), d.z[gx as usize]))
}

/// Class/group/bucket load tallies — the inputs to the `P(S)` clauses.
struct Tallies {
    class: Vec<u32>,
    group: Vec<u32>,
    bucket: Vec<u32>,
}

impl Tallies {
    fn zero(p: &Params) -> Tallies {
        Tallies {
            class: vec![0u32; p.r as usize],
            group: vec![0u32; p.m as usize],
            bucket: vec![0u32; p.s as usize],
        }
    }

    #[inline]
    fn absorb(&mut self, p: &Params, gx: u64, hx: u64) {
        self.class[gx as usize] += 1;
        self.group[(hx % p.m) as usize] += 1;
        self.bucket[hx as usize] += 1;
    }

    /// Elementwise sum — commutative and associative, so the parallel
    /// reduce tree's shape cannot change the result.
    fn merge(mut self, other: Tallies) -> Tallies {
        for (a, b) in self.class.iter_mut().zip(&other.class) {
            *a += b;
        }
        for (a, b) in self.group.iter_mut().zip(&other.group) {
            *a += b;
        }
        for (a, b) in self.bucket.iter_mut().zip(&other.bucket) {
            *a += b;
        }
        self
    }
}

/// Stage 1: assigns every key to its bucket and tallies loads, in parallel
/// (chunked fold/reduce) or serially. Returns `(per-key bucket, tallies)`;
/// both are value-deterministic.
fn assign_and_tally(keys: &[u64], p: &Params, d: &Draw, par: bool) -> (Vec<u64>, Tallies) {
    if par {
        let assign: Vec<(u64, u64)> = keys.par_iter().map(|&x| assign_key(p, d, x)).collect();
        let tallies = assign
            .par_chunks(TALLY_CHUNK)
            .fold(
                || Tallies::zero(p),
                |mut t, chunk| {
                    for &(gx, hx) in chunk {
                        t.absorb(p, gx, hx);
                    }
                    t
                },
            )
            .reduce(|| Tallies::zero(p), Tallies::merge);
        (assign.into_iter().map(|(_, hx)| hx).collect(), tallies)
    } else {
        let mut tallies = Tallies::zero(p);
        let mut bucket = Vec::with_capacity(keys.len());
        for &x in keys {
            let (gx, hx) = assign_key(p, d, x);
            tallies.absorb(p, gx, hx);
            bucket.push(hx);
        }
        (bucket, tallies)
    }
}

/// The `P(S)` decision for one verified draw; also returns `Σℓ²`.
fn property_holds(p: &Params, t: &Tallies) -> (bool, u64) {
    let sum_sq: u64 = t.bucket.iter().map(|&l| (l as u64) * (l as u64)).sum();
    let ok = t.class.iter().all(|&l| p.class_load_within_cap(l))
        && t.group.iter().all(|&l| p.group_load_within_cap(l))
        && p.fks_within_space(sum_sq);
    (ok, sum_sq)
}

/// Everything the per-row fill workers need, by shared reference.
struct RowFill<'a> {
    d: u32,
    r: u64,
    m: u64,
    rho: u32,
    fw: &'a [u64],
    gw: &'a [u64],
    z: &'a [u64],
    gbas: &'a [u64],
    /// Flat `m × ρ` arena: group `g`'s histogram words at `g·ρ .. (g+1)·ρ`.
    hist: &'a [u64],
}

impl RowFill<'_> {
    /// Fills one row of the table; header/data rows are left untouched
    /// (stage 3 owns them). Pure per-cell values — schedule-independent.
    fn fill(&self, row: u32, cells: &mut [u64]) {
        let rho = self.rho as usize;
        if row < self.d {
            cells.fill(self.fw[row as usize]);
        } else if row < 2 * self.d {
            cells.fill(self.gw[(row - self.d) as usize]);
        } else if row == 2 * self.d {
            for (j, c) in cells.iter_mut().enumerate() {
                *c = self.z[j % self.r as usize];
            }
        } else if row == 2 * self.d + 1 {
            for (j, c) in cells.iter_mut().enumerate() {
                *c = self.gbas[j % self.m as usize];
            }
        } else if row < 2 * self.d + 2 + self.rho {
            let w = (row - 2 * self.d - 2) as usize;
            for (j, c) in cells.iter_mut().enumerate() {
                *c = self.hist[(j % self.m as usize) * rho + w];
            }
        }
    }
}

/// Per-group outcome of the perfect-hash stage.
struct GroupHashed {
    /// `(bucket, trials)` per non-empty bucket, in in-group order.
    trials: Vec<(u64, u32)>,
}

/// Stage 3 worker: perfect-hashes every bucket of one group into the
/// group's disjoint header/data slices. Bucket `b`'s seed search runs on
/// stream `b` of the `BUCKET` lane, so the result is independent of which
/// worker runs it.
fn hash_group(
    group: u64,
    p: &Params,
    seed: u64,
    bucket_loads: &[u32],
    by_bucket: &[u64],
    offsets: &[usize],
    header: &mut [u64],
    data: &mut [u64],
) -> Result<GroupHashed, BuildError> {
    let ph_builder = PerfectHashBuilder::default();
    let mut trials = Vec::new();
    let mut cursor = 0usize;
    for k in 0..p.group_size {
        let b = p.bucket_of(group, k);
        let l = bucket_loads[b as usize];
        if l == 0 {
            continue;
        }
        let range = (l as usize) * (l as usize);
        let bucket_keys = &by_bucket[offsets[b as usize]..offsets[b as usize + 1]];
        debug_assert_eq!(bucket_keys.len(), l as usize);
        let mut rng = StreamRng::for_lane(seed, lanes::BUCKET, b);
        let found = ph_builder
            .build(bucket_keys, range as u64, &mut rng)
            .ok_or(BuildError::PerfectHashFailed { bucket: b, load: l })?;
        trials.push((b, found.trials));
        header[cursor..cursor + range].fill(found.hash.seed());
        for &x in bucket_keys {
            data[cursor + found.hash.eval(x) as usize] = x;
        }
        cursor += range;
    }
    debug_assert_eq!(cursor, header.len());
    Ok(GroupHashed { trials })
}

/// Input validation shared by both twins: sort (parallel or serial — same
/// total order either way), then reject duplicates and out-of-universe
/// keys exactly as [`crate::builder::build_with`] does.
fn preflight(keys: &[u64], par: bool) -> Result<Vec<u64>, BuildError> {
    if keys.is_empty() {
        return Err(BuildError::EmptyKeySet);
    }
    let mut sorted = keys.to_vec();
    if par {
        sorted.par_sort_unstable();
    } else {
        sorted.sort_unstable();
    }
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(BuildError::DuplicateKey(w[0]));
        }
    }
    if let Some(&bad) = sorted.iter().find(|&&k| k > MAX_KEY) {
        return Err(BuildError::KeyOutOfRange(bad));
    }
    Ok(sorted)
}

/// The pipeline shared by [`par_build_with`] and [`build_seeded_with`]:
/// identical value computations, with `par` selecting whether each stage
/// fans out over the Rayon pool or runs as plain loops.
fn build_impl(
    keys: &[u64],
    config: &ParamsConfig,
    seed: u64,
    par: bool,
) -> Result<LowContentionDict, BuildError> {
    let sorted = preflight(keys, par)?;
    let p = Params::derive(sorted.len() as u64, config);
    let layout = Layout::new(&p);
    let _build_span = lcds_obs::span(metric::BUILD_TOTAL);
    if par {
        lcds_obs::gauge(metric::BUILD_PAR_WORKERS).set(rayon::current_num_threads() as f64);
    }

    // Stage 1: rejection-sample (f, g, z) until P(S) holds. Attempts are
    // tried in order (expected O(1) of them, Lemma 9), each verified with
    // a chunked parallel fold/reduce over the keys.
    let draw_span = lcds_obs::span(metric::BUILD_HASH_DRAW);
    let mut accepted = None;
    for attempt in 0..config.max_hash_retries {
        let d = draw_at(&p, seed, attempt as u64);
        let (bucket, tallies) = assign_and_tally(&sorted, &p, &d, par);
        let (ok, sum_sq) = property_holds(&p, &tallies);
        if ok {
            accepted = Some((d, bucket, tallies.bucket, sum_sq, attempt));
            break;
        }
    }
    let (draw, bucket, bucket_loads, sum_sq, retries) =
        accepted.ok_or(BuildError::HashRetriesExhausted(config.max_hash_retries))?;
    drop(draw_span);
    lcds_obs::counter(metric::BUILD_HASH_RETRIES_TOTAL).add(retries as u64);

    // Group-base addresses: GBAS(i) = Σ_{i' < i} Σ_k ℓ(k·m + i')². Prefix
    // sums over m groups — O(m), not worth parallelising.
    let mut group_sq = vec![0u64; p.m as usize];
    for (b, &l) in bucket_loads.iter().enumerate() {
        group_sq[b % p.m as usize] += (l as u64) * (l as u64);
    }
    let mut gbas = vec![0u64; p.m as usize];
    for i in 1..p.m as usize {
        gbas[i] = gbas[i - 1] + group_sq[i - 1];
    }
    debug_assert!(sum_sq <= p.s, "P(S) guarantees Σℓ² ≤ s");

    // Bucket → keys via counting sort (O(n + s), inherently sequential
    // cursor walk; cheap relative to hashing and layout).
    let mut offsets = vec![0usize; p.s as usize + 1];
    for &b in &bucket {
        offsets[b as usize + 1] += 1;
    }
    for i in 0..p.s as usize {
        offsets[i + 1] += offsets[i];
    }
    let mut by_bucket = vec![0u64; sorted.len()];
    {
        let mut cursor = offsets.clone();
        for (i, &x) in sorted.iter().enumerate() {
            let b = bucket[i] as usize;
            by_bucket[cursor[b]] = x;
            cursor[b] += 1;
        }
    }

    // Stage 2a: encode every group's histogram into a flat m × ρ arena.
    let hist_span = lcds_obs::span(metric::BUILD_HISTOGRAM_LAYOUT);
    let rho = p.rho as usize;
    let mut hist = vec![0u64; p.m as usize * rho];
    let encode_group = |g: usize, words: &mut [u64]| {
        let mut loads = vec![0u32; p.group_size as usize];
        for (k, slot) in loads.iter_mut().enumerate() {
            *slot = bucket_loads[p.bucket_of(g as u64, k as u64) as usize];
        }
        assert!(
            histogram::encode_into(&loads, words),
            "P(S) bounds the group load, so the histogram fits by construction"
        );
    };
    if par {
        hist.par_chunks_mut(rho)
            .enumerate()
            .for_each(|(g, words)| encode_group(g, words));
    } else {
        for (g, words) in hist.chunks_mut(rho).enumerate() {
            encode_group(g, words);
        }
    }
    drop(hist_span);

    // Stage 2b: fill every non-header row from its disjoint slice.
    let layout_span = lcds_obs::span(metric::BUILD_TABLE_LAYOUT);
    let mut table = Table::new(layout.num_rows(), p.s, EMPTY);
    let fw = draw.f.words();
    let gw = draw.g.words();
    let ctx = RowFill {
        d: layout.d,
        r: p.r,
        m: p.m,
        rho: p.rho,
        fw: &fw,
        gw: &gw,
        z: &draw.z,
        gbas: &gbas,
        hist: &hist,
    };
    if par {
        let rows: Vec<(u32, &mut [u64])> = table.rows_mut().collect();
        rows.into_par_iter()
            .for_each(|(row, cells)| ctx.fill(row, cells));
    } else {
        for (row, cells) in table.rows_mut() {
            ctx.fill(row, cells);
        }
    }
    drop(layout_span);

    // Stage 3: per-bucket perfect hashing. The groups' owned ranges tile
    // [0, Σℓ²) contiguously (GBAS is their prefix sum), so the header and
    // data rows split into per-group disjoint slices; the tail [Σℓ², s)
    // is slack and stays EMPTY.
    let seed_span = lcds_obs::span(metric::BUILD_PERFECT_HASH);
    let (header_row, data_row) = table.two_rows_mut(layout.row_header(), layout.row_data());
    let mut header_parts: Vec<&mut [u64]> = Vec::with_capacity(p.m as usize);
    let mut data_parts: Vec<&mut [u64]> = Vec::with_capacity(p.m as usize);
    {
        let mut header_rest = header_row;
        let mut data_rest = data_row;
        for &sq in &group_sq {
            let (h, ht) = header_rest.split_at_mut(sq as usize);
            let (d, dt) = data_rest.split_at_mut(sq as usize);
            header_parts.push(h);
            data_parts.push(d);
            header_rest = ht;
            data_rest = dt;
        }
    }
    let hashed: Result<Vec<GroupHashed>, BuildError> = if par {
        header_parts
            .into_par_iter()
            .zip(data_parts.into_par_iter())
            .enumerate()
            .map(|(g, (h, d))| {
                hash_group(
                    g as u64,
                    &p,
                    seed,
                    &bucket_loads,
                    &by_bucket,
                    &offsets,
                    h,
                    d,
                )
            })
            .collect()
    } else {
        header_parts
            .into_iter()
            .zip(data_parts)
            .enumerate()
            .map(|(g, (h, d))| {
                hash_group(
                    g as u64,
                    &p,
                    seed,
                    &bucket_loads,
                    &by_bucket,
                    &offsets,
                    h,
                    d,
                )
            })
            .collect()
    };
    let hashed = hashed?;
    drop(seed_span);

    // Stats and telemetry, folded in group order (the sums and max are
    // order-insensitive anyway; the fixed order keeps event logs stable).
    let mut stats = BuildStats {
        hash_retries: retries,
        sum_squared_loads: sum_sq,
        ..BuildStats::default()
    };
    let trials_hist = lcds_obs::histogram(metric::BUILD_SEED_TRIALS_PER_BUCKET);
    for g in &hashed {
        for &(_, trials) in &g.trials {
            stats.perfect_trials_total += trials as u64;
            stats.perfect_trials_max = stats.perfect_trials_max.max(trials);
            stats.nonempty_buckets += 1;
            trials_hist.record(trials as u64);
        }
    }
    lcds_obs::counter(metric::BUILD_SEED_TRIALS_TOTAL).add(stats.perfect_trials_total);
    lcds_obs::counter(metric::BUILDS_TOTAL).inc();
    lcds_obs::gauge(metric::BUILD_SEED_TRIALS_MAX).set_max(stats.perfect_trials_max as f64);
    lcds_obs::emit(
        metric::EVENT_BUILD_COMPLETE,
        serde_json::json!({
            "n": sorted.len(),
            "cells": p.s * layout.num_rows() as u64,
            "hash_retries": stats.hash_retries,
            "perfect_trials_total": stats.perfect_trials_total,
            "perfect_trials_max": stats.perfect_trials_max,
            "nonempty_buckets": stats.nonempty_buckets,
            "sum_squared_loads": stats.sum_squared_loads,
            "parallel": par,
        }),
    );

    Ok(LowContentionDict::from_parts(
        p, layout, table, sorted, draw.f, draw.g, draw.z, stats,
    ))
}

/// Builds the dictionary in parallel on the current Rayon pool, with
/// explicit configuration. Bit-for-bit identical to
/// [`build_seeded_with`] for the same `(keys, config, seed)` at every
/// thread count.
pub fn par_build_with(
    keys: &[u64],
    config: &ParamsConfig,
    seed: u64,
) -> Result<LowContentionDict, BuildError> {
    build_impl(keys, config, seed, true)
}

/// Builds the dictionary in parallel with [`ParamsConfig::default`].
pub fn par_build(keys: &[u64], seed: u64) -> Result<LowContentionDict, BuildError> {
    par_build_with(keys, &ParamsConfig::default(), seed)
}

/// The sequential twin of [`par_build_with`]: same seed discipline, same
/// value computations, plain loops. This is the reference the determinism
/// matrix compares against.
pub fn build_seeded_with(
    keys: &[u64],
    config: &ParamsConfig,
    seed: u64,
) -> Result<LowContentionDict, BuildError> {
    build_impl(keys, config, seed, false)
}

/// Sequential seeded build with [`ParamsConfig::default`].
pub fn build_seeded(keys: &[u64], seed: u64) -> Result<LowContentionDict, BuildError> {
    build_seeded_with(keys, &ParamsConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;

    fn keyset(n: u64, salt: u64) -> Vec<u64> {
        (0..n)
            .map(|i| lcds_hashing::mix::derive(salt, i) % MAX_KEY)
            .collect()
    }

    fn bytes(d: &LowContentionDict) -> Vec<u8> {
        let mut buf = Vec::new();
        persist::save(d, &mut buf).expect("in-memory save cannot fail");
        buf
    }

    #[test]
    fn par_build_verifies_structurally() {
        for (n, seed) in [(1u64, 9), (10, 10), (500, 11), (2048, 12)] {
            let keys = keyset(n, seed);
            let d = par_build(&keys, seed).unwrap_or_else(|e| panic!("n={n}: {e}"));
            crate::verify::verify(&d).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn par_build_matches_sequential_twin_byte_for_byte() {
        for (n, seed) in [(1u64, 1), (37, 2), (700, 3)] {
            let keys = keyset(n, seed);
            let par = par_build(&keys, seed).expect("parallel build");
            let seq = build_seeded(&keys, seed).expect("sequential build");
            assert_eq!(bytes(&par), bytes(&seq), "n={n} seed={seed}");
            assert_eq!(par.stats(), seq.stats());
        }
    }

    #[test]
    fn different_seeds_give_different_structures() {
        let keys = keyset(300, 5);
        let a = par_build(&keys, 1).unwrap();
        let b = par_build(&keys, 2).unwrap();
        // Same keys either way…
        assert_eq!(a.keys(), b.keys());
        // …but independent randomness (overwhelmingly likely to differ).
        assert_ne!(bytes(&a), bytes(&b));
    }

    #[test]
    fn key_order_does_not_matter() {
        let mut keys = keyset(200, 6);
        let a = par_build(&keys, 7).unwrap();
        keys.reverse();
        let b = par_build(&keys, 7).unwrap();
        assert_eq!(bytes(&a), bytes(&b));
    }

    #[test]
    fn rejects_bad_inputs_like_the_sequential_builder() {
        assert_eq!(par_build(&[], 1).unwrap_err(), BuildError::EmptyKeySet);
        assert_eq!(
            par_build(&[5, 9, 5], 1).unwrap_err(),
            BuildError::DuplicateKey(5)
        );
        assert_eq!(
            par_build(&[1, u64::MAX], 1).unwrap_err(),
            BuildError::KeyOutOfRange(u64::MAX)
        );
    }

    #[test]
    fn retry_cap_surfaces_cleanly() {
        // With a cap of 1 some seeds must fail P(S); the error is clean and
        // both twins agree on which seeds those are.
        let keys = keyset(300, 9);
        let config = ParamsConfig {
            max_hash_retries: 1,
            ..ParamsConfig::default()
        };
        let mut saw_fail = false;
        for seed in 0..100 {
            let par = par_build_with(&keys, &config, seed);
            let seq = build_seeded_with(&keys, &config, seed);
            match (&par, &seq) {
                (Ok(a), Ok(b)) => assert_eq!(bytes(a), bytes(b), "seed {seed}"),
                (Err(BuildError::HashRetriesExhausted(1)), Err(_)) => saw_fail = true,
                other => panic!("twins disagree at seed {seed}: {other:?}"),
            }
        }
        // Not asserting saw_fail strictly — but record the intent.
        let _ = saw_fail;
    }

    #[test]
    fn shard_seeds_are_decorrelated() {
        let s0 = shard_seed(42, 0);
        let s1 = shard_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0));
        // Reproducible.
        assert_eq!(shard_seed(42, 0), s0);
    }

    #[test]
    fn queries_agree_with_sequential_builder_semantics() {
        let keys = keyset(400, 13);
        let d = par_build(&keys, 13).unwrap();
        for &x in keys.iter().take(50) {
            assert!(d.resolve_contains(x));
        }
        assert!(!d.resolve_contains(MAX_KEY - 1));
    }
}

//! Query distributions over the key universe (§1.1 of the paper).
//!
//! The paper's upper bound (Theorem 3) assumes the query is uniform within
//! the positive set and uniform within the negative set; its lower bound
//! (Theorem 13) is about *arbitrary* distributions unknown to the query
//! algorithm. Both sides are represented here:
//!
//! * [`UniformOver`] — uniform over an explicit finite support. With the
//!   support = the stored key set this is the paper's "uniform positive"
//!   distribution; with the support = a pool of non-members it stands in for
//!   "uniform negative" (the true negative set has `N − n ≈ 2^61` elements;
//!   a uniformly-sampled pool is an unbiased surrogate whose exact
//!   contention converges to the true value — DESIGN.md, substitutions).
//! * [`Mixture`] — e.g. 50/50 positive/negative traffic.
//! * [`Zipf`] — skewed queries for the arbitrary-distribution experiments
//!   (F6): rank `i` is queried with weight `∝ (i+1)^{-θ}`.
//! * [`PointMass`], [`Weighted`] — degenerate and fully general cases.
//!
//! Every distribution can both *sample* (for Monte-Carlo measurement) and
//! expose its finite weighted support as a [`QueryPool`] (for the exact
//! contention computation in [`crate::exact`]).

use crate::alias::AliasTable;
use crate::rngutil::{bernoulli, uniform_below};
use rand::RngCore;

/// A finite weighted query support: `(key, probability)` pairs.
#[derive(Clone, Debug, Default)]
pub struct QueryPool {
    /// The `(key, weight)` entries; weights sum to 1 after [`QueryPool::normalize`].
    pub entries: Vec<(u64, f64)>,
}

impl QueryPool {
    /// Uniform pool over the given keys.
    ///
    /// # Panics
    /// Panics if `keys` is empty.
    pub fn uniform(keys: &[u64]) -> QueryPool {
        assert!(!keys.is_empty(), "a query pool cannot be empty");
        let w = 1.0 / keys.len() as f64;
        QueryPool {
            entries: keys.iter().map(|&k| (k, w)).collect(),
        }
    }

    /// Pool with explicit weights (will be normalized).
    pub fn weighted(entries: Vec<(u64, f64)>) -> QueryPool {
        let mut pool = QueryPool { entries };
        pool.normalize();
        pool
    }

    /// Total probability mass.
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Rescales weights to sum to 1.
    ///
    /// # Panics
    /// Panics if the total weight is not positive and finite.
    pub fn normalize(&mut self) {
        let total = self.total_weight();
        assert!(
            total > 0.0 && total.is_finite(),
            "pool weight must be positive and finite, got {total}"
        );
        for (_, w) in &mut self.entries {
            *w /= total;
        }
    }

    /// Merges another pool, scaling this one's mass by `p` and the other's
    /// by `1 − p`.
    pub fn mix(mut self, other: QueryPool, p: f64) -> QueryPool {
        assert!((0.0..=1.0).contains(&p));
        for (_, w) in &mut self.entries {
            *w *= p;
        }
        self.entries
            .extend(other.entries.into_iter().map(|(k, w)| (k, w * (1.0 - p))));
        self
    }
}

/// A distribution over queries that can be sampled and enumerated.
pub trait QueryDistribution {
    /// Human-readable name for experiment tables.
    fn name(&self) -> String;

    /// Draws one query.
    fn sample(&self, rng: &mut dyn RngCore) -> u64;

    /// The finite weighted support, for exact contention computation.
    fn pool(&self) -> QueryPool;
}

/// Uniform over an explicit support.
#[derive(Clone, Debug)]
pub struct UniformOver {
    label: String,
    items: Vec<u64>,
}

impl UniformOver {
    /// Creates a uniform distribution over `items` with a display label
    /// (e.g. `"uniform-positive"`).
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn new(label: impl Into<String>, items: Vec<u64>) -> UniformOver {
        assert!(!items.is_empty(), "support cannot be empty");
        UniformOver {
            label: label.into(),
            items,
        }
    }

    /// The support.
    pub fn items(&self) -> &[u64] {
        &self.items
    }
}

impl QueryDistribution for UniformOver {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        self.items[uniform_below(rng, self.items.len() as u64) as usize]
    }

    fn pool(&self) -> QueryPool {
        QueryPool::uniform(&self.items)
    }
}

/// A two-component mixture: `a` with probability `p`, else `b`.
pub struct Mixture {
    a: Box<dyn QueryDistribution + Send + Sync>,
    b: Box<dyn QueryDistribution + Send + Sync>,
    p: f64,
}

impl Mixture {
    /// Mixes `a` (probability `p`) with `b` (probability `1 − p`).
    pub fn new(
        a: Box<dyn QueryDistribution + Send + Sync>,
        b: Box<dyn QueryDistribution + Send + Sync>,
        p: f64,
    ) -> Mixture {
        assert!((0.0..=1.0).contains(&p));
        Mixture { a, b, p }
    }
}

impl QueryDistribution for Mixture {
    fn name(&self) -> String {
        format!(
            "mix({:.2}·{} + {:.2}·{})",
            self.p,
            self.a.name(),
            1.0 - self.p,
            self.b.name()
        )
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        if bernoulli(rng, self.p) {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }

    fn pool(&self) -> QueryPool {
        self.a.pool().mix(self.b.pool(), self.p)
    }
}

/// Zipf-distributed queries over an ordered support: rank `i` (0-based) has
/// weight `∝ (i+1)^{-θ}`. `θ = 0` is uniform; larger `θ` is more skewed.
#[derive(Clone, Debug)]
pub struct Zipf {
    items: Vec<u64>,
    theta: f64,
    /// Cumulative normalized weights (kept for exact pool construction).
    cumulative: Vec<f64>,
    /// O(1) sampler.
    alias: AliasTable,
}

impl Zipf {
    /// Creates a Zipf(θ) distribution over `items` in rank order.
    ///
    /// # Panics
    /// Panics if `items` is empty or `θ < 0`.
    pub fn new(items: Vec<u64>, theta: f64) -> Zipf {
        assert!(!items.is_empty(), "support cannot be empty");
        assert!(theta >= 0.0, "theta must be non-negative");
        let weights: Vec<f64> = (0..items.len())
            .map(|i| ((i + 1) as f64).powf(-theta))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf {
            alias: AliasTable::new(&weights),
            items,
            theta,
            cumulative,
        }
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl QueryDistribution for Zipf {
    fn name(&self) -> String {
        format!("zipf(θ={})", self.theta)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        self.items[self.alias.sample(rng)]
    }

    fn pool(&self) -> QueryPool {
        let mut prev = 0.0;
        let entries = self
            .items
            .iter()
            .zip(self.cumulative.iter())
            .map(|(&k, &c)| {
                let w = c - prev;
                prev = c;
                (k, w)
            })
            .collect();
        QueryPool { entries }
    }
}

/// All queries equal one key — the most adversarial "distribution uniform
/// within positives" is not; used for worst-case sanity checks.
#[derive(Clone, Copy, Debug)]
pub struct PointMass(pub u64);

impl QueryDistribution for PointMass {
    fn name(&self) -> String {
        format!("point({})", self.0)
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> u64 {
        self.0
    }

    fn pool(&self) -> QueryPool {
        QueryPool {
            entries: vec![(self.0, 1.0)],
        }
    }
}

/// Fully general finite distribution.
#[derive(Clone, Debug)]
pub struct Weighted {
    label: String,
    entries: Vec<(u64, f64)>,
    alias: AliasTable,
}

impl Weighted {
    /// Creates a distribution from `(key, weight)` pairs (normalized).
    ///
    /// # Panics
    /// Panics if empty, or any weight is negative, or all weights are zero.
    pub fn new(label: impl Into<String>, entries: Vec<(u64, f64)>) -> Weighted {
        assert!(!entries.is_empty());
        assert!(entries.iter().all(|&(_, w)| w >= 0.0));
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "all weights are zero");
        let entries: Vec<(u64, f64)> = entries.into_iter().map(|(k, w)| (k, w / total)).collect();
        let weights: Vec<f64> = entries.iter().map(|&(_, w)| w).collect();
        Weighted {
            label: label.into(),
            entries,
            alias: AliasTable::new(&weights),
        }
    }
}

impl QueryDistribution for Weighted {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        self.entries[self.alias.sample(rng)].0
    }

    fn pool(&self) -> QueryPool {
        QueryPool {
            entries: self.entries.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_pool_weights_sum_to_one() {
        let d = UniformOver::new("u", vec![1, 2, 3, 4]);
        let pool = d.pool();
        assert!((pool.total_weight() - 1.0).abs() < 1e-12);
        assert!(pool.entries.iter().all(|&(_, w)| (w - 0.25).abs() < 1e-12));
    }

    #[test]
    fn uniform_samples_only_support() {
        let d = UniformOver::new("u", vec![10, 20, 30]);
        let mut r = rng(1);
        for _ in 0..100 {
            assert!([10, 20, 30].contains(&d.sample(&mut r)));
        }
    }

    #[test]
    fn uniform_sampling_is_balanced() {
        let d = UniformOver::new("u", vec![0, 1, 2, 3]);
        let mut r = rng(2);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[d.sample(&mut r) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 200.0, "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let d = Zipf::new(vec![5, 6, 7, 8], 0.0);
        let pool = d.pool();
        for &(_, w) in &pool.entries {
            assert!((w - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_is_rank_ordered() {
        let d = Zipf::new(vec![100, 200, 300], 1.0);
        let pool = d.pool();
        assert!(pool.entries[0].1 > pool.entries[1].1);
        assert!(pool.entries[1].1 > pool.entries[2].1);
        assert!((pool.total_weight() - 1.0).abs() < 1e-9);
        // Exact weights 1 : 1/2 : 1/3 normalized.
        let z = 1.0 + 0.5 + 1.0 / 3.0;
        assert!((pool.entries[0].1 - 1.0 / z).abs() < 1e-12);
    }

    #[test]
    fn zipf_sampling_matches_pool() {
        let d = Zipf::new(vec![0, 1, 2, 3, 4], 1.2);
        let pool = d.pool();
        let mut r = rng(3);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            *counts.entry(d.sample(&mut r)).or_default() += 1;
        }
        for &(k, w) in &pool.entries {
            let emp = *counts.get(&k).unwrap_or(&0) as f64 / trials as f64;
            assert!((emp - w).abs() < 0.01, "key {k}: emp {emp:.4} vs {w:.4}");
        }
    }

    #[test]
    fn mixture_pool_mass_splits() {
        let a = Box::new(UniformOver::new("a", vec![1]));
        let b = Box::new(UniformOver::new("b", vec![2]));
        let m = Mixture::new(a, b, 0.7);
        let pool = m.pool();
        let w: HashMap<u64, f64> = pool.entries.iter().copied().collect();
        assert!((w[&1] - 0.7).abs() < 1e-12);
        assert!((w[&2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mixture_sampling_rate() {
        let a = Box::new(UniformOver::new("a", vec![1]));
        let b = Box::new(UniformOver::new("b", vec![2]));
        let m = Mixture::new(a, b, 0.25);
        let mut r = rng(4);
        let ones = (0..20_000).filter(|_| m.sample(&mut r) == 1).count();
        let rate = ones as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn point_mass() {
        let d = PointMass(99);
        let mut r = rng(5);
        assert_eq!(d.sample(&mut r), 99);
        assert_eq!(d.pool().entries, vec![(99, 1.0)]);
    }

    #[test]
    fn weighted_normalizes() {
        let d = Weighted::new("w", vec![(1, 3.0), (2, 1.0)]);
        let pool = d.pool();
        assert!((pool.entries[0].1 - 0.75).abs() < 1e-12);
        assert!((pool.entries[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "support cannot be empty")]
    fn empty_uniform_rejected() {
        let _ = UniformOver::new("u", vec![]);
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn zero_weights_rejected() {
        let _ = Weighted::new("w", vec![(1, 0.0)]);
    }

    #[test]
    fn pool_mix_preserves_mass() {
        let p = QueryPool::uniform(&[1, 2]).mix(QueryPool::uniform(&[3]), 0.5);
        assert!((p.total_weight() - 1.0).abs() < 1e-12);
    }
}

//! T10 — `m` *simultaneous* queries (§1: "The expected number of probes to
//! the cell for some fixed number m of simultaneous queries can then be
//! bounded using linearity of expectation").
//!
//! For each scheme we fire batches of `m` queries in lockstep and count,
//! at every step, the largest number of queries landing on one cell — the
//! instantaneous queue a real memory would serve. Linearity of expectation
//! gives `E[#probes on cell j at step t] = m · Φ_t(j)`; the measured batch
//! maxima should track `m · max Φ_t` plus balls-in-bins fluctuation.

use crate::registry::{build_schemes, SchemeSet};
use lcds_cellprobe::dist::QueryDistribution;
use lcds_cellprobe::dist::QueryPool;
use lcds_cellprobe::exact::exact_contention;
use lcds_cellprobe::report::{sig4, TextTable};
use lcds_cellprobe::sink::{ProbeSink, TraceSink};
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::querygen::positive_dist;
use lcds_workloads::rng::seeded;
use serde_json::json;
use std::collections::HashMap;

use super::ExpOutput;

/// **T10** — batch collision maxima vs the `m·Φ` prediction.
pub fn t10(quick: bool) -> ExpOutput {
    let n = if quick { 512 } else { 4096 };
    let m = if quick { 128u64 } else { 1024 };
    let trials = if quick { 10 } else { 40 };
    let seed = 0xA100 + n as u64;
    let keys = uniform_keys(n, seed);
    let dist = positive_dist(&keys);
    let schemes = build_schemes(&keys, seed, SchemeSet::Headline);

    let mut table = TextTable::new(
        format!("T10 — max simultaneous probes on one cell, batches of m = {m} queries (n = {n})"),
        &[
            "scheme",
            "m·maxΦ (prediction)",
            "mean batch max",
            "worst batch max",
        ],
    );
    let mut rows = Vec::new();
    for dict in &schemes {
        let prof = exact_contention(&**dict, &QueryPool::uniform(&keys));
        let predicted = m as f64 * prof.max_step();

        let mut rng = seeded(seed ^ 0xA1);
        let mut worst = 0u32;
        let mut total = 0u64;
        for _ in 0..trials {
            // Fire m queries, keeping per-query step-aligned traces.
            let mut traces: Vec<Vec<u64>> = Vec::with_capacity(m as usize);
            for _ in 0..m {
                let x = dist.sample(&mut rng);
                let mut t = TraceSink::new();
                t.begin_query();
                let _ = dict.contains(x, &mut rng, &mut t);
                traces.push(t.trace().to_vec());
            }
            let steps = traces.iter().map(|t| t.len()).max().unwrap_or(0);
            let mut batch_max = 0u32;
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for t in 0..steps {
                counts.clear();
                for trace in &traces {
                    if let Some(&cell) = trace.get(t) {
                        let c = counts.entry(cell).or_insert(0);
                        *c += 1;
                        batch_max = batch_max.max(*c);
                    }
                }
            }
            worst = worst.max(batch_max);
            total += batch_max as u64;
        }
        let mean = total as f64 / trials as f64;
        table.row(vec![
            dict.name(),
            sig4(predicted),
            sig4(mean),
            worst.to_string(),
        ]);
        rows.push(json!({
            "scheme": dict.name(),
            "predicted": predicted,
            "mean_batch_max": mean,
            "worst_batch_max": worst,
        }));
    }
    ExpOutput {
        id: "t10",
        tables: vec![table],
        series: vec![],
        json: json!({ "n": n, "m": m, "trials": trials, "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t10_prediction_orders_the_schemes() {
        let out = t10(true);
        let rows = out.json["rows"].as_array().unwrap();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r["scheme"] == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let bin = get("binary-search");
        // All m queries hit the root simultaneously.
        assert_eq!(
            bin["worst_batch_max"].as_u64().unwrap(),
            out.json["m"].as_u64().unwrap()
        );
        let lcd = get("low-contention");
        // The flat scheme's batch max is a small number (prediction ~m·30/cells ≈ O(1),
        // plus balls-in-bins noise ~ a handful).
        assert!(
            lcd["worst_batch_max"].as_u64().unwrap() < 32,
            "lcd batch max {lcd}"
        );
        assert!(
            lcd["mean_batch_max"].as_f64().unwrap() < bin["mean_batch_max"].as_f64().unwrap() / 4.0
        );
    }
}

//! **lcds-serve** — the bulk-query serving engine.
//!
//! Theorem 3 makes every cell of the dictionary cold; this crate makes a
//! *server* built on it fast. Three layers, composable:
//!
//! * **Probe plans** ([`lcds_core::plan`]) — a batch of keys is resolved
//!   stage-at-a-time: all hash/replica decisions first, then probes
//!   executed grouped by table region with plain read-ahead of the next
//!   plan entry, so independent cache misses overlap instead of chaining.
//! * **The engine** ([`engine`]) — chunks a query array into batches,
//!   runs them across Rayon's pool, and keeps answers bit-for-bit
//!   identical to the sequential path regardless of batch size or thread
//!   schedule (per-key randomness is addressed by *global* key position,
//!   never by chunk).
//! * **Dynamic serving** ([`dynamic`]) — a [`dynamic::DynamicEngine`]
//!   wraps the mutable [`lcds_core::DynamicLcd`] behind RCU-style
//!   generation swaps: a single writer applies Insert/Remove/Flush and
//!   publishes immutable `Arc`-shared generations; readers clone the
//!   `Arc` and probe lock-free, so they never block on a rebuild and
//!   never observe a torn table.
//! * **Ordered serving** ([`ordered`]) — an [`ordered::OrderedEngine`]
//!   answers bulk predecessor / rank / range-count over an
//!   [`lcds_ordered::OrderedLcd`] under the same contract: answers are
//!   bit-identical to the sequential path at any chunking, because each
//!   query's per-level replica randomness is addressed by its global
//!   stream position.
//! * **Sharding** ([`shard`]) — `K` independently built dictionaries
//!   behind a splitter hash, for key sets too large for one table (or one
//!   socket). A [`shard::ShardedLcd`] is itself a
//!   [`lcds_cellprobe::CellProbeDict`] + [`lcds_cellprobe::ExactProbes`],
//!   so every measurement harness in the workspace applies unchanged —
//!   including exact contention, which stays flat because each shard's
//!   profile is flat over its own cells and the splitter is balanced.
//!
//! Telemetry: with `lcds_obs::set_enabled(true)`, the engine records the
//! `lcds_serve_*` series named in [`lcds_obs::names`] (see
//! docs/OBSERVABILITY.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod engine;
pub mod ordered;
pub mod shard;

pub use dynamic::{DynCounters, DynamicEngine, Generation};
pub use engine::{bulk_contains, bulk_contains_seq, bulk_count, Engine, EngineConfig, EngineDict};
pub use ordered::OrderedEngine;
pub use shard::{ShardBuildError, ShardedLcd};

//! The serialized-memory gate: a striped per-cell ticket lock that makes
//! the QRQW cost of a probe *physical* instead of modeled.
//!
//! The paper's contention measure Φ charges a query for landing on a cell
//! that other concurrent queries also read. Commodity hardware hides that
//! cost behind coherent read sharing until core counts get large — and a
//! single-core CI container hides it entirely. [`SerializedMemory`]
//! restores the queued-read semantics the QRQW PRAM model assumes: every
//! probe acquires a ticket on its cell's stripe and *holds it for a fixed
//! memory service window* (`service_ns`, busy-waited), so two probes of
//! the same cell are forced to execute back-to-back, never overlapped.
//!
//! On a real multicore this is an honest serialization cost: the hot
//! cell's stripe becomes a convoy exactly proportional to its probe
//! share. On one core it is sharper still — when the OS preempts a holder
//! mid-window, every other thread that reaches the same stripe spins away
//! its entire timeslice, so wall-clock slowdown grows with the share of
//! probe traffic behind the hottest stripe, i.e. with Φ̂. That is what
//! lets `bench-mt` observe the Φ̂ → slowdown correlation on any host
//! (EXPERIMENTS.md records the single-core caveat).
//!
//! Waiters intentionally spin without yielding: a `yield_now` would let
//! the scheduler paper over the convoy, which is precisely the effect
//! under measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// splitmix64 finalizer — decorrelates cell ids before striping so dense
/// cell ranges (FKS data regions, LCD rows) spread across stripes.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One ticket gate, padded to a cache line so stripes don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct Gate {
    next: AtomicU64,
    serving: AtomicU64,
}

/// A bank of striped ticket gates emulating serialized (QRQW) memory
/// cells. Shared by reference across all bench threads; every method
/// takes `&self`.
pub struct SerializedMemory {
    gates: Vec<Gate>,
    service_ns: u64,
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl SerializedMemory {
    /// Default stripe count. Few enough that a hot cell's stripe carries
    /// nearly all of that cell's traffic and little else (1/64 ≈ 1.6%
    /// background per stripe), many enough that a flat scheme sees almost
    /// no cross-cell convoying.
    pub const DEFAULT_STRIPES: usize = 64;

    /// New gate bank with `stripes` gates (clamped to ≥ 1) and a
    /// `service_ns` busy-wait hold per access.
    pub fn new(stripes: usize, service_ns: u64) -> SerializedMemory {
        SerializedMemory {
            gates: (0..stripes.max(1)).map(|_| Gate::default()).collect(),
            service_ns,
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.gates.len()
    }

    /// The configured per-access service window in nanoseconds.
    pub fn service_ns(&self) -> u64 {
        self.service_ns
    }

    /// Total gate acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the gate held (or queued behind) another
    /// ticket — the direct count of serialized-memory conflicts.
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Performs one serialized access to `cell`: take a ticket on the
    /// cell's stripe, spin until served, hold the gate for the service
    /// window, release.
    pub fn access(&self, cell: u64) {
        let gate = &self.gates[(mix(cell) % self.gates.len() as u64) as usize];
        let ticket = gate.next.fetch_add(1, Ordering::AcqRel);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if gate.serving.load(Ordering::Acquire) != ticket {
            self.contended.fetch_add(1, Ordering::Relaxed);
            while gate.serving.load(Ordering::Acquire) != ticket {
                std::hint::spin_loop();
            }
        }
        if self.service_ns > 0 {
            let t0 = Instant::now();
            while (t0.elapsed().as_nanos() as u64) < self.service_ns {
                std::hint::spin_loop();
            }
        }
        gate.serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn single_thread_pays_the_service_window_uncontended() {
        let mem = SerializedMemory::new(8, 2_000);
        let t0 = Instant::now();
        for cell in 0..200u64 {
            mem.access(cell);
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        assert!(
            elapsed >= 200 * 2_000,
            "200 accesses at 2µs each took only {elapsed}ns"
        );
        assert_eq!(mem.acquisitions(), 200);
        assert_eq!(mem.contended(), 0, "one thread can never contend");
    }

    #[test]
    fn concurrent_same_cell_accesses_are_detected_and_serialized() {
        // Long service windows (0.2 ms × 40 accesses = 8 ms of gated work
        // per thread) guarantee every thread is preempted mid-sequence
        // even on a single-core host, so threads genuinely interleave at
        // the gate instead of each finishing within one timeslice.
        let mem = SerializedMemory::new(8, 200_000);
        let threads = 4;
        let per_thread = 40u64;
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    barrier.wait();
                    for _ in 0..per_thread {
                        mem.access(7); // one cell: maximal conflict
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        assert_eq!(mem.acquisitions(), total);
        // With everyone behind one gate, most acquisitions queue. The
        // exact count is scheduling-dependent; on any host at least the
        // ticket handoffs after the very first acquisition of a busy
        // period show up, and zero would mean the gate isn't gating.
        assert!(
            mem.contended() > 0,
            "4 threads × 50 same-cell accesses produced no contention"
        );
    }

    #[test]
    fn distinct_stripes_do_not_contend_across_cells() {
        // Sequential accesses to many cells: contended stays 0 regardless
        // of striping because nothing is concurrent.
        let mem = SerializedMemory::new(4, 0);
        for cell in 0..1000u64 {
            mem.access(cell);
        }
        assert_eq!(mem.contended(), 0);
        assert_eq!(mem.acquisitions(), 1000);
    }

    #[test]
    fn stripe_count_is_clamped() {
        let mem = SerializedMemory::new(0, 0);
        assert_eq!(mem.stripes(), 1);
        mem.access(42);
        assert_eq!(mem.acquisitions(), 1);
    }
}

//! Raw-speed sweep of the batch planner's probe-kernel matrix (the
//! `probe_kernels` section of `BENCH_serve.json`, experiment F17).
//!
//! Times the four kernel configurations — scalar reference, prefetch
//! only, SIMD hashing only, combined — over the same dictionary and probe
//! stream at several batch sizes, plus the pre-plan per-key scalar
//! serving path (`CellProbeDict::contains` one key at a time, re-reading
//! the parameter rows per query) as the end-to-end baseline, with plain
//! `std::time` wall clocks so the sweep runs anywhere (the criterion
//! twin in `benches/probe_kernels.rs` adds confidence intervals when a
//! registry is available). Every timed pass is also an equivalence
//! check: answers from each configuration are asserted bit-identical to
//! the scalar reference before its numbers are reported.
//!
//! Two speedups come out: `combined vs scalar` isolates what prefetch +
//! SIMD hashing buy *within* the batch plan, and `combined vs per-key`
//! is the whole probe-kernel story — SoA plan, prefetch, and vector
//! hashing together against scalar per-key probing.

use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::rngutil::StreamRng;
use lcds_cellprobe::sink::NullSink;
use lcds_core::{BatchPlan, KernelConfig, LowContentionDict};
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::querygen::negative_pool;
use lcds_workloads::rng::seeded;
use serde_json::{json, Value};

/// Sweep parameters. `Default` matches the committed artifact: 200k keys
/// (bulk-serving scale — the parameter rows no longer hide the per-key
/// path's re-reads in cache), batch sizes spanning the cache-resident to
/// streaming regimes.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Dictionary size (probes are `2n`: members interleaved with misses).
    pub n: usize,
    /// Timed passes per (config, batch) cell; the median-free mean over
    /// all passes is reported (one untimed warmup pass precedes them).
    pub iters: usize,
    /// Batch sizes to sweep.
    pub batches: Vec<usize>,
    /// Build/probe seed.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            n: 200_000,
            iters: 5,
            batches: vec![64, 1024, 16384],
            seed: 0xF17,
        }
    }
}

/// One (kernel config, batch size) measurement.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel path name ([`KernelConfig::name`]).
    pub config: String,
    /// Keys per planned batch.
    pub batch: usize,
    /// Mean wall-clock nanoseconds per key over the timed passes.
    pub ns_per_key: f64,
    /// The same measurement as throughput (million keys per second).
    pub mkeys_per_s: f64,
}

/// A finished sweep, ready for [`probe_kernels_json`].
#[derive(Clone, Debug)]
pub struct KernelSweep {
    /// Config the sweep ran with.
    pub config: SweepConfig,
    /// What [`KernelConfig::auto`] picks on this host (named in the run
    /// header and the artifact, so every number says which path made it).
    pub host_kernels: String,
    /// Detected vector ISA, `"none"` on fallback hosts.
    pub simd_isa: String,
    /// One row per (kernel config, batch size), plus the per-key scalar
    /// serving-path row (config `"perkey-scalar"`, batch 1).
    pub rows: Vec<KernelRow>,
    /// Combined prefetch+SIMD vs the *planned* scalar reference at the
    /// largest batch — what the kernel knobs alone buy. On fallback
    /// hosts both paths degrade to the same code and this records the
    /// measured ≈1× honestly.
    pub speedup_combined_vs_scalar: f64,
    /// Combined prefetch+SIMD plan vs scalar per-key probing — the full
    /// probe-kernel gain (SoA plan amortization included).
    pub speedup_combined_vs_perkey: f64,
}

/// The kernel matrix: scalar reference first (it is the bit-identity
/// baseline and the speedup denominator), combined last.
fn matrix() -> [KernelConfig; 4] {
    let lanes = KernelConfig::scalar().lanes;
    [
        KernelConfig::scalar(),
        KernelConfig {
            simd_hash: false,
            prefetch: true,
            lanes,
        },
        KernelConfig {
            simd_hash: true,
            prefetch: false,
            lanes,
        },
        KernelConfig {
            simd_hash: true,
            prefetch: true,
            lanes,
        },
    ]
}

fn run_once(
    dict: &LowContentionDict,
    plan: &mut BatchPlan,
    probes: &[u64],
    batch: usize,
    out: &mut Vec<bool>,
) {
    out.clear();
    for (c, chunk) in probes.chunks(batch).enumerate() {
        plan.run(dict, chunk, (c * batch) as u64, 7, &mut NullSink, out);
    }
}

/// Runs the full sweep: every kernel configuration at every batch size,
/// all answers asserted bit-identical to the scalar reference.
///
/// # Panics
/// Panics if `iters`, `n`, or `batches` is zero/empty, if the dictionary
/// build fails, or if any configuration disagrees with the scalar
/// reference (that would be a kernel bug — never report its numbers).
pub fn run_sweep(config: SweepConfig) -> KernelSweep {
    assert!(config.n > 0 && config.iters > 0 && !config.batches.is_empty());
    let keys = uniform_keys(config.n, config.seed);
    let dict = lcds_core::builder::build(&keys, &mut seeded(config.seed ^ 0xD1C7)).expect("build");
    let negs = negative_pool(&keys, config.n, config.seed ^ 0x9E6);
    let probes: Vec<u64> = keys.iter().zip(&negs).flat_map(|(&k, &m)| [k, m]).collect();

    // Scalar reference answers, per batch size (chunking is answer-
    // invariant, but compare like against like anyway).
    let mut reference: Vec<Vec<bool>> = Vec::new();
    for &batch in &config.batches {
        let mut out = Vec::with_capacity(probes.len());
        run_once(
            &dict,
            &mut BatchPlan::with_kernels(KernelConfig::scalar()),
            &probes,
            batch,
            &mut out,
        );
        reference.push(out);
    }

    // The pre-plan baseline: one key at a time through the trait path,
    // parameter rows re-read per query. Same stream indices as the
    // planned runs, so its answers are pinned bit-identical too.
    let perkey_pass = |out: &mut Vec<bool>| {
        out.clear();
        for (i, &x) in probes.iter().enumerate() {
            let mut rng = StreamRng::for_stream(7, i as u64);
            out.push(dict.contains(x, &mut rng, &mut NullSink));
        }
    };
    let mut perkey_out = Vec::with_capacity(probes.len());
    perkey_pass(&mut perkey_out);
    assert_eq!(perkey_out, reference[0], "per-key path diverged from plan");
    let perkey_start = std::time::Instant::now();
    for _ in 0..config.iters {
        perkey_pass(&mut perkey_out);
    }
    let perkey_total = perkey_start.elapsed().as_nanos() as f64;
    let perkey_ns = (perkey_total / (config.iters * probes.len()) as f64).max(f64::MIN_POSITIVE);

    let mut rows = vec![KernelRow {
        config: "perkey-scalar".to_string(),
        batch: 1,
        ns_per_key: perkey_ns,
        mkeys_per_s: 1e3 / perkey_ns,
    }];
    let mut cell_ns = std::collections::HashMap::new();
    for cfg in matrix() {
        let mut plan = BatchPlan::with_kernels(cfg);
        for (bi, &batch) in config.batches.iter().enumerate() {
            let mut out = Vec::with_capacity(probes.len());
            // Warmup pass doubles as the equivalence check.
            run_once(&dict, &mut plan, &probes, batch, &mut out);
            assert_eq!(
                out,
                reference[bi],
                "kernel {} diverged from scalar at batch {batch}",
                cfg.name()
            );
            let start = std::time::Instant::now();
            for _ in 0..config.iters {
                run_once(&dict, &mut plan, &probes, batch, &mut out);
            }
            let total = start.elapsed().as_nanos() as f64;
            let keys_done = (config.iters * probes.len()) as f64;
            let ns_per_key = (total / keys_done).max(f64::MIN_POSITIVE);
            cell_ns.insert((cfg.name(), batch), ns_per_key);
            rows.push(KernelRow {
                config: cfg.name(),
                batch,
                ns_per_key,
                mkeys_per_s: 1e3 / ns_per_key,
            });
        }
    }

    let biggest = *config.batches.iter().max().expect("non-empty batches");
    let scalar = cell_ns[&(KernelConfig::scalar().name(), biggest)];
    let combined = cell_ns[&(matrix()[3].name(), biggest)];
    KernelSweep {
        host_kernels: KernelConfig::auto().name(),
        simd_isa: lcds_hashing::poly::simd_isa().unwrap_or("none").to_string(),
        rows,
        speedup_combined_vs_scalar: scalar / combined,
        speedup_combined_vs_perkey: perkey_ns / combined,
        config,
    }
}

/// The `probe_kernels` JSON section for `BENCH_serve.json`, shaped for
/// [`crate::summary::validate_probe_kernels`].
pub fn probe_kernels_json(sweep: &KernelSweep) -> Value {
    json!({
        "n": sweep.config.n,
        "seed": sweep.config.seed,
        "iters": sweep.config.iters,
        "host_kernels": sweep.host_kernels.clone(),
        "simd_isa": sweep.simd_isa.clone(),
        "rows": sweep.rows.iter().map(|r| json!({
            "config": r.config.clone(),
            "batch": r.batch,
            "ns_per_key": r.ns_per_key,
            "mkeys_per_s": r.mkeys_per_s,
        })).collect::<Vec<_>>(),
        "speedup_combined_vs_scalar": sweep.speedup_combined_vs_scalar,
        "speedup_combined_vs_perkey": sweep.speedup_combined_vs_perkey,
    })
}

/// Fixed-width terminal table: one line per (config, batch) cell.
pub fn render_table(sweep: &KernelSweep) -> String {
    let mut out = format!(
        "probe-kernels: n = {}, iters = {}, host kernels {}, simd isa {}\n\
         {:<24} {:>7}  {:>10} {:>12}\n",
        sweep.config.n,
        sweep.config.iters,
        sweep.host_kernels,
        sweep.simd_isa,
        "config",
        "batch",
        "ns/key",
        "Mkeys/s",
    );
    for r in &sweep.rows {
        out.push_str(&format!(
            "{:<24} {:>7}  {:>10.2} {:>12.2}\n",
            r.config, r.batch, r.ns_per_key, r.mkeys_per_s,
        ));
    }
    out.push_str(&format!(
        "combined vs scalar plan at batch {}: {:.2}x\n",
        sweep.config.batches.iter().max().unwrap(),
        sweep.speedup_combined_vs_scalar,
    ));
    out.push_str(&format!(
        "combined vs per-key scalar path: {:.2}x\n",
        sweep.speedup_combined_vs_perkey,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KernelSweep {
        run_sweep(SweepConfig {
            n: 400,
            iters: 1,
            batches: vec![32, 128],
            seed: 0xF17,
        })
    }

    #[test]
    fn sweep_section_validates_and_names_the_paths() {
        let sweep = tiny();
        let section = probe_kernels_json(&sweep);
        crate::summary::validate_probe_kernels(&section).expect("self-describing schema");
        assert_eq!(
            sweep.rows.len(),
            1 + 4 * 2,
            "per-key baseline + 4 configs x 2 batch sizes"
        );
        assert_eq!(sweep.rows[0].config, "perkey-scalar");
        assert!(sweep.rows[1].config.starts_with("scalar+none"));
        // Feature off, the whole matrix degrades to the portable paths
        // and the measured ratios stay recorded — never fabricated.
        assert!(sweep.speedup_combined_vs_scalar > 0.0);
        assert!(sweep.speedup_combined_vs_perkey > 0.0);
        assert!(!sweep.host_kernels.is_empty());
    }

    #[test]
    fn table_prints_every_cell() {
        let sweep = tiny();
        let table = render_table(&sweep);
        assert_eq!(table.lines().count(), 2 + sweep.rows.len() + 2);
        assert!(table.contains("ns/key"));
        assert!(table.contains("combined vs scalar plan"));
        assert!(table.contains("combined vs per-key scalar path"));
    }
}

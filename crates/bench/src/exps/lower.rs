//! Lower-bound experiments: F5 (the `Ω(log log n)` curve), T7 (Lemma 19/21
//! simulations), T8 (Lemmas 15/16 mechanics), T9 (VC-dimension).

use lcds_cellprobe::report::{sig4, TextTable};
use lcds_lowerbound::lemmas::{
    column_max_sum, lemma15_adversary, lemma16_holds, lemma16_lp_bound, lemma16_r_size,
    violates_all_rows,
};
use lcds_lowerbound::productspace::{coupled_sample, simulate_probe, union_bound};
use lcds_lowerbound::recursion::tstar_series;
use lcds_lowerbound::vcdim::ProblemTable;
use lcds_workloads::rng::seeded;
use rand::Rng;
use serde_json::json;
use std::collections::HashSet;

use super::ExpOutput;

/// **F5** — Theorem 13 numerically: the minimal feasible probe count `t*`
/// versus `log₂ log₂ n`, for balanced schemes with `b = 64` bits/cell and
/// contention budget `φ*·s = 16`.
pub fn f5(_quick: bool) -> ExpOutput {
    let log2_ns: Vec<f64> = vec![
        8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    ];
    let series = tstar_series(&log2_ns, 64.0, 16.0);
    let mut table = TextTable::new(
        "F5 — Theorem 13: minimal feasible t* vs log₂ log₂ n (b = 64, φ*·s = 16)",
        &["log₂ n", "min t*", "log₂ log₂ n", "t* − log₂log₂n"],
    );
    let mut csv = String::from("log2_n,t_star,log2_log2_n\n");
    let mut rows = Vec::new();
    for (ln, t, ll) in &series {
        table.row(vec![
            ln.to_string(),
            t.to_string(),
            sig4(*ll),
            sig4(*t as f64 - ll),
        ]);
        csv.push_str(&format!("{ln},{t},{ll}\n"));
        rows.push(json!({ "log2_n": ln, "t_star": t, "log2_log2_n": ll }));
    }
    ExpOutput {
        id: "f5",
        tables: vec![table],
        series: vec![("f5_tstar.csv".into(), csv)],
        json: json!({ "b": 64, "phi_s": 16, "rows": rows }),
    }
}

/// **T7** — Appendix A simulations: Lemma 19 per-step success ≥ ¼ with
/// exact conditional marginals, and Lemma 21 coupling keeping the expected
/// distinct-cell count at `Σ_j max_i` (vs the larger independent union).
pub fn t7(quick: bool) -> ExpOutput {
    let trials = if quick { 20_000 } else { 200_000 };
    let mut rng = seeded(0x7700);

    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("uniform-8", vec![0.125; 8]),
        ("heavy-0.7", vec![0.7, 0.1, 0.1, 0.1]),
        ("point-mass", vec![1.0, 0.0, 0.0]),
        ("two-heavy", vec![0.5, 0.5]),
        ("skewed-16", {
            let raw: Vec<f64> = (1..=16).map(|i| 1.0 / i as f64).collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / s).collect()
        }),
    ];

    let mut table = TextTable::new(
        "T7 — Lemma 19 product-space simulation (success ≥ 1/4; conditional = p)",
        &["case", "success rate", "max marginal error"],
    );
    let mut rows = Vec::new();
    for (name, p) in &cases {
        let mut successes = 0u64;
        let mut counts = vec![0u64; p.len()];
        for _ in 0..trials {
            if let Some(i) = simulate_probe(p, &mut rng) {
                successes += 1;
                counts[i] += 1;
            }
        }
        let rate = successes as f64 / trials as f64;
        let max_err = counts
            .iter()
            .zip(p)
            .map(|(&c, &pi)| (c as f64 / successes.max(1) as f64 - pi).abs())
            .fold(0.0, f64::max);
        assert!(rate >= 0.25 - 0.02, "{name}: success rate {rate} < 1/4");
        table.row(vec![name.to_string(), sig4(rate), sig4(max_err)]);
        rows.push(json!({ "case": name, "success": rate, "max_marginal_err": max_err }));
    }

    // Lemma 21: coupled vs independent expected union size.
    let probs = vec![
        vec![0.5, 0.5, 0.0, 0.0],
        vec![0.5, 0.0, 0.5, 0.0],
        vec![0.0, 0.5, 0.5, 0.0],
        vec![0.25, 0.25, 0.25, 0.25],
    ];
    let bound = union_bound(&probs);
    let mut coupled_total = 0u64;
    let mut independent_total = 0u64;
    let sub_trials = trials / 4;
    for _ in 0..sub_trials {
        let ls = coupled_sample(&probs, &mut rng);
        let union: HashSet<usize> = ls.into_iter().flatten().collect();
        coupled_total += union.len() as u64;
        let mut ind = HashSet::new();
        for p in &probs {
            for (j, &pj) in p.iter().enumerate() {
                if pj > 0.0 && rng.random::<f64>() < pj {
                    ind.insert(j);
                }
            }
        }
        independent_total += ind.len() as u64;
    }
    let coupled_mean = coupled_total as f64 / sub_trials as f64;
    let independent_mean = independent_total as f64 / sub_trials as f64;
    let mut table2 = TextTable::new(
        "T7b — Lemma 21 coupling: expected distinct probed cells",
        &["bound Σ_j max_i", "coupled E|∪L_i|", "independent E|∪J_i|"],
    );
    table2.row(vec![
        sig4(bound),
        sig4(coupled_mean),
        sig4(independent_mean),
    ]);

    ExpOutput {
        id: "t7",
        tables: vec![table, table2],
        series: vec![],
        json: json!({
            "trials": trials,
            "lemma19": rows,
            "lemma21": { "bound": bound, "coupled": coupled_mean, "independent": independent_mean },
        }),
    }
}

/// **T8** — Lemmas 15/16 on random instances: the corrected Lemma 16 bound
/// always holds (and the paper's literal form occasionally misses by < 1 —
/// the off-by-one documented in `lcds-lowerbound`), and the Lemma 15
/// adversary always finds a violating `q` on well-conditioned instances.
pub fn t8(quick: bool) -> ExpOutput {
    let matrices = if quick { 100 } else { 1000 };
    let mut rng = seeded(0x8800);

    let mut literal_failures = 0u32;
    let mut corrected_failures = 0u32;
    let mut lp_slack_sum = 0.0;
    for _ in 0..matrices {
        let n = rng.random_range(2..10usize);
        let s = rng.random_range(4..12usize);
        let p: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let raw: Vec<f64> = (0..s).map(|_| rng.random::<f64>()).collect();
                let total: f64 = raw.iter().sum();
                raw.into_iter().map(|v| v / total).collect()
            })
            .collect();
        let lhs = column_max_sum(&p);
        let r = lemma16_r_size(&p) as f64;
        if lhs > r + 1e-9 {
            literal_failures += 1;
        }
        if !lemma16_holds(&p) {
            corrected_failures += 1;
        }
        lp_slack_sum += lemma16_lp_bound(&p) - lhs;
    }

    let adv_instances = if quick { 20 } else { 100 };
    let mut adv_success = 0u32;
    let mut adv_draws = 0u64;
    for inst in 0..adv_instances {
        let big_n = 16;
        let n = 48;
        let m: Vec<Vec<f64>> = (0..big_n)
            .map(|u| {
                (0..n)
                    .map(|i| {
                        if (i + u + inst as usize) % 5 == 0 {
                            0.4
                        } else {
                            1e-7
                        }
                    })
                    .collect()
            })
            .collect();
        if let Some(adv) = lemma15_adversary(&m, 0.5, 12, &mut rng, 500) {
            if violates_all_rows(&m, &adv.q) {
                adv_success += 1;
                adv_draws += adv.draws as u64;
            }
        }
    }

    // The decision-tree game (full Lemma 14 quantification): uniform and
    // greedy strategies against the Theorem 13 adversary.
    use lcds_lowerbound::tree::{play_tree, GreedyTree, UniformTree};
    let (gn, gs_, gb) = (256usize, 256usize, 8.0);
    let gphi = 1.0 / gs_ as f64;
    let mut grng = seeded(0x8811);
    let uni = play_tree(
        gn,
        gs_,
        gb,
        gphi,
        3,
        &UniformTree::new(gn, gs_, 2),
        &mut grng,
    );
    let greedy = play_tree(
        gn,
        gs_,
        gb,
        gphi,
        3,
        &GreedyTree::new(gn, gs_, 2, gphi),
        &mut grng,
    );

    let mut table = TextTable::new(
        "T8 — Lemma 16 (corrected) and Lemma 15 (adversary) mechanics",
        &["check", "value"],
    );
    table.row(vec![
        format!("Lemma 16 corrected (≤ |R|+1) failures / {matrices}"),
        corrected_failures.to_string(),
    ]);
    table.row(vec![
        format!("Lemma 16 literal (≤ |R|) failures / {matrices} (paper off-by-one)"),
        literal_failures.to_string(),
    ]);
    table.row(vec![
        "mean LP-bound slack (LP − Σ_j max_i)".into(),
        sig4(lp_slack_sum / matrices as f64),
    ]);
    table.row(vec![
        format!("Lemma 15 adversary successes / {adv_instances}"),
        adv_success.to_string(),
    ]);
    table.row(vec![
        "mean hitting-set draws".into(),
        sig4(adv_draws as f64 / adv_success.max(1) as f64),
    ]);
    table.row(vec![
        format!("tree game (n={gn}, t*=3): uniform strategy bits / needed"),
        format!("{} / {}", sig4(uni.total_bits), sig4(uni.needed_bits)),
    ]);
    table.row(vec![
        "tree game: greedy strategy bits (vs n·b·t* dream)".into(),
        format!(
            "{} / {}",
            sig4(greedy.total_bits),
            sig4(gn as f64 * gb * 3.0)
        ),
    ]);
    table.row(vec![
        "tree game: greedy nodes pruned by the adversary".into(),
        greedy.pruned_per_level.iter().sum::<usize>().to_string(),
    ]);

    ExpOutput {
        id: "t8",
        tables: vec![table],
        series: vec![],
        json: json!({
            "matrices": matrices,
            "lemma16_corrected_failures": corrected_failures,
            "lemma16_literal_failures": literal_failures,
            "lemma15_successes": adv_success,
            "lemma15_instances": adv_instances,
            "tree_uniform_bits": uni.total_bits,
            "tree_uniform_needed": uni.needed_bits,
            "tree_greedy_bits": greedy.total_bits,
            "tree_greedy_pruned": greedy.pruned_per_level.iter().sum::<usize>(),
        }),
    }
}

/// **T9** — VC-dimension of the membership problem: brute force confirms
/// `VC-dim = n` on small instances (the hypothesis of Theorem 13 for the
/// membership corollary).
pub fn t9(quick: bool) -> ExpOutput {
    let cases: Vec<(usize, usize)> = if quick {
        vec![(4, 1), (5, 2), (6, 3)]
    } else {
        vec![(4, 1), (5, 2), (6, 2), (6, 3), (7, 3), (8, 4), (9, 4)]
    };
    let mut table = TextTable::new(
        "T9 — VC-dimension of membership([N], n) by brute force",
        &["N", "n", "computed VC-dim", "expected"],
    );
    let mut rows = Vec::new();
    for &(universe, n) in &cases {
        let vc = ProblemTable::membership(universe, n).vc_dimension();
        assert_eq!(vc, n, "membership({universe},{n})");
        table.row(vec![
            universe.to_string(),
            n.to_string(),
            vc.to_string(),
            n.to_string(),
        ]);
        rows.push(json!({ "N": universe, "n": n, "vc": vc }));
    }
    ExpOutput {
        id: "t9",
        tables: vec![table],
        series: vec![],
        json: json!({ "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f5_tracks_loglog() {
        let out = f5(true);
        let rows = out.json["rows"].as_array().unwrap();
        let mut prev = 0u64;
        for row in rows {
            let t = row["t_star"].as_u64().unwrap();
            let ll = row["log2_log2_n"].as_f64().unwrap();
            assert!(t >= prev, "t* must be monotone");
            assert!((t as f64 - ll).abs() <= 5.0, "t* {t} vs log2log2n {ll}");
            prev = t;
        }
    }

    #[test]
    fn t7_passes_internal_assertions() {
        let out = t7(true);
        let l21 = &out.json["lemma21"];
        assert!(l21["coupled"].as_f64().unwrap() <= l21["bound"].as_f64().unwrap() + 0.05);
        assert!(l21["independent"].as_f64().unwrap() > l21["coupled"].as_f64().unwrap());
    }

    #[test]
    fn t8_corrected_lemma_never_fails() {
        let out = t8(true);
        assert_eq!(out.json["lemma16_corrected_failures"], 0);
        assert_eq!(out.json["lemma15_successes"], out.json["lemma15_instances"]);
    }

    #[test]
    fn t9_matches_theory() {
        let out = t9(true);
        for row in out.json["rows"].as_array().unwrap() {
            assert_eq!(row["vc"], row["n"]);
        }
    }
}

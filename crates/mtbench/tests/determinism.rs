//! Determinism contract: the per-thread key streams — and therefore the
//! whole benchmark's traffic — are pure functions of `(seed, thread)`.
//! Same `--seed` and thread count ⇒ byte-identical key streams per
//! thread, independent of scheduling, batch size, or host.

use lcds_mtbench::{build_dict, keys_for_thread, run, KeyMix, MtConfig, Scheme};

#[test]
fn same_seed_same_thread_count_reproduces_every_key_stream() {
    for scheme in [Scheme::Lcd, Scheme::Fks, Scheme::FksAdversarial] {
        let (_, stored) = build_dict(scheme, 256, 42).expect("build");
        for mix in [KeyMix::Uniform, KeyMix::Zipf(1.0), KeyMix::Adversarial] {
            for thread in 0..4 {
                let a = keys_for_thread(&stored, mix, 42, thread, 500);
                let b = keys_for_thread(&stored, mix, 42, thread, 500);
                assert_eq!(
                    a,
                    b,
                    "{} thread {thread} replay diverged under {:?}",
                    scheme.label(),
                    mix
                );
            }
        }
    }
}

#[test]
fn distinct_threads_and_seeds_get_distinct_streams() {
    let (_, stored) = build_dict(Scheme::Lcd, 256, 42).expect("build");
    let t0 = keys_for_thread(&stored, KeyMix::Uniform, 42, 0, 500);
    let t1 = keys_for_thread(&stored, KeyMix::Uniform, 42, 1, 500);
    assert_ne!(t0, t1, "threads must draw from independent RNG lanes");
    let reseeded = keys_for_thread(&stored, KeyMix::Uniform, 43, 0, 500);
    assert_ne!(t0, reseeded, "the seed must actually steer the stream");
}

#[test]
fn stream_length_prefix_property() {
    // Extending ops only appends: the first k draws are unchanged, so a
    // `--quick` run replays a prefix of the full run's traffic.
    let (_, stored) = build_dict(Scheme::Fks, 128, 7).expect("build");
    let short = keys_for_thread(&stored, KeyMix::Zipf(1.0), 7, 2, 100);
    let long = keys_for_thread(&stored, KeyMix::Zipf(1.0), 7, 2, 400);
    assert_eq!(short[..], long[..100]);
}

#[test]
fn end_to_end_repeat_runs_agree_on_everything_deterministic() {
    let cfg = MtConfig {
        n: 128,
        threads: vec![1, 2],
        schemes: vec![Scheme::Lcd, Scheme::FksAdversarial],
        workloads: vec![KeyMix::Zipf(1.0)],
        ops_per_thread: 300,
        batch: 32,
        seed: 99,
        gate: None,
        window: None,
    };
    let a = run(&cfg).expect("first run");
    let b = run(&cfg).expect("second run");
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        // Timing-derived fields (qps, wall, efficiency) vary run to run;
        // everything derived from the key streams and probe paths must
        // not.
        assert_eq!(ra.scheme, rb.scheme);
        assert_eq!(ra.workload, rb.workload);
        assert_eq!(ra.threads, rb.threads);
        assert_eq!(ra.keys, rb.keys);
        assert_eq!(ra.hits, rb.hits);
        assert_eq!(ra.probes, rb.probes);
        assert_eq!(ra.phi_hat, rb.phi_hat, "merged Φ̂ must be replayable");
        assert_eq!(ra.ratio, rb.ratio);
        assert_eq!(ra.latency.count, rb.latency.count);
    }
}

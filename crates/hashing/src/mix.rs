//! The splitmix64 bit mixer, used to expand single-word seeds into streams
//! of pseudo-random words.
//!
//! The paper stores each bucket's perfect hash function in *one* cell so a
//! single probe retrieves it (§2.2). A Carter–Wegman pairwise function needs
//! two field coefficients — two words — so instead we store a one-word seed
//! and expand it deterministically with splitmix64 on both the construction
//! and the query side. Injectivity of the resulting function on each bucket
//! is *verified* during construction (and re-drawn on failure), so the
//! expansion affects only the expected number of seed trials, never
//! correctness.

/// One step of the splitmix64 sequence: mixes `state + GOLDEN * index`.
///
/// This is Steele–Lea–Flood's SplitMix64 finalizer, a bijection on `u64`
/// with full avalanche.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a seed into its `i`-th derived word.
#[inline]
pub fn derive(seed: u64, i: u64) -> u64 {
    splitmix64(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_eq!(derive(42, 3), derive(42, 3));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the canonical SplitMix64 implementation
        // seeded with 0: first output is 0xE220A8397B1DCDAF.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn derive_separates_indices() {
        let seed = 0xDEAD_BEEF;
        let a = derive(seed, 0);
        let b = derive(seed, 1);
        let c = derive(seed, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_separates_seeds() {
        assert_ne!(derive(1, 0), derive(2, 0));
    }

    #[test]
    fn splitmix_is_bijective_on_sample() {
        // A bijection cannot collide; check a decent sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }
}

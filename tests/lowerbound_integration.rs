//! Ties §2 to §3: the low-contention dictionary *is* an instance of the
//! balanced schemes the lower bound quantifies over (Definition 12), and
//! its parameters sit on the feasible side of Theorem 13's trade-off.

use lcds_lowerbound::game::check_probe_spec;
use lcds_lowerbound::recursion::{feasible, min_t_star};
use low_contention::prelude::*;

/// Turn the dictionary's per-step probe sets for a batch of queries into
/// the game's probe-specification matrices `P_t` and check constraints
/// (1)–(2) with `φ*` = its own exact max-step contention.
#[test]
fn dictionary_probe_specs_satisfy_definition_12() {
    let n = 64usize;
    let keys = uniform_keys(n, 0xD12);
    let mut rng = seeded(0xD13);
    let dict = build_dict(&keys, &mut rng).unwrap();
    let cells = dict.num_cells() as usize;
    let steps = dict.max_probes() as usize;

    // φ* from the exact profile, q = uniform over the n queries.
    let prof = exact_contention(&dict, &QueryPool::uniform(&keys));
    let phi_star = prof.max_step();
    let q = vec![1.0 / n as f64; n];

    // Build P_t: row i = query keys[i], uniform over its step-t probe set.
    let mut sets = Vec::new();
    let mut specs: Vec<Vec<Vec<f64>>> = vec![vec![vec![0.0; cells]; n]; steps];
    for (i, &x) in keys.iter().enumerate() {
        sets.clear();
        dict.probe_sets(x, &mut sets);
        for (t, set) in sets.iter().enumerate() {
            let share = 1.0 / set.count as f64;
            for cell in set.cells() {
                specs[t][i][cell as usize] = share;
            }
        }
    }

    for (t, p) in specs.iter().enumerate() {
        check_probe_spec(p, &q, phi_star + 1e-12)
            .unwrap_or_else(|e| panic!("step {t} violates Definition 12: {e}"));
    }
}

/// Theorem 13's trade-off, instantiated with the dictionary's own numbers:
/// its constant probe count is only possible because its contention budget
/// `φ*·s` is a constant — pushing `φ*` to the optimum `1/s` while keeping
/// `b = 64` would *still* be feasible at `t = O(1)` only for small `n`.
#[test]
fn dictionary_sits_on_the_feasible_side() {
    let n = 4096usize;
    let keys = uniform_keys(n, 0xD14);
    let mut rng = seeded(0xD15);
    let dict = build_dict(&keys, &mut rng).unwrap();
    let prof = exact_contention(&dict, &QueryPool::uniform(&keys));
    let phi_s = prof.max_step_ratio(); // ≈ 30, the constant

    // With its own (b, φ*·s), its own probe count t must be feasible.
    let t = dict.max_probes();
    assert!(
        feasible(t, (n as f64).log2(), 64.0, phi_s),
        "the dictionary's own parameters must satisfy the information bound"
    );
    // And the bound is not vacuous: t* ≥ 1 and grows for huge n.
    assert!(min_t_star(1024.0, 64.0, phi_s) >= 4);
}

/// The membership problem the dictionary solves has VC-dimension n — the
/// hypothesis under which Theorem 13 applies to it (checked at small n).
#[test]
fn membership_vc_dimension_hypothesis() {
    use lcds_lowerbound::vcdim::ProblemTable;
    for (universe, n) in [(6usize, 2usize), (7, 3)] {
        assert_eq!(ProblemTable::membership(universe, n).vc_dimension(), n);
    }
}

//! Offline stand-in for `serde`: the derive macros resolve and expand to
//! nothing, and no API in the overlay carries `Serialize`/`Deserialize`
//! bounds, so marker macros are all that is needed.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

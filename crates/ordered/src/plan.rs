//! [`OrdPlan`]: the batched SoA executor for the level descent.
//!
//! The membership batch plan (`lcds_core::plan::BatchPlan`) wins its
//! speed from three things the descent reuses directly: 64-byte-aligned
//! scratch columns ([`lcds_core::AlignedCol`]), software prefetch pipelined
//! across lanes ([`lcds_core::kernels::Prefetcher`]), and survivor
//! compaction to a dense prefix. A descent is *data-dependent* between
//! levels (the child block depends on the parent scan), so instead of
//! stage-per-row the plan runs **level-at-a-time across all lanes**: for
//! each level it first computes every lane's replica column (pure
//! arithmetic plus one `StreamRng` draw per lane — no memory traffic),
//! then sweeps the lanes' ≤ B-word block scans with the prefetcher
//! touching lines a fixed distance ahead. Lanes that miss at the root
//! (query below the minimum) are compacted out before lower levels, so
//! their streams consume exactly as much randomness as the sequential
//! path — the draw/probe schedule is *identical* per `(query, global
//! index, seed)` triple, which is what makes TCP answers bit-identical
//! to direct engine calls at any chunking.

use crate::dict::{OrdScheme, OrderedLcd, BRANCH, NO_PREDECESSOR};
use lcds_cellprobe::rngutil::{uniform_below, StreamRng};
use lcds_cellprobe::sink::{PlanStage, ProbeSink};
use lcds_core::kernels::{KernelConfig, Prefetcher};
use lcds_core::AlignedCol;
use std::cell::RefCell;

/// Per-slot descent outcome: `(found, leaf index, key)`.
type Descent = (bool, u64, u64);

/// Reusable scratch for batched descents. Cheap to create, cheaper to
/// reuse — workers hold one via [`with_ord_scratch`] and amortize every
/// allocation away.
#[derive(Clone, Debug, Default)]
pub struct OrdPlan {
    cfg: KernelConfig,
    /// Per-lane replica column of the current level (aligned: the sweep
    /// streams through it once per level).
    cols: AlignedCol,
    /// Per-lane child-block start index at the current level.
    lo: Vec<u64>,
    /// Per-lane child-block length at the current level (≤ B).
    blk: Vec<u32>,
    /// Lane → slot in the caller's output.
    slot: Vec<u32>,
    /// Per-slot query randomness, persisted across the (up to two)
    /// descents of one batch.
    rngs: Vec<StreamRng>,
    /// Per-slot descent results.
    res: Vec<Descent>,
}

impl OrdPlan {
    /// Creates a plan with the host-selected kernel configuration
    /// (honours `LCDS_FORCE_SCALAR` / `LCDS_KERNEL_LANES`).
    pub fn new() -> OrdPlan {
        OrdPlan {
            cfg: KernelConfig::auto(),
            ..OrdPlan::default()
        }
    }

    /// Seeds one `StreamRng` per slot: slot `i` gets stream
    /// `first_index + i`, the same addressing the sequential path uses.
    fn seed_rngs(&mut self, n: usize, first_index: u64, seed: u64) {
        self.rngs.clear();
        self.rngs
            .extend((0..n as u64).map(|i| StreamRng::for_stream(seed, first_index + i)));
    }

    /// One full descent for the active lanes. `queries[slot]` is the
    /// probe value; `active` lists the slots to walk (dense lanes).
    /// Results land in `self.res[slot]`; inactive slots are untouched.
    /// Returns the number of cell probes issued.
    fn descend(
        &mut self,
        d: &OrderedLcd,
        queries: &[u64],
        active: &[u32],
        sink: &mut dyn ProbeSink,
    ) -> u64 {
        let levels = d.level_sizes();
        let top = levels.len() - 1;
        let s = d.table().cols();
        let words = d.table().words();
        let adversarial = d.scheme() == OrdScheme::Adversarial;

        let mut probes = 0u64;
        let mut count = active.len();
        self.slot.clear();
        self.slot.extend_from_slice(active);
        self.lo.clear();
        self.lo.resize(count, 0);
        self.blk.clear();
        self.blk.resize(count, levels[top] as u32);

        for l in (0..=top).rev() {
            let n_l = levels[l];
            let replicas = s / n_l;
            let row_base = l as u64 * s;
            // Pass 1: replica draw + column arithmetic, no memory reads.
            self.cols.reset(count);
            let cols = self.cols.as_mut();
            for lane in 0..count {
                let k = if adversarial {
                    0
                } else {
                    uniform_below(&mut self.rngs[self.slot[lane] as usize], replicas)
                };
                cols[lane] = row_base + self.lo[lane] + k * n_l;
            }
            // Pass 2: block scans, prefetched a fixed lane distance ahead.
            sink.stage(if l == 0 {
                PlanStage::Data
            } else {
                PlanStage::Header
            });
            let cols = self.cols.as_slice();
            let ahead = self.cfg.lanes.max(1) * 2;
            let mut pf = Prefetcher::new(words, self.cfg);
            for a in 0..ahead.min(count) {
                pf.touch(cols[a] as usize);
            }
            let mut write = 0usize;
            for lane in 0..count {
                if lane + ahead < count {
                    pf.touch(cols[lane + ahead] as usize);
                }
                let q = queries[self.slot[lane] as usize];
                let base = cols[lane];
                let m = self.blk[lane] as u64;
                let mut j = 0u64;
                let mut pred = 0u64;
                probes += m;
                for t in 0..m {
                    sink.probe(base + t);
                    let w = words[(base + t) as usize];
                    if w <= q {
                        j = t + 1;
                        pred = w;
                    }
                }
                if j == 0 {
                    // Root miss: q below the minimum. Record and compact
                    // the lane out (its stream drew exactly one replica,
                    // like the sequential early return).
                    debug_assert_eq!(l, top);
                    self.res[self.slot[lane] as usize] = (false, 0, 0);
                    continue;
                }
                let e = self.lo[lane] + j - 1;
                if l == 0 {
                    self.res[self.slot[lane] as usize] = (true, e, pred);
                } else {
                    let lo = e * BRANCH as u64;
                    self.lo[write] = lo;
                    self.blk[write] = (levels[l - 1] - lo).min(BRANCH as u64) as u32;
                    self.slot[write] = self.slot[lane];
                    write += 1;
                }
            }
            pf.finish();
            if l == 0 {
                break;
            }
            count = write;
            if count == 0 {
                break;
            }
        }
        probes
    }

    /// Runs one descent per query and hands per-slot outcomes to `emit`.
    fn run_single<F: FnMut(usize, Descent)>(
        &mut self,
        d: &OrderedLcd,
        queries: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        mut emit: F,
    ) {
        self.seed_rngs(queries.len(), first_index, seed);
        self.res.clear();
        self.res.resize(queries.len(), (false, 0, 0));
        for _ in 0..queries.len() {
            sink.begin_query();
        }
        let active: Vec<u32> = (0..queries.len() as u32).collect();
        let probes = self.descend(d, queries, &active, sink);
        record_batch(queries.len(), probes);
        for (i, &r) in self.res.iter().enumerate() {
            emit(i, r);
        }
    }

    /// Batched predecessor: appends the largest key `≤ queries[i]`, or
    /// [`NO_PREDECESSOR`], for each query.
    pub fn run_predecessor(
        &mut self,
        d: &OrderedLcd,
        queries: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<u64>,
    ) {
        out.reserve(queries.len());
        self.run_single(d, queries, first_index, seed, sink, |_, (found, _, key)| {
            out.push(if found { key } else { NO_PREDECESSOR })
        });
    }

    /// Batched strict rank: appends `#{k < queries[i]}` per query.
    pub fn run_rank(
        &mut self,
        d: &OrderedLcd,
        queries: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<u64>,
    ) {
        out.reserve(queries.len());
        self.run_single(d, queries, first_index, seed, sink, |i, (found, e, key)| {
            out.push(match (found, key == queries[i]) {
                (false, _) => 0,
                (true, true) => e,
                (true, false) => e + 1,
            })
        });
    }

    /// Batched inclusive rank: appends `#{k ≤ queries[i]}` per query.
    pub fn run_count_le(
        &mut self,
        d: &OrderedLcd,
        queries: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<u64>,
    ) {
        out.reserve(queries.len());
        self.run_single(d, queries, first_index, seed, sink, |_, (found, e, _)| {
            out.push(if found { e + 1 } else { 0 })
        });
    }

    /// Batched membership via the descent (exact-hit predecessor).
    pub fn run_contains(
        &mut self,
        d: &OrderedLcd,
        queries: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        out.reserve(queries.len());
        self.run_single(d, queries, first_index, seed, sink, |i, (found, _, key)| {
            out.push(found && key == queries[i])
        });
    }

    /// Batched range count: appends `#{lo ≤ k ≤ hi}` per `(lo, hi)` pair.
    ///
    /// Per slot the `lo` descent runs before the `hi` descent on the same
    /// stream, and inverted ranges consume no randomness — exactly the
    /// sequential `range_count` schedule, so any chunking of a pair array
    /// yields bit-identical counts.
    pub fn run_range_count(
        &mut self,
        d: &OrderedLcd,
        ranges: &[(u64, u64)],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<u64>,
    ) {
        self.seed_rngs(ranges.len(), first_index, seed);
        self.res.clear();
        self.res.resize(ranges.len(), (false, 0, 0));
        for _ in 0..ranges.len() {
            sink.begin_query();
        }
        let active: Vec<u32> = (0..ranges.len())
            .filter(|&i| ranges[i].0 <= ranges[i].1)
            .map(|i| i as u32)
            .collect();

        let los: Vec<u64> = ranges.iter().map(|&(lo, _)| lo).collect();
        let mut probes = self.descend(d, &los, &active, sink);
        let below: Vec<u64> = self
            .res
            .iter()
            .enumerate()
            .map(|(i, &(found, e, key))| match (found, key == los[i]) {
                (false, _) => 0,
                (true, true) => e,
                (true, false) => e + 1,
            })
            .collect();

        let his: Vec<u64> = ranges.iter().map(|&(_, hi)| hi).collect();
        self.res.fill((false, 0, 0));
        probes += self.descend(d, &his, &active, sink);
        record_batch(ranges.len(), probes);

        out.reserve(ranges.len());
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            if lo > hi {
                out.push(0);
                continue;
            }
            let le = match self.res[i] {
                (false, ..) => 0,
                (true, e, _) => e + 1,
            };
            out.push(le - below[i]);
        }
    }
}

/// Batch-level telemetry (gated like everything else).
fn record_batch(queries: usize, probes: u64) {
    if lcds_obs::enabled() {
        let reg = lcds_obs::global();
        reg.counter(lcds_obs::names::ORD_QUERIES_TOTAL)
            .add(queries as u64);
        reg.counter(lcds_obs::names::ORD_PROBES_TOTAL).add(probes);
    }
}

thread_local! {
    static ORD_SCRATCH: RefCell<OrdPlan> = RefCell::new(OrdPlan::new());
}

/// Runs `work` with this thread's reusable [`OrdPlan`] — the per-worker
/// scratch discipline the serving engine uses (mirrors
/// `lcds_core::plan::with_thread_scratch`).
pub fn with_ord_scratch<R>(work: impl FnOnce(&mut OrdPlan) -> R) -> R {
    ORD_SCRATCH.with(|cell| work(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::{build_seeded, oracle};
    use lcds_cellprobe::dict::CellProbeDict;
    use lcds_cellprobe::sink::{CountingSink, NullSink};

    fn dict(n: u64, scheme: OrdScheme) -> OrderedLcd {
        build_seeded(&(0..n).map(|i| 5 * i + 2).collect::<Vec<_>>(), scheme).unwrap()
    }

    #[test]
    fn batch_matches_sequential_per_query() {
        for scheme in [OrdScheme::Replicated, OrdScheme::Adversarial] {
            let d = dict(777, scheme);
            let queries: Vec<u64> = (0..2000u64).map(|i| i * 3).collect();
            let (seed, first) = (0xFEED, 40u64);
            let mut plan = OrdPlan::new();
            let (mut pred, mut rank, mut le) = (Vec::new(), Vec::new(), Vec::new());
            plan.run_predecessor(&d, &queries, first, seed, &mut NullSink, &mut pred);
            plan.run_rank(&d, &queries, first, seed, &mut NullSink, &mut rank);
            plan.run_count_le(&d, &queries, first, seed, &mut NullSink, &mut le);
            for (i, &q) in queries.iter().enumerate() {
                let mut rng = StreamRng::for_stream(seed, first + i as u64);
                assert_eq!(
                    pred[i],
                    d.predecessor(q, &mut rng, &mut NullSink)
                        .unwrap_or(NO_PREDECESSOR),
                    "pred q={q} {scheme:?}"
                );
                let mut rng = StreamRng::for_stream(seed, first + i as u64);
                assert_eq!(rank[i], d.rank(q, &mut rng, &mut NullSink), "rank q={q}");
                let mut rng = StreamRng::for_stream(seed, first + i as u64);
                assert_eq!(le[i], d.count_le(q, &mut rng, &mut NullSink));
            }
        }
    }

    #[test]
    fn batch_probes_match_sequential_probes() {
        // Same cells, same multiplicities — only the order differs, so a
        // counting sink sees identical totals per cell.
        let d = dict(400, OrdScheme::Replicated);
        let queries: Vec<u64> = (0..900u64).map(|i| i * 2 + 1).collect();
        let (seed, first) = (7u64, 0u64);
        let mut batch_sink = CountingSink::new(d.num_cells());
        with_ord_scratch(|plan| {
            plan.run_rank(&d, &queries, first, seed, &mut batch_sink, &mut Vec::new())
        });
        let mut seq_sink = CountingSink::new(d.num_cells());
        for (i, &q) in queries.iter().enumerate() {
            let mut rng = StreamRng::for_stream(seed, first + i as u64);
            let _ = d.rank(q, &mut rng, &mut seq_sink);
        }
        assert_eq!(batch_sink.counts(), seq_sink.counts());
    }

    #[test]
    fn chunking_never_changes_answers() {
        let d = dict(513, OrdScheme::Replicated);
        let queries: Vec<u64> = (0..1000u64).map(|i| i * 7).collect();
        let seed = 0xC0FFEE;
        let mut whole = Vec::new();
        with_ord_scratch(|p| p.run_predecessor(&d, &queries, 0, seed, &mut NullSink, &mut whole));
        for chunk in [1usize, 3, 64, 65, 999] {
            let mut pieced = Vec::new();
            for (c, part) in queries.chunks(chunk).enumerate() {
                with_ord_scratch(|p| {
                    p.run_predecessor(
                        &d,
                        part,
                        (c * chunk) as u64,
                        seed,
                        &mut NullSink,
                        &mut pieced,
                    )
                });
            }
            assert_eq!(pieced, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn range_batch_matches_sequential_and_oracle() {
        let d = dict(300, OrdScheme::Replicated);
        let keys = d.keys();
        let ranges: Vec<(u64, u64)> = (0..500u64)
            .map(|i| {
                let lo = (i * 11) % 1600;
                let hi = if i % 5 == 0 {
                    lo.wrapping_sub(9)
                } else {
                    lo + (i % 40) * 3
                };
                (lo, hi)
            })
            .collect();
        let (seed, first) = (99u64, 17u64);
        let mut got = Vec::new();
        with_ord_scratch(|p| p.run_range_count(&d, &ranges, first, seed, &mut NullSink, &mut got));
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            assert_eq!(
                got[i],
                oracle::range_count(&keys, lo, hi),
                "range {lo}..{hi}"
            );
            let mut rng = StreamRng::for_stream(seed, first + i as u64);
            assert_eq!(got[i], d.range_count(lo, hi, &mut rng, &mut NullSink));
        }
        // Chunked pair arrays agree too.
        for chunk in [1usize, 7, 128] {
            let mut pieced = Vec::new();
            for (c, part) in ranges.chunks(chunk).enumerate() {
                with_ord_scratch(|p| {
                    p.run_range_count(
                        &d,
                        part,
                        first + (c * chunk) as u64,
                        seed,
                        &mut NullSink,
                        &mut pieced,
                    )
                });
            }
            assert_eq!(pieced, got, "chunk {chunk}");
        }
    }

    #[test]
    fn below_min_queries_compact_out_and_still_answer() {
        let d = build_seeded(&[100, 200, 300], OrdScheme::Replicated).unwrap();
        let queries = vec![0u64, 99, 100, 150, 301];
        let mut pred = Vec::new();
        with_ord_scratch(|p| p.run_predecessor(&d, &queries, 0, 1, &mut NullSink, &mut pred));
        assert_eq!(pred, vec![NO_PREDECESSOR, NO_PREDECESSOR, 100, 100, 300]);
        let mut rank = Vec::new();
        with_ord_scratch(|p| p.run_rank(&d, &queries, 0, 1, &mut NullSink, &mut rank));
        assert_eq!(rank, vec![0, 0, 0, 1, 3]);
    }
}

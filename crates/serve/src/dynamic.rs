//! Generation-swapped serving for the dynamic dictionary.
//!
//! [`DynamicEngine`] is the mutable counterpart of [`Engine`](crate::Engine):
//! the same batched, position-addressed read path, plus `insert` / `remove`
//! / `flush` mutations. The concurrency design is RCU-shaped:
//!
//! * **One writer at a time** (a `Mutex<DynamicLcd>`) applies a mutation to
//!   the authoritative structure, then *publishes* an immutable
//!   [`Generation`] — an [`FrozenDynamic`] snapshot (`Arc`-shared main
//!   table, copied delta) behind an `Arc`.
//! * **Readers never block on the writer.** A read clones the published
//!   `Arc` and probes that frozen generation for the whole call, so its
//!   answers are internally consistent (no torn table) even while the
//!   writer rebuilds and swaps underneath it. The only lock a reader
//!   touches is a briefly-held `RwLock` read guard around the `Arc` clone;
//!   the write-side critical section is a single pointer store — rebuilds
//!   (the `O(n)` part, routed through the deterministic Rayon
//!   `par_build`) happen strictly *before* the swap, outside it.
//! * **Reclamation is the `Arc` refcount** — the epoch-based-reclamation
//!   idea with the standard library as the epoch: an old generation dies
//!   exactly when its last in-flight reader drops it.
//!
//! Answers keep the wire determinism contract: key `i` of a slice draws
//! its balancing randomness from `(seed, first_index + i)`, so TCP reads
//! through this engine are bit-identical to direct
//! [`FrozenDynamic::contains_key`] probes of the same generation at any
//! chunking — including reads that straddle a background rebuild, which
//! simply resolve against whichever generation they snapshotted.

use crate::engine::{record_batch_metrics, run_observed_batch, EngineConfig};
use lcds_core::builder::BuildError;
use lcds_core::{DynamicLcd, FrozenDynamic, ParamsConfig};
use lcds_obs::names;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One published, immutable generation of the dynamic dictionary.
#[derive(Clone, Debug)]
pub struct Generation {
    index: u64,
    frozen: FrozenDynamic,
}

impl Generation {
    /// The generation index (0 = the initial build; +1 per publish).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The frozen structure readers probe.
    pub fn frozen(&self) -> &FrozenDynamic {
        &self.frozen
    }
}

/// Mutation counters, readable without the observability gate (the CLI
/// run summary wants them even when `LCDS_OBS` is off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynCounters {
    /// Applied inserts (`Inserted(true)`).
    pub inserts: u64,
    /// Applied removes (`Removed(true)`).
    pub removes: u64,
    /// Explicit flushes.
    pub flushes: u64,
    /// Generations published (pointer swaps).
    pub swaps: u64,
    /// Full merge-and-rebuilds of the underlying structure since
    /// construction (the initial build is not a rebuild).
    pub rebuilds: u64,
}

/// A serving engine over a [`DynamicLcd`] with lock-free-for-readers
/// generation swaps. See the module docs for the concurrency story.
#[derive(Debug)]
pub struct DynamicEngine {
    published: RwLock<Arc<Generation>>,
    writer: Mutex<DynamicLcd>,
    seed: u64,
    cfg: EngineConfig,
    inserts: AtomicU64,
    removes: AtomicU64,
    flushes: AtomicU64,
    swaps: AtomicU64,
    /// Rebuild count already reported to observability (so per-engine
    /// deltas reach the global counter even with several engines alive).
    rebuilds_seen: AtomicU64,
    /// `write_stats().rebuilds` right after construction, subtracted from
    /// [`DynCounters::rebuilds`] so it counts serving-time rebuilds only
    /// (matching `lcds_dyn_rebuilds_total`), not the initial build.
    built_at_construction: u64,
}

impl DynamicEngine {
    /// Builds the engine over an initial key set. `dict_seed` drives the
    /// structure's (deterministic) evolution, `query_seed` the per-query
    /// balancing randomness — the same split as the static `Engine`.
    ///
    /// Rebuilds are routed through the parallel builder
    /// (`set_parallel_rebuild(true)`); a mirror `DynamicLcd` must do the
    /// same to replay this engine's evolution bit for bit.
    pub fn new(
        initial: &[u64],
        dict_seed: u64,
        query_seed: u64,
        cfg: EngineConfig,
    ) -> Result<DynamicEngine, BuildError> {
        let mut w = DynamicLcd::new(initial, dict_seed, ParamsConfig::default())?;
        w.set_parallel_rebuild(true);
        let first = Arc::new(Generation {
            index: 0,
            frozen: w.freeze(),
        });
        let built = w.write_stats().rebuilds;
        Ok(DynamicEngine {
            published: RwLock::new(first),
            writer: Mutex::new(w),
            seed: query_seed,
            cfg,
            inserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            rebuilds_seen: AtomicU64::new(built),
            built_at_construction: built,
        })
    }

    /// The currently published generation. Readers hold the returned
    /// `Arc` for as long as they need a consistent view; the engine's own
    /// read methods hold it for exactly one call.
    pub fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.published.read().expect("published lock poisoned"))
    }

    /// The query seed every answer is deterministic in.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The engine tuning knobs.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Index of the currently published generation.
    pub fn generation(&self) -> u64 {
        self.snapshot().index
    }

    /// Live keys in the published generation.
    pub fn key_count(&self) -> usize {
        use lcds_cellprobe::dict::CellProbeDict;
        self.snapshot().frozen.len()
    }

    /// Cells (main + delta) of the published generation.
    pub fn num_cells(&self) -> u64 {
        self.snapshot().frozen.total_cells()
    }

    /// Per-query probe bound of the published generation.
    pub fn max_probes(&self) -> u32 {
        use lcds_cellprobe::dict::CellProbeDict;
        self.snapshot().frozen.max_probes()
    }

    /// Mutation counters since construction.
    pub fn counters(&self) -> DynCounters {
        DynCounters {
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            rebuilds: self.writer.lock().expect("writer").write_stats().rebuilds
                - self.built_at_construction,
        }
    }

    /// Bulk membership against a pinned generation — the one code path
    /// every read goes through, exposed so tests (and anyone needing
    /// multi-call consistency) can hold a generation across calls.
    pub fn bulk_contains_on(&self, gen: &Generation, keys: &[u64], first_index: u64) -> Vec<bool> {
        let batch = self.cfg.batch.max(1);
        record_batch_metrics(keys.len(), batch);
        let mut out = Vec::with_capacity(keys.len());
        for (c, chunk) in keys.chunks(batch).enumerate() {
            run_observed_batch(
                &gen.frozen,
                chunk,
                first_index + (c * batch) as u64,
                self.seed,
                0,
                c as u64,
                &mut out,
            );
        }
        out
    }

    /// Membership of one key at global stream position `index`.
    pub fn contains_at(&self, key: u64, index: u64) -> bool {
        self.bulk_contains_at(&[key], index)[0]
    }

    /// Bulk membership of the stream slice starting at `first_index`,
    /// answered entirely against one snapshotted generation.
    pub fn bulk_contains_at(&self, keys: &[u64], first_index: u64) -> Vec<bool> {
        let gen = self.snapshot();
        self.bulk_contains_on(&gen, keys, first_index)
    }

    /// Member count of the stream slice starting at `first_index`.
    pub fn bulk_count_at(&self, keys: &[u64], first_index: u64) -> usize {
        self.bulk_contains_at(keys, first_index)
            .into_iter()
            .filter(|&b| b)
            .count()
    }

    /// Inserts `key`; returns whether it was newly inserted. Publishes a
    /// new generation when (and only when) the structure changed.
    pub fn insert(&self, key: u64) -> Result<bool, BuildError> {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        let fresh = w.insert(key)?;
        if fresh {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            lcds_obs::counter(names::DYN_INSERTS_TOTAL).add(1);
            self.publish(&w);
        }
        Ok(fresh)
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&self, key: u64) -> Result<bool, BuildError> {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        let present = w.remove(key)?;
        if present {
            self.removes.fetch_add(1, Ordering::Relaxed);
            lcds_obs::counter(names::DYN_REMOVES_TOTAL).add(1);
            self.publish(&w);
        }
        Ok(present)
    }

    /// Forces a merge-and-rebuild now and publishes the result; returns
    /// the new generation index and live key count.
    pub fn flush(&self) -> Result<(u64, u64), BuildError> {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        w.flush()?;
        self.flushes.fetch_add(1, Ordering::Relaxed);
        lcds_obs::counter(names::DYN_FLUSHES_TOTAL).add(1);
        let index = self.publish(&w);
        Ok((index, w.len() as u64))
    }

    /// Freezes the writer's state and swaps it in as the next generation.
    /// Called with the writer lock held, so publishes are totally ordered;
    /// the write-side critical section on `published` is just the pointer
    /// store (the freeze — and any rebuild before it — already happened).
    fn publish(&self, w: &DynamicLcd) -> u64 {
        let frozen = w.freeze();
        let stats = *w.write_stats();
        let mut slot = self.published.write().expect("published lock poisoned");
        let index = slot.index + 1;
        *slot = Arc::new(Generation { index, frozen });
        drop(slot);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        // Writer lock is held, so the seen-rebuilds handoff is race-free.
        let seen = self.rebuilds_seen.swap(stats.rebuilds, Ordering::Relaxed);
        if lcds_obs::enabled() {
            lcds_obs::counter(names::DYN_SWAPS_TOTAL).add(1);
            lcds_obs::gauge(names::DYN_GENERATION).set(index as f64);
            lcds_obs::gauge(names::DYN_DELTA_PENDING).set(w.delta_len() as f64);
            if stats.rebuilds > seen {
                lcds_obs::counter(names::DYN_REBUILDS_TOTAL).add(stats.rebuilds - seen);
                // Log only main-table-replacing swaps: one event per
                // mutation would scale the event log with the write rate.
                lcds_obs::emit(
                    names::EVENT_DYN_SWAP,
                    serde_json::json!({
                        "generation": index,
                        "keys": w.len(),
                        "delta_pending": w.delta_len(),
                        "rebuilds": stats.rebuilds,
                    }),
                );
            }
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::sink::NullSink;
    use lcds_hashing::mix::derive;
    use lcds_hashing::MAX_KEY;
    use std::collections::HashSet;

    fn keys(n: u64, salt: u64) -> Vec<u64> {
        (0..n).map(|i| derive(salt, i) % MAX_KEY).collect()
    }

    #[test]
    fn reads_match_a_mirror_dynamiclcd_at_any_chunking() {
        // The acceptance contract: engine reads are bit-identical to
        // direct FrozenDynamic::contains_key probes of a mirror structure
        // evolved by the same (seed, op sequence).
        let initial = keys(400, 1);
        let e = DynamicEngine::new(&initial, 7, 9, EngineConfig::with_batch(64)).unwrap();
        let mut mirror = DynamicLcd::new(&initial, 7, ParamsConfig::default()).unwrap();
        mirror.set_parallel_rebuild(true);

        for i in 0..500u64 {
            let k = derive(2, i) % MAX_KEY;
            assert_eq!(e.insert(k).unwrap(), mirror.insert(k).unwrap(), "op {i}");
        }
        for i in 0..100u64 {
            let k = derive(2, i * 3) % MAX_KEY;
            assert_eq!(e.remove(k).unwrap(), mirror.remove(k).unwrap());
        }

        let probes: Vec<u64> = initial
            .iter()
            .copied()
            .take(150)
            .chain((0..150).map(|i| derive(2, i) % MAX_KEY))
            .chain((0..100).map(|i| derive(3, i) % MAX_KEY))
            .collect();
        let frozen = mirror.freeze();
        let expected: Vec<bool> = probes
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let mut rng = lcds_cellprobe::rngutil::StreamRng::for_stream(9, i as u64);
                frozen.contains_key(x, &mut rng, &mut NullSink)
            })
            .collect();

        let full = e.bulk_contains_at(&probes, 0);
        assert_eq!(full, expected);
        // Any chunking, any offset: same bits.
        for split in [1usize, 63, 64, 65, 200, probes.len()] {
            let (a, b) = probes.split_at(split.min(probes.len()));
            let mut stitched = e.bulk_contains_at(a, 0);
            stitched.extend(e.bulk_contains_at(b, a.len() as u64));
            assert_eq!(stitched, expected, "split {split}");
        }
        assert_eq!(
            e.bulk_count_at(&probes, 0),
            expected.iter().filter(|&&b| b).count()
        );
        for (i, &x) in probes.iter().enumerate().step_by(53) {
            assert_eq!(e.contains_at(x, i as u64), expected[i]);
        }
    }

    #[test]
    fn generations_advance_and_flush_reports_them() {
        let e = DynamicEngine::new(&keys(64, 4), 5, 6, EngineConfig::default()).unwrap();
        assert_eq!(e.generation(), 0);
        assert!(e.insert(u64::from(u32::MAX)).unwrap());
        assert_eq!(e.generation(), 1);
        // A no-op mutation publishes nothing.
        assert!(!e.insert(u64::from(u32::MAX)).unwrap());
        assert_eq!(e.generation(), 1);
        assert!(!e.remove(123_456_789).unwrap());
        assert_eq!(e.generation(), 1);
        let (generation, live) = e.flush().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(live, 65);
        assert_eq!(e.key_count(), 65);
        let c = e.counters();
        assert_eq!((c.inserts, c.removes, c.flushes, c.swaps), (1, 0, 1, 2));
        // Serving-time rebuilds only: the flush, not the initial build.
        assert_eq!(c.rebuilds, 1);
    }

    #[test]
    fn held_generations_stay_consistent_across_swaps() {
        let initial = keys(300, 8);
        let e = DynamicEngine::new(&initial, 11, 12, EngineConfig::with_batch(32)).unwrap();
        let before = e.snapshot();
        let oracle_before: HashSet<u64> = initial.iter().copied().collect();

        // Mutate far enough to force at least one rebuild.
        for i in 0..1000u64 {
            e.insert(derive(13, i) % MAX_KEY).unwrap();
        }
        assert!(e.counters().rebuilds >= 2);

        let probes: Vec<u64> = initial
            .iter()
            .copied()
            .take(100)
            .chain((0..100).map(|i| derive(13, i) % MAX_KEY))
            .collect();
        let old_answers = e.bulk_contains_on(&before, &probes, 0);
        for (i, &x) in probes.iter().enumerate() {
            assert_eq!(
                old_answers[i],
                oracle_before.contains(&x),
                "held generation drifted at {x}"
            );
        }
        // The live path sees the new keys.
        let now = e.bulk_contains_at(&probes, 0);
        assert!(now.iter().filter(|&&b| b).count() > old_answers.iter().filter(|&&b| b).count());
    }

    #[test]
    fn plan_scratch_is_reused_across_batches_and_generations() {
        // Regression guard for per-call plan allocation: the batched read
        // path must take one `BatchPlan` scratch per worker thread and
        // keep it across batches *and* generation swaps. The counter
        // tracks `BatchPlan::new` calls, so a path that regressed to
        // constructing plans per batch grows it by the batch count (~20
        // here); the healthy path grows it by one (this thread's scratch
        // init). Run on a fresh thread so the init is deterministic.
        let initial = keys(400, 17);
        let e = DynamicEngine::new(&initial, 31, 32, EngineConfig::with_batch(64)).unwrap();
        let probes: Vec<u64> = initial.iter().copied().take(200).collect();
        std::thread::spawn(move || {
            let allocs = || {
                lcds_obs::global()
                    .snapshot()
                    .counters
                    .get(lcds_obs::names::SERVE_PLAN_SCRATCH_ALLOCS)
                    .copied()
                    .unwrap_or(0)
            };
            lcds_obs::set_enabled(true);
            let before = allocs();
            e.bulk_contains_at(&probes, 0); // 4 batches of 64
            for round in 0..3u64 {
                e.insert(5_000_000 + round).unwrap(); // publish a generation
                e.bulk_contains_at(&probes, 0);
            }
            e.flush().unwrap(); // force a main-table rebuild + swap
            e.bulk_contains_at(&probes, 0);
            let delta = allocs() - before;
            lcds_obs::set_enabled(false);
            // 20 batches ran on this thread; the healthy path allocates
            // once. A small cushion absorbs concurrent tests that might
            // create a plan while the flag is up — still far below the
            // per-batch growth the regression would show.
            assert!(
                (1..=4).contains(&delta),
                "expected one scratch alloc across generations, saw {delta}"
            );
        })
        .join()
        .unwrap();
    }
}

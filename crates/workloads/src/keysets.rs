//! Key-set generators over the universe `[0, 2^61 − 1)`.

use lcds_hashing::mix::derive;
use lcds_hashing::MAX_KEY;
use std::collections::HashSet;

/// `n` distinct uniform keys.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut set = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    while out.len() < n {
        let k = derive(seed, i) % MAX_KEY;
        if set.insert(k) {
            out.push(k);
        }
        i += 1;
    }
    out
}

/// `n` consecutive keys starting at `start` — the structured input that
/// breaks naive `mod`-based hashing and exercises the field reduction.
///
/// # Panics
/// Panics if the range would leave the universe.
pub fn dense_keys(n: usize, start: u64) -> Vec<u64> {
    let end = start.checked_add(n as u64).expect("range overflow");
    assert!(end <= MAX_KEY, "dense range exceeds the key universe");
    (start..end).collect()
}

/// `n` keys in `clusters` tight clusters of width `spread` — a workload
/// with heavy local structure (e.g. timestamp or ID blocks).
pub fn clustered_keys(n: usize, clusters: usize, spread: u64, seed: u64) -> Vec<u64> {
    assert!(clusters >= 1 && spread >= 1);
    // Fail fast instead of spinning: at most clusters·spread distinct keys
    // exist (clusters may also overlap), so demand comfortable headroom.
    assert!(
        (clusters as u64).saturating_mul(spread) >= 2 * n as u64,
        "clusters ({clusters}) × spread ({spread}) cannot yield {n} distinct keys"
    );
    let mut set = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    let centers: Vec<u64> = (0..clusters as u64)
        .map(|c| derive(seed, c) % (MAX_KEY - spread))
        .collect();
    let mut i = 0u64;
    while out.len() < n {
        let c = centers[(derive(seed.wrapping_add(1), i) % clusters as u64) as usize];
        let k = c + derive(seed.wrapping_add(2), i) % spread;
        if set.insert(k) {
            out.push(k);
        }
        i += 1;
    }
    out
}

/// `n` keys straddling multiples of `block`: each chosen boundary `m·block`
/// contributes the pair `m·block − 1, m·block`. Against the ordered
/// dictionary's B-ary layout this is the boundary-adversarial key set —
/// predecessor descents near these keys must separate adjacent blocks at
/// every level, so replica choice is exercised where it matters most.
pub fn adversarial_boundary_keys(n: usize, block: u64, seed: u64) -> Vec<u64> {
    assert!(block >= 2, "a boundary needs a block of at least 2");
    let mut set = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    while out.len() < n {
        // Boundary multiples are seed-drawn; both sides of each boundary
        // enter (i alternates the side, dedup keeps the set distinct).
        let m = 1 + derive(seed, i / 2) % (MAX_KEY / block - 1);
        let k = m * block - (1 - i % 2);
        if set.insert(k) {
            out.push(k);
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_distinct(keys: &[u64]) -> bool {
        let set: HashSet<u64> = keys.iter().copied().collect();
        set.len() == keys.len()
    }

    fn all_in_universe(keys: &[u64]) -> bool {
        keys.iter().all(|&k| k < MAX_KEY)
    }

    #[test]
    fn uniform_keys_are_distinct_and_reproducible() {
        let a = uniform_keys(1000, 7);
        let b = uniform_keys(1000, 7);
        assert_eq!(a, b);
        assert!(all_distinct(&a));
        assert!(all_in_universe(&a));
        assert_ne!(a, uniform_keys(1000, 8));
    }

    #[test]
    fn dense_keys_are_a_range() {
        let keys = dense_keys(100, 5000);
        assert_eq!(keys[0], 5000);
        assert_eq!(keys[99], 5099);
        assert!(all_distinct(&keys));
    }

    #[test]
    #[should_panic(expected = "exceeds the key universe")]
    fn dense_overflow_is_rejected() {
        let _ = dense_keys(10, MAX_KEY - 5);
    }

    #[test]
    fn clustered_keys_cluster() {
        let keys = clustered_keys(500, 5, 1000, 9);
        assert!(all_distinct(&keys));
        assert!(all_in_universe(&keys));
        // With 5 clusters of width 1000, the sorted gaps should show ≤ 5
        // big jumps.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let big_gaps = sorted.windows(2).filter(|w| w[1] - w[0] > 10_000).count();
        assert!(big_gaps <= 5, "found {big_gaps} big gaps");
    }

    #[test]
    fn zero_size_requests() {
        assert!(uniform_keys(0, 1).is_empty());
        assert!(dense_keys(0, 1).is_empty());
    }

    #[test]
    fn boundary_keys_straddle_block_multiples() {
        let block = 4096u64;
        let keys = adversarial_boundary_keys(600, block, 11);
        assert!(all_distinct(&keys));
        assert!(all_in_universe(&keys));
        assert_eq!(keys, adversarial_boundary_keys(600, block, 11));
        assert_ne!(keys, adversarial_boundary_keys(600, block, 12));
        for &k in &keys {
            let r = k % block;
            assert!(
                r == 0 || r == block - 1,
                "key {k} sits {r} past a block boundary"
            );
        }
        // Both sides of the straddle are present.
        assert!(keys.iter().any(|&k| k % block == 0));
        assert!(keys.iter().any(|&k| k % block == block - 1));
    }

    #[test]
    #[should_panic(expected = "cannot yield")]
    fn clustered_overcommit_fails_fast() {
        // 8 clusters × 64 width can never produce 2000 distinct keys; this
        // must panic, not hang (regression: an early integration test spun
        // forever here).
        let _ = clustered_keys(2000, 8, 64, 1);
    }
}

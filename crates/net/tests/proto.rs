//! Property tests for the wire protocol: the decoder must never panic,
//! must reject malformed frames with *typed* errors, and must round-trip
//! every opcode exactly.

use lcds_net::proto::{
    self, DictStats, ProtoError, Request, Response, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
use proptest::prelude::*;

// Generators are written tuple-style (select-index + prop_map) rather
// than with `prop_oneof!`, so they run unchanged under the offline
// harness's deterministic proptest stand-in.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0usize..12,
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 0..64),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..40),
    )
        .prop_map(|(which, a, b, keys, ranges)| match which {
            0 => Request::Ping,
            1 => Request::Stats,
            2 => Request::Contains { index: a, key: b },
            3 => Request::Insert { key: b },
            4 => Request::Remove { key: b },
            5 => Request::Flush,
            6 => Request::Telemetry,
            7 => Request::BulkContains {
                first_index: a,
                keys,
            },
            8 => Request::BulkCount {
                first_index: a,
                keys,
            },
            9 => Request::Predecessor {
                first_index: a,
                keys,
            },
            10 => Request::Rank {
                first_index: a,
                keys,
            },
            _ => Request::RangeCount {
                first_index: a,
                ranges,
            },
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0usize..14,
        any::<u64>(),
        prop::collection::vec(any::<bool>(), 0..130),
        prop::collection::vec(32u8..127, 0..40),
        (any::<u64>(), any::<u32>(), any::<u32>()),
        prop::collection::vec(any::<u64>(), 0..50),
    )
        .prop_map(
            |(which, a, bits, ascii, (cells, shards, max_probes), words)| match which {
                0 => Response::Pong,
                1 => Response::Busy,
                2 => Response::Contains(a & 1 == 1),
                3 => Response::BulkContains(bits),
                4 => Response::BulkCount(a),
                5 => Response::Inserted(a & 1 == 1),
                6 => Response::Removed(a & 2 == 2),
                7 => Response::Flushed {
                    generation: a,
                    keys: cells,
                },
                8 => Response::Stats(DictStats {
                    keys: a,
                    cells,
                    shards,
                    max_probes,
                    seed: a ^ cells,
                }),
                9 => Response::Telemetry(
                    String::from_utf8(ascii.clone()).expect("ascii range is UTF-8"),
                ),
                10 => Response::PredecessorResult(words),
                11 => Response::RankResult(words),
                12 => Response::RangeCountResult(words),
                _ => Response::Error(String::from_utf8(ascii).expect("ascii range is UTF-8")),
            },
        )
}

proptest! {
    /// Arbitrary bytes — pure noise — never panic either decoder; they
    /// produce a value or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = proto::decode_request(&bytes);
        let _ = proto::decode_response(&bytes);
        let _ = proto::decode_header(&bytes);
    }

    /// Arbitrary *suffixes appended to a valid frame prefix* never panic:
    /// the decoder consumes exactly one frame and reports its length.
    #[test]
    fn valid_frame_with_trailing_noise_decodes_cleanly(
        req in arb_request(),
        id in any::<u64>(),
        noise in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = proto::encode_request(id, &req).unwrap();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&noise);
        let (got_id, got, used) = proto::decode_request(&bytes).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, req);
        prop_assert_eq!(used, frame_len);
    }

    /// Every proper prefix of a valid frame is `Truncated` — never a
    /// panic, never a bogus success.
    #[test]
    fn truncated_frames_yield_typed_truncation(
        req in arb_request(),
        id in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = proto::encode_request(id, &req).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        match proto::decode_request(&bytes[..cut]) {
            Err(ProtoError::Truncated { need, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(need > have);
            }
            other => prop_assert!(false, "wanted Truncated, got {other:?}"),
        }
    }

    /// A header declaring more than MAX_PAYLOAD is rejected as Oversized
    /// no matter what the rest of the bytes say — before any allocation.
    #[test]
    fn oversized_declared_lengths_are_rejected(
        id in any::<u64>(),
        opcode in any::<u8>(),
        excess in 1u32..=u32::MAX - MAX_PAYLOAD,
    ) {
        let declared = MAX_PAYLOAD + excess;
        let mut bytes = Vec::with_capacity(HEADER_LEN);
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.push(VERSION);
        bytes.push(opcode);
        bytes.extend_from_slice(&[0, 0]);
        bytes.extend_from_slice(&id.to_le_bytes());
        bytes.extend_from_slice(&declared.to_le_bytes());
        match proto::decode_request(&bytes) {
            Err(ProtoError::Oversized { declared: d, max }) => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(max, MAX_PAYLOAD);
            }
            other => prop_assert!(false, "wanted Oversized, got {other:?}"),
        }
    }

    /// Flipping any single byte of a valid frame never panics the
    /// decoder (it may still decode — some bytes are payload data).
    #[test]
    fn single_byte_corruption_never_panics(
        req in arb_request(),
        id in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = proto::encode_request(id, &req).unwrap();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= flip;
        let _ = proto::decode_request(&bytes);
        let _ = proto::decode_response(&bytes);
    }

    /// encode → decode is the identity for every request opcode.
    #[test]
    fn requests_round_trip(req in arb_request(), id in any::<u64>()) {
        let bytes = proto::encode_request(id, &req).unwrap();
        let (got_id, got, used) = proto::decode_request(&bytes).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, req);
        prop_assert_eq!(used, bytes.len());
    }

    /// encode → decode is the identity for every response opcode, on
    /// both the slice and the `Read`-based paths.
    #[test]
    fn responses_round_trip(resp in arb_response(), id in any::<u64>()) {
        let bytes = proto::encode_response(id, &resp).unwrap();
        let (got_id, got, used) = proto::decode_response(&bytes).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(&got, &resp);
        prop_assert_eq!(used, bytes.len());
        let (rid, rgot) = proto::read_response(&mut &bytes[..]).unwrap();
        prop_assert_eq!(rid, id);
        prop_assert_eq!(rgot, resp);
    }

    /// A request frame is never mistaken for a response and vice versa.
    #[test]
    fn opcode_planes_do_not_cross(req in arb_request(), resp in arb_response(), id in any::<u64>()) {
        let rbytes = proto::encode_request(id, &req).unwrap();
        prop_assert!(matches!(
            proto::decode_response(&rbytes),
            Err(ProtoError::UnknownOpcode(_))
        ));
        let sbytes = proto::encode_response(id, &resp).unwrap();
        prop_assert!(matches!(
            proto::decode_request(&sbytes),
            Err(ProtoError::UnknownOpcode(_))
        ));
    }
}

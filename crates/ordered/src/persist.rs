//! Persistence for the ordered dictionary.
//!
//! Unlike the membership dictionary (whose build is randomized, so the
//! artifact must snapshot hashes, displacements, and the full table),
//! [`crate::OrderedLcd`] is a *pure function* of its sorted key set and
//! scheme — so the file stores only the keys and the scheme, and load
//! rebuilds the replicated layout deterministically. The artifact is
//! `n + 5` words instead of `levels·n + …`.
//!
//! Format (all little-endian u64 words):
//!
//! ```text
//! MAGIC  VERSION  scheme  n  keys[n]  CHECKSUM
//! ```
//!
//! The checksum (splitmix64-folded over everything above, like the
//! membership format) makes torn or corrupted files fail loudly with a
//! structured error instead of rebuilding a silently wrong dictionary.

use crate::dict::{build_seeded, OrdBuildError, OrdScheme, OrderedLcd};
use lcds_hashing::mix::splitmix64;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: `"LCDSORDD"` as a word.
pub const MAGIC: u64 = 0x4C43_4453_4F52_4444;
/// Format version.
pub const VERSION: u64 = 1;

/// Why an ordered load failed.
#[derive(Debug)]
pub enum OrdPersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Magic/version/scheme mismatch — not an ordered-dictionary file
    /// (or one from an incompatible version).
    BadHeader(String),
    /// Checksum or structure mismatch — truncated or corrupted payload.
    Corrupted(String),
}

impl std::fmt::Display for OrdPersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrdPersistError::Io(e) => write!(f, "i/o error: {e}"),
            OrdPersistError::BadHeader(m) => write!(f, "bad header: {m}"),
            OrdPersistError::Corrupted(m) => write!(f, "corrupted payload: {m}"),
        }
    }
}

impl std::error::Error for OrdPersistError {}

impl From<io::Error> for OrdPersistError {
    fn from(e: io::Error) -> Self {
        OrdPersistError::Io(e)
    }
}

/// Incrementally checksummed word writer.
struct WordWriter<'a, W: Write> {
    out: &'a mut W,
    checksum: u64,
}

impl<W: Write> WordWriter<'_, W> {
    fn put(&mut self, w: u64) -> io::Result<()> {
        self.checksum = splitmix64(self.checksum ^ w);
        self.out.write_all(&w.to_le_bytes())
    }
}

/// Incrementally checksummed word reader.
struct WordReader<'a, R: Read> {
    inp: &'a mut R,
    checksum: u64,
    words_read: u64,
}

impl<R: Read> WordReader<'_, R> {
    fn get(&mut self) -> Result<u64, OrdPersistError> {
        let mut buf = [0u8; 8];
        self.inp.read_exact(&mut buf).map_err(|e| {
            // EOF on the very first word means "not our file"; after that,
            // a dictionary file was cut short — payload corruption.
            if e.kind() == io::ErrorKind::UnexpectedEof && self.words_read > 0 {
                OrdPersistError::Corrupted("file truncated mid-record".into())
            } else {
                OrdPersistError::Io(e)
            }
        })?;
        self.words_read += 1;
        let w = u64::from_le_bytes(buf);
        self.checksum = splitmix64(self.checksum ^ w);
        Ok(w)
    }
}

fn scheme_word(scheme: OrdScheme) -> u64 {
    match scheme {
        OrdScheme::Replicated => 0,
        OrdScheme::Adversarial => 1,
    }
}

/// Serializes the ordered dictionary (its key set and scheme) to `out`.
pub fn save<W: Write>(dict: &OrderedLcd, out: &mut W) -> io::Result<()> {
    let mut w = WordWriter { out, checksum: 0 };
    w.put(MAGIC)?;
    w.put(VERSION)?;
    w.put(scheme_word(dict.scheme()))?;
    w.put(dict.len() as u64)?;
    for i in 0..dict.len() {
        w.put(dict.key_at(i))?;
    }
    let checksum = w.checksum;
    w.out.write_all(&checksum.to_le_bytes())
}

/// Saves to a file through a `BufWriter` (the format is written one
/// 8-byte word at a time; buffering collapses the syscall count).
pub fn save_to_path<P: AsRef<Path>>(dict: &OrderedLcd, path: P) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    save(dict, &mut out)?;
    out.flush()
}

/// Loads from a file through a `BufReader`.
pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<OrderedLcd, OrdPersistError> {
    let mut inp = BufReader::new(File::open(path)?);
    load(&mut inp)
}

/// Deserializes an ordered dictionary: verifies header, key order, and
/// checksum, then rebuilds the layout via [`build_seeded`] (which
/// re-validates the key universe).
pub fn load<R: Read>(inp: &mut R) -> Result<OrderedLcd, OrdPersistError> {
    let mut r = WordReader {
        inp,
        checksum: 0,
        words_read: 0,
    };
    if r.get()? != MAGIC {
        return Err(OrdPersistError::BadHeader("wrong magic".into()));
    }
    let version = r.get()?;
    if version != VERSION {
        return Err(OrdPersistError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    let scheme = match r.get()? {
        0 => OrdScheme::Replicated,
        1 => OrdScheme::Adversarial,
        other => {
            return Err(OrdPersistError::BadHeader(format!(
                "unknown scheme code {other}"
            )))
        }
    };
    let n = r.get()?;
    // A lying length can never allocate past the file's actual bytes (a
    // short file hits EOF → Corrupted), but refuse absurd counts early.
    if n == 0 || n > (1 << 34) {
        return Err(OrdPersistError::BadHeader(format!(
            "implausible key count {n}"
        )));
    }
    let mut keys = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        keys.push(r.get()?);
    }
    if keys.windows(2).any(|w| w[0] >= w[1]) {
        return Err(OrdPersistError::Corrupted(
            "keys not sorted/distinct".into(),
        ));
    }

    let computed = r.checksum;
    let mut buf = [0u8; 8];
    r.inp.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            OrdPersistError::Corrupted("file truncated before checksum".into())
        } else {
            OrdPersistError::Io(e)
        }
    })?;
    if u64::from_le_bytes(buf) != computed {
        return Err(OrdPersistError::Corrupted("checksum mismatch".into()));
    }

    build_seeded(&keys, scheme).map_err(|e| match e {
        OrdBuildError::KeyTooLarge(k) => {
            OrdPersistError::Corrupted(format!("key {k} outside the universe"))
        }
        OrdBuildError::EmptyKeySet => OrdPersistError::Corrupted("empty key set".into()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64, scheme: OrdScheme) -> OrderedLcd {
        build_seeded(&(0..n).map(|i| i * 9 + 4).collect::<Vec<_>>(), scheme).unwrap()
    }

    #[test]
    fn roundtrip_rebuilds_the_identical_dictionary() {
        for scheme in [OrdScheme::Replicated, OrdScheme::Adversarial] {
            let d = sample(500, scheme);
            let mut buf = Vec::new();
            save(&d, &mut buf).unwrap();
            assert_eq!(buf.len(), 8 * (4 + 500 + 1));
            let loaded = load(&mut buf.as_slice()).unwrap();
            // Construction is deterministic, so the whole structure —
            // table words included — must match, not just the keys.
            assert_eq!(loaded, d);
        }
    }

    #[test]
    fn path_roundtrip_matches_in_memory_bytes() {
        let d = sample(120, OrdScheme::Replicated);
        let path = std::env::temp_dir().join(format!(
            "lcds-ordered-persist-test-{}.ord",
            std::process::id()
        ));
        save_to_path(&d, &path).unwrap();
        let mut mem = Vec::new();
        save(&d, &mut mem).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), mem);
        assert_eq!(load_from_path(&path).unwrap(), d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_and_payload_corruption_are_structured_errors() {
        let mut clean = Vec::new();
        save(&sample(80, OrdScheme::Replicated), &mut clean).unwrap();

        let mut buf = clean.clone();
        buf[0] ^= 0xFF; // magic
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(OrdPersistError::BadHeader(_))
        ));

        let mut buf = clean.clone();
        buf[16] = 9; // scheme code
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(OrdPersistError::BadHeader(_))
        ));

        // A bit flip in any key breaks either the sort check or the
        // checksum; either way the load fails loudly.
        for pos in [40usize, clean.len() / 2, clean.len() - 9] {
            let mut buf = clean.clone();
            buf[pos] ^= 0x10;
            assert!(
                load(&mut buf.as_slice()).is_err(),
                "bit flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_corrupted_not_io() {
        let mut buf = Vec::new();
        save(&sample(60, OrdScheme::Adversarial), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(OrdPersistError::Corrupted(_))
        ));
        assert!(matches!(
            load(&mut [].as_slice()),
            Err(OrdPersistError::Io(_))
        ));
    }

    #[test]
    fn forged_key_count_is_rejected_early() {
        let mut buf = Vec::new();
        save(&sample(40, OrdScheme::Replicated), &mut buf).unwrap();
        buf[24..32].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            load(&mut buf.as_slice()),
            Err(OrdPersistError::BadHeader(_))
        ));
    }
}

//! Walker–Vose alias tables: O(1) sampling from arbitrary finite
//! distributions.
//!
//! Monte-Carlo contention measurement draws millions of queries from
//! heavily skewed pools; the alias method makes each draw two RNG words
//! and one comparison instead of a `log n` binary search through the CDF.

use crate::rngutil::uniform_below;
use rand::RngCore;

/// A prepared alias table over indices `0..len`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance thresholds scaled to `u64` (probability of keeping the
    /// column itself rather than its alias).
    threshold: Vec<u64>,
    /// Alias index per column.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (need not be
    /// normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one entry");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all weights are zero");
        let n = weights.len();
        // Scaled probabilities p_i·n; "small" (< 1) columns borrow from
        // "large" ones.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = (0..n).filter(|&i| scaled[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| scaled[i] >= 1.0).collect();

        let mut threshold = vec![u64::MAX; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Column s keeps itself with probability scaled[s], else jumps
            // to l.
            threshold[s] = (scaled[s].clamp(0.0, 1.0) * u64::MAX as f64) as u64;
            alias[s] = l as u32;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining columns (numerical leftovers) keep themselves.
        AliasTable { threshold, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.threshold.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.threshold.is_empty()
    }

    /// Draws one index.
    #[inline]
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let col = uniform_below(rng, self.len() as u64) as usize;
        if rng.next_u64() <= self.threshold[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn empirical(weights: &[f64], trials: u64, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut r = rng(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..trials {
            counts[t.sample(&mut r)] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / trials as f64)
            .collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let emp = empirical(&[1.0; 8], 80_000, 1);
        for (i, &p) in emp.iter().enumerate() {
            assert!((p - 0.125).abs() < 0.01, "index {i}: {p}");
        }
    }

    #[test]
    fn skewed_weights_match() {
        let w = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = w.iter().sum();
        let emp = empirical(&w, 160_000, 2);
        for (i, &p) in emp.iter().enumerate() {
            let want = w[i] / total;
            assert!((p - want).abs() < 0.01, "index {i}: {p} vs {want}");
        }
    }

    #[test]
    fn zero_weight_entries_never_drawn() {
        let emp = empirical(&[0.0, 1.0, 0.0, 3.0], 40_000, 3);
        assert_eq!(emp[0], 0.0);
        assert_eq!(emp[2], 0.0);
        assert!((emp[3] - 0.75).abs() < 0.01);
    }

    #[test]
    fn single_entry() {
        let t = AliasTable::new(&[5.0]);
        let mut r = rng(4);
        for _ in 0..20 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn extreme_skew() {
        // Head carries ~ everything; tail must still be reachable.
        let mut w = vec![1e-6; 100];
        w[0] = 1.0;
        let emp = empirical(&w, 200_000, 5);
        assert!(emp[0] > 0.99);
        assert!(emp.iter().skip(1).any(|&p| p > 0.0), "tail unreachable");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn zero_total_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}

//! Canonical metric and event names for cross-crate instrumentation.
//!
//! Library crates that record into the global [`Registry`](crate::Registry)
//! name their series through these constants so the exporter, the docs
//! (`docs/OBSERVABILITY.md`), and dashboards stay in agreement — a typo'd
//! metric name silently creates a parallel empty series, which is exactly
//! the kind of bug a constant can't have.
//!
//! [`is_declared_metric`] / [`is_declared_event`] close the loop: the
//! `metric_names` tier-1 test runs a smoke workload with telemetry on and
//! asserts every name that lands in the global registry or event log is
//! declared here, so an inline literal cannot silently fork a series.

/// Wall time of one whole dictionary construction (span; exported with an
/// `_ns` suffix like every span histogram).
pub const BUILD_TOTAL: &str = "lcds_build_total";

/// Wall time of the `(f, g, z)` rejection-sampling loop (span).
pub const BUILD_HASH_DRAW: &str = "lcds_build_hash_draw";

/// Wall time of the replicated-row table fills (span).
pub const BUILD_TABLE_LAYOUT: &str = "lcds_build_table_layout";

/// Wall time of the per-group histogram encoding + fills (span).
pub const BUILD_HISTOGRAM_LAYOUT: &str = "lcds_build_histogram_layout";

/// Wall time of the per-bucket perfect-hash seed searches (span).
pub const BUILD_PERFECT_HASH: &str = "lcds_build_perfect_hash";

/// `(f, g, z)` draws rejected by `P(S)` across all builds (counter).
pub const BUILD_HASH_RETRIES_TOTAL: &str = "lcds_build_hash_retries_total";

/// Perfect-hash seeds tried across all buckets and builds (counter).
pub const BUILD_SEED_TRIALS_TOTAL: &str = "lcds_build_seed_trials_total";

/// Worst single bucket's seed trials seen so far (gauge, set-max).
pub const BUILD_SEED_TRIALS_MAX: &str = "lcds_build_seed_trials_max";

/// Distribution of seed trials per non-empty bucket (histogram).
pub const BUILD_SEED_TRIALS_PER_BUCKET: &str = "lcds_build_seed_trials_per_bucket";

/// Completed dictionary constructions (counter).
pub const BUILDS_TOTAL: &str = "lcds_builds_total";

/// Rayon worker threads available to the parallel builder (gauge).
pub const BUILD_PAR_WORKERS: &str = "lcds_build_par_workers";

/// Batches executed by the `lcds-serve` bulk engine (counter).
pub const SERVE_BATCHES_TOTAL: &str = "lcds_serve_batches_total";

/// Keys answered by the `lcds-serve` bulk engine (counter).
pub const SERVE_KEYS_TOTAL: &str = "lcds_serve_keys_total";

/// Distribution of batch sizes handed to the planned executor (histogram).
pub const SERVE_BATCH_DEPTH: &str = "lcds_serve_batch_depth";

/// Wall time of one planned batch execution in the bulk engine
/// (histogram, nanoseconds; recorded directly, not via a span).
pub const SERVE_BATCH_LATENCY: &str = "lcds_serve_batch_latency_ns";

/// Probe-plan entries laid out by the core batch planner (counter; one
/// entry per key per batch).
pub const SERVE_PLAN_ENTRIES_TOTAL: &str = "lcds_serve_plan_entries_total";

/// Plan entries still active after histogram lookup — i.e. keys whose
/// bucket was non-empty and proceeded to header/data probes (counter).
/// `active / entries` is the hit-ish rate of the probe plan's early exit.
pub const SERVE_PLAN_ACTIVE_TOTAL: &str = "lcds_serve_plan_active_entries_total";

/// Fresh `BatchPlan` scratch allocations (counter; one per worker thread
/// that ever runs a planned batch). Flat across batches and generation
/// swaps — growth here means a hot path stopped reusing its per-worker
/// scratch and is re-allocating plans per call.
pub const SERVE_PLAN_SCRATCH_ALLOCS: &str = "lcds_serve_plan_scratch_allocs_total";

/// Number of shards in a sharded serving dictionary (gauge).
pub const SERVE_SHARDS: &str = "lcds_serve_shards";

/// Distribution of per-shard sub-batch sizes after the splitter routes a
/// batch (histogram). A skewed distribution means the splitter is
/// unbalanced for the offered key mix.
pub const SERVE_SHARD_DEPTH: &str = "lcds_serve_shard_batch_depth";

/// Cell probes replayed by the real-thread simulator (counter).
pub const REPLAY_PROBES_TOTAL: &str = "lcds_replay_probes_total";

/// Stalls detected by the replay progress watchdog (counter).
pub const REPLAY_STALLS_TOTAL: &str = "lcds_replay_stalls_total";

/// Completed replay runs (counter).
pub const REPLAY_RUNS_TOTAL: &str = "lcds_replay_runs_total";

/// Per-thread replay wall time (histogram, nanoseconds).
pub const REPLAY_THREAD_NS: &str = "lcds_replay_thread_ns";

/// Replay throughput of the most recent run (gauge, queries/s).
pub const REPLAY_QPS: &str = "lcds_replay_qps";

/// Queries executed by the `lcds obs` / `lcds watch` sampling loop
/// (counter).
pub const QUERIES_TOTAL: &str = "lcds_queries_total";

/// Probes seen by the query-path sampler, sampled or not (counter).
pub const QUERY_PROBES_TOTAL: &str = "lcds_query_probes_total";

/// Probes forwarded past the sampler to the top-K sketch (counter).
pub const QUERY_PROBES_SAMPLED_TOTAL: &str = "lcds_query_probes_sampled_total";

/// Query throughput of the most recent sampling run (gauge, queries/s).
pub const QUERY_QPS: &str = "lcds_query_qps";

/// Estimated probe share of the hottest cell (gauge, 0..1).
pub const HOT_CELL_SHARE: &str = "lcds_hot_cell_share";

/// Estimated probe count of one hot cell (gauge family, labeled
/// `{cell="<id>"}`).
pub const HOT_CELL_PROBES: &str = "lcds_hot_cell_probes";

/// Trace records (batches + spans) published to the trace buffer
/// (counter).
pub const TRACE_RECORDS_TOTAL: &str = "lcds_trace_records_total";

/// Trace records evicted from the bounded buffer (counter).
pub const TRACE_DROPPED_TOTAL: &str = "lcds_trace_dropped_total";

/// Probes absorbed by the live contention heatmap (counter-like; exported
/// by the heatmap dump, mirrors `Heatmap::probes`).
pub const HEATMAP_PROBES_TOTAL: &str = "lcds_heatmap_probes_total";

/// Queries absorbed by the live contention heatmap (heatmap dump).
pub const HEATMAP_QUERIES_TOTAL: &str = "lcds_heatmap_queries_total";

/// Live estimated probe share of the hottest cell, `Φ̂` (heatmap dump).
pub const HEATMAP_PHI_HAT: &str = "lcds_heatmap_phi_hat";

/// Count-Min-corrected probe estimate of one hot cell (gauge family,
/// labeled `{cell="<id>"}`; heatmap dump).
pub const HEATMAP_CELL_PROBES: &str = "lcds_heatmap_cell_probes";

/// Contention-watchdog alarms raised (counter).
pub const WATCHDOG_TRIPS_TOTAL: &str = "lcds_watchdog_trips_total";

/// TCP connections accepted by the net server over its lifetime (counter).
pub const NET_CONNECTIONS_TOTAL: &str = "lcds_net_connections_total";

/// Currently open net-server connections (gauge).
pub const NET_CONNECTIONS_ACTIVE: &str = "lcds_net_connections_active";

/// Requests decoded by the net server, all opcodes (counter).
pub const NET_REQUESTS_TOTAL: &str = "lcds_net_requests_total";

/// Requests shed with a `Busy` response because the bounded worker queue
/// was full (counter). A rising rate is the server telling its clients to
/// back off instead of buffering unboundedly.
pub const NET_SHED_TOTAL: &str = "lcds_net_shed_total";

/// Depth of the bounded worker queue after the most recent enqueue
/// (gauge).
pub const NET_QUEUE_DEPTH: &str = "lcds_net_queue_depth";

/// Request-frame bytes read off sockets by the net server (counter).
pub const NET_BYTES_IN_TOTAL: &str = "lcds_net_bytes_in_total";

/// Response-frame bytes written to sockets by the net server (counter).
pub const NET_BYTES_OUT_TOTAL: &str = "lcds_net_bytes_out_total";

/// Server-side request service time, labeled per opcode
/// (`{op="bulk_contains"}` etc.; histogram family, nanoseconds).
pub const NET_REQUEST_LATENCY: &str = "lcds_net_request_latency_ns";

/// Time a request spent parked in the bounded worker queue between
/// enqueue and worker pickup (histogram, nanoseconds). The gap between
/// this + [`NET_SERVER_SERVICE`] and loadgen's client-observed latency is
/// the network + framing overhead.
pub const NET_SERVER_QUEUE_WAIT: &str = "lcds_net_server_queue_wait_ns";

/// Server-side worker execution time (dequeue → response written),
/// labeled per opcode (`{op="bulk_contains"}` etc.; histogram family,
/// nanoseconds). Unlike [`NET_REQUEST_LATENCY`] it excludes queue wait.
pub const NET_SERVER_SERVICE: &str = "lcds_net_server_service_ns";

/// Trace span name for a request's stay in the worker queue (span id =
/// request id, so it joins against the client span). Trace-only: not a
/// registry series.
pub const NET_SPAN_QUEUE: &str = "lcds_net_queue_wait";

/// Trace span name for a request's worker execution (span id = request
/// id). Trace-only.
pub const NET_SPAN_SERVICE: &str = "lcds_net_service";

/// Trace span name for one client-observed request (send → matching
/// response; span id = request id). Trace-only.
pub const NET_SPAN_CLIENT: &str = "lcds_net_client_request";

/// Insert requests applied by the dynamic serving engine (counter; counts
/// applied mutations, i.e. `Inserted(true)`).
pub const DYN_INSERTS_TOTAL: &str = "lcds_dyn_inserts_total";

/// Remove requests applied by the dynamic serving engine (counter).
pub const DYN_REMOVES_TOTAL: &str = "lcds_dyn_removes_total";

/// Explicit flushes (forced merge-and-rebuild) of the dynamic engine
/// (counter).
pub const DYN_FLUSHES_TOTAL: &str = "lcds_dyn_flushes_total";

/// Generations published by the dynamic engine — one pointer swap per
/// applied mutation or flush (counter).
pub const DYN_SWAPS_TOTAL: &str = "lcds_dyn_generation_swaps_total";

/// Full merge-and-rebuilds of the underlying `DynamicLcd` (counter). A
/// swap with a rebuild replaced the main table; one without only touched
/// the delta.
pub const DYN_REBUILDS_TOTAL: &str = "lcds_dyn_rebuilds_total";

/// Generation index currently published by the dynamic engine (gauge).
pub const DYN_GENERATION: &str = "lcds_dyn_generation_index";

/// Pending delta entries in the writer's dictionary after the most recent
/// mutation (gauge).
pub const DYN_DELTA_PENDING: &str = "lcds_dyn_delta_pending";

/// Multi-threaded bench runs completed (counter).
pub const MTBENCH_RUNS_TOTAL: &str = "lcds_mtbench_runs_total";

/// Aggregate throughput of the most recent bench-mt run (gauge, keys/s).
pub const MTBENCH_QPS: &str = "lcds_mtbench_qps";

/// Merged hottest-cell probe share Φ̂ of the most recent bench-mt run
/// (gauge, 0..1).
pub const MTBENCH_PHI_HAT: &str = "lcds_mtbench_phi_hat";

/// Per-thread wall time of a bench-mt run (histogram, nanoseconds).
pub const MTBENCH_THREAD_NS: &str = "lcds_mtbench_thread_ns";

/// Per-batch serving latency observed inside bench-mt worker threads
/// (histogram, nanoseconds).
pub const MTBENCH_BATCH_LATENCY: &str = "lcds_mtbench_batch_latency_ns";

/// Serialized-memory gate acquisitions that found the gate held by
/// another thread (counter). The hardware-contention signal bench-mt
/// correlates against Φ̂.
pub const MTBENCH_CONTENDED_TOTAL: &str = "lcds_mtbench_contended_probes_total";

/// All serialized-memory gate acquisitions in bench-mt runs (counter).
pub const MTBENCH_GATED_TOTAL: &str = "lcds_mtbench_gated_probes_total";

/// Ordered-dictionary builds completed (counter).
pub const ORD_BUILDS_TOTAL: &str = "lcds_ord_builds_total";

/// Keys stored by the most recently built ordered dictionary (gauge).
pub const ORD_KEYS: &str = "lcds_ord_keys";

/// Separator levels in the most recently built ordered dictionary
/// (gauge; the leaf row counts as level 0).
pub const ORD_LEVELS: &str = "lcds_ord_levels";

/// Ordered queries answered through the batched descent plan (counter;
/// a range count is one query even though it runs two descents).
pub const ORD_QUERIES_TOTAL: &str = "lcds_ord_queries_total";

/// Cells probed by batched ordered descents (counter; exact, counted
/// per scanned block word).
pub const ORD_PROBES_TOTAL: &str = "lcds_ord_probes_total";

/// Per-batch ordered serving latency (histogram, nanoseconds).
pub const ORD_BATCH_LATENCY: &str = "lcds_ord_batch_latency_ns";

/// Hottest-cell probe share Φ̂ measured per descent level of the most
/// recent ordered contention sweep (labeled gauge family,
/// `lcds_ord_phi_level{level="…"}`).
pub const ORD_PHI_LEVEL: &str = "lcds_ord_phi_level";

/// Telemetry windows sampled into the time-series ring (counter).
pub const TS_WINDOWS_TOTAL: &str = "lcds_ts_windows_total";

/// Nominal time-series window length (gauge, seconds).
pub const TS_WINDOW_SECONDS: &str = "lcds_ts_window_seconds";

/// Windows currently retained in the time-series ring (gauge).
pub const TS_RING_LEN: &str = "lcds_ts_ring_len";

/// Cost of one coherent sampling pass (histogram, nanoseconds).
pub const TS_SAMPLE_NS: &str = "lcds_ts_sample_ns";

/// Flight-recorder bundles written (counter).
pub const TS_RECORDER_BUNDLES_TOTAL: &str = "lcds_ts_recorder_bundles_total";

/// SLO envelope breach transitions (counter; one per *entry* into the
/// breached state, not per breaching window — hysteresis debounces).
pub const SLO_BREACHES_TOTAL: &str = "lcds_slo_breaches_total";

/// SLO envelope clear transitions (counter).
pub const SLO_CLEARS_TOTAL: &str = "lcds_slo_clears_total";

/// Is the SLO tracker currently in the breached state? (gauge, 0/1).
pub const SLO_BREACHED: &str = "lcds_slo_breached";

/// Event appended on every [`Span`](crate::Span) drop.
pub const EVENT_SPAN: &str = "span";

/// Event appended after every completed dictionary construction.
pub const EVENT_BUILD_COMPLETE: &str = "build_complete";

/// Event appended per tracked hot cell by the query sampling loop.
pub const EVENT_HOT_CELL: &str = "hot_cell";

/// Structured alarm raised by the contention watchdog when the live
/// ratio `Φ̂·s` exceeds its configured envelope.
pub const EVENT_WATCHDOG: &str = "contention_watchdog";

/// Event appended per finished experiment by the `experiments` binary.
pub const EVENT_EXPERIMENT_COMPLETE: &str = "experiment_complete";

/// Event appended when the net server starts listening or finishes its
/// graceful drain (`phase` = `"started"` / `"stopped"`).
pub const EVENT_NET_SERVER: &str = "net_server";

/// Event appended per completed bench-mt row (scheme, workload, threads,
/// qps, scaling efficiency, merged Φ̂).
pub const EVENT_MTBENCH_ROW: &str = "mtbench_row";

/// Event appended when the dynamic engine publishes a generation whose
/// rebuild count advanced — i.e. the main table itself was replaced
/// (generation index, live keys, pending delta, cumulative rebuilds).
/// Delta-only swaps are counted but not logged: at one swap per mutation
/// the event log would otherwise scale with the write rate.
pub const EVENT_DYN_SWAP: &str = "dyn_generation_swap";

/// Event appended on every SLO tracker state flip (`state` = `"breach"`
/// / `"clear"`), with the offending window's p99 and `Φ̂·s` alongside
/// the configured envelopes.
pub const EVENT_SLO_BREACH: &str = "lcds_slo_breach";

/// Event appended when the flight recorder writes a bundle (`reason` =
/// `"watchdog"` / `"slo"` / `"drain"`, plus the bundle path).
pub const EVENT_RECORDER_DUMP: &str = "lcds_recorder_dump";

/// Every declared plain metric series (exact exported name, no labels).
pub const ALL_METRICS: &[&str] = &[
    BUILD_HASH_RETRIES_TOTAL,
    BUILD_SEED_TRIALS_TOTAL,
    BUILD_SEED_TRIALS_MAX,
    BUILD_SEED_TRIALS_PER_BUCKET,
    BUILDS_TOTAL,
    BUILD_PAR_WORKERS,
    SERVE_BATCHES_TOTAL,
    SERVE_KEYS_TOTAL,
    SERVE_BATCH_DEPTH,
    SERVE_BATCH_LATENCY,
    SERVE_PLAN_ENTRIES_TOTAL,
    SERVE_PLAN_ACTIVE_TOTAL,
    SERVE_PLAN_SCRATCH_ALLOCS,
    SERVE_SHARDS,
    SERVE_SHARD_DEPTH,
    REPLAY_PROBES_TOTAL,
    REPLAY_STALLS_TOTAL,
    REPLAY_RUNS_TOTAL,
    REPLAY_THREAD_NS,
    REPLAY_QPS,
    QUERIES_TOTAL,
    QUERY_PROBES_TOTAL,
    QUERY_PROBES_SAMPLED_TOTAL,
    QUERY_QPS,
    HOT_CELL_SHARE,
    TRACE_RECORDS_TOTAL,
    TRACE_DROPPED_TOTAL,
    HEATMAP_PROBES_TOTAL,
    HEATMAP_QUERIES_TOTAL,
    HEATMAP_PHI_HAT,
    WATCHDOG_TRIPS_TOTAL,
    NET_CONNECTIONS_TOTAL,
    NET_CONNECTIONS_ACTIVE,
    NET_REQUESTS_TOTAL,
    NET_SHED_TOTAL,
    NET_QUEUE_DEPTH,
    NET_BYTES_IN_TOTAL,
    NET_BYTES_OUT_TOTAL,
    NET_SERVER_QUEUE_WAIT,
    DYN_INSERTS_TOTAL,
    DYN_REMOVES_TOTAL,
    DYN_FLUSHES_TOTAL,
    DYN_SWAPS_TOTAL,
    DYN_REBUILDS_TOTAL,
    DYN_GENERATION,
    DYN_DELTA_PENDING,
    MTBENCH_RUNS_TOTAL,
    MTBENCH_QPS,
    MTBENCH_PHI_HAT,
    MTBENCH_THREAD_NS,
    MTBENCH_BATCH_LATENCY,
    MTBENCH_CONTENDED_TOTAL,
    MTBENCH_GATED_TOTAL,
    ORD_BUILDS_TOTAL,
    ORD_KEYS,
    ORD_LEVELS,
    ORD_QUERIES_TOTAL,
    ORD_PROBES_TOTAL,
    ORD_BATCH_LATENCY,
    TS_WINDOWS_TOTAL,
    TS_WINDOW_SECONDS,
    TS_RING_LEN,
    TS_SAMPLE_NS,
    TS_RECORDER_BUNDLES_TOTAL,
    SLO_BREACHES_TOTAL,
    SLO_CLEARS_TOTAL,
    SLO_BREACHED,
];

/// Declared span names. Spans export as `{name}_ns` histograms.
pub const ALL_SPANS: &[&str] = &[
    BUILD_TOTAL,
    BUILD_HASH_DRAW,
    BUILD_TABLE_LAYOUT,
    BUILD_HISTOGRAM_LAYOUT,
    BUILD_PERFECT_HASH,
];

/// Declared labeled gauge/histogram families (exported name is
/// `family{label="…"}`).
pub const ALL_LABELED_FAMILIES: &[&str] = &[
    HOT_CELL_PROBES,
    HEATMAP_CELL_PROBES,
    NET_REQUEST_LATENCY,
    NET_SERVER_SERVICE,
    ORD_PHI_LEVEL,
];

/// Declared event names.
pub const ALL_EVENTS: &[&str] = &[
    EVENT_SPAN,
    EVENT_BUILD_COMPLETE,
    EVENT_HOT_CELL,
    EVENT_WATCHDOG,
    EVENT_EXPERIMENT_COMPLETE,
    EVENT_NET_SERVER,
    EVENT_MTBENCH_ROW,
    EVENT_DYN_SWAP,
    EVENT_SLO_BREACH,
    EVENT_RECORDER_DUMP,
];

/// Is `name` (as it appears in a registry snapshot, labels included) a
/// declared series — an exact metric, a `{span}_ns` histogram of a
/// declared span, or a member of a declared labeled family?
pub fn is_declared_metric(name: &str) -> bool {
    let base = name.split('{').next().unwrap_or(name);
    if ALL_METRICS.contains(&base) {
        return true;
    }
    if let Some(span) = base.strip_suffix("_ns") {
        if ALL_SPANS.contains(&span) {
            return true;
        }
    }
    name.contains('{') && ALL_LABELED_FAMILIES.contains(&base)
}

/// Is `name` a declared structured-event name?
pub fn is_declared_event(name: &str) -> bool {
    ALL_EVENTS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_names_share_the_subsystem_prefix() {
        for name in [
            SERVE_BATCHES_TOTAL,
            SERVE_KEYS_TOTAL,
            SERVE_BATCH_DEPTH,
            SERVE_BATCH_LATENCY,
            SERVE_PLAN_ENTRIES_TOTAL,
            SERVE_PLAN_ACTIVE_TOTAL,
            SERVE_PLAN_SCRATCH_ALLOCS,
            SERVE_SHARDS,
            SERVE_SHARD_DEPTH,
        ] {
            assert!(name.starts_with("lcds_serve_"), "{name}");
        }
    }

    #[test]
    fn build_names_share_the_subsystem_prefix() {
        for name in [
            BUILD_TOTAL,
            BUILD_HASH_DRAW,
            BUILD_TABLE_LAYOUT,
            BUILD_HISTOGRAM_LAYOUT,
            BUILD_PERFECT_HASH,
            BUILD_HASH_RETRIES_TOTAL,
            BUILD_SEED_TRIALS_TOTAL,
            BUILD_SEED_TRIALS_MAX,
            BUILD_SEED_TRIALS_PER_BUCKET,
            BUILDS_TOTAL,
            BUILD_PAR_WORKERS,
        ] {
            assert!(name.starts_with("lcds_build"), "{name}");
        }
    }

    #[test]
    fn net_names_share_the_subsystem_prefix() {
        for name in [
            NET_CONNECTIONS_TOTAL,
            NET_CONNECTIONS_ACTIVE,
            NET_REQUESTS_TOTAL,
            NET_SHED_TOTAL,
            NET_QUEUE_DEPTH,
            NET_BYTES_IN_TOTAL,
            NET_BYTES_OUT_TOTAL,
            NET_REQUEST_LATENCY,
            NET_SERVER_QUEUE_WAIT,
            NET_SERVER_SERVICE,
            NET_SPAN_QUEUE,
            NET_SPAN_SERVICE,
            NET_SPAN_CLIENT,
        ] {
            assert!(name.starts_with("lcds_net_"), "{name}");
        }
        assert!(is_declared_metric(NET_SHED_TOTAL));
        assert!(is_declared_metric(NET_SERVER_QUEUE_WAIT));
        assert!(is_declared_metric(
            "lcds_net_request_latency_ns{op=\"bulk_contains\"}"
        ));
        assert!(is_declared_metric(
            "lcds_net_server_service_ns{op=\"bulk_contains\"}"
        ));
        // The latency families are label-only: bare names are not series.
        assert!(!is_declared_metric(NET_REQUEST_LATENCY));
        assert!(!is_declared_metric(NET_SERVER_SERVICE));
        // Net trace spans live in the trace buffer, not the registry.
        assert!(!is_declared_metric(NET_SPAN_QUEUE));
        assert!(is_declared_event(EVENT_NET_SERVER));
    }

    #[test]
    fn mtbench_names_share_the_subsystem_prefix() {
        for name in [
            MTBENCH_RUNS_TOTAL,
            MTBENCH_QPS,
            MTBENCH_PHI_HAT,
            MTBENCH_THREAD_NS,
            MTBENCH_BATCH_LATENCY,
            MTBENCH_CONTENDED_TOTAL,
            MTBENCH_GATED_TOTAL,
        ] {
            assert!(name.starts_with("lcds_mtbench_"), "{name}");
            assert!(is_declared_metric(name), "{name}");
        }
        assert!(is_declared_event(EVENT_MTBENCH_ROW));
    }

    #[test]
    fn dyn_names_share_the_subsystem_prefix() {
        for name in [
            DYN_INSERTS_TOTAL,
            DYN_REMOVES_TOTAL,
            DYN_FLUSHES_TOTAL,
            DYN_SWAPS_TOTAL,
            DYN_REBUILDS_TOTAL,
            DYN_GENERATION,
            DYN_DELTA_PENDING,
        ] {
            assert!(name.starts_with("lcds_dyn_"), "{name}");
            assert!(is_declared_metric(name), "{name}");
        }
        assert!(is_declared_event(EVENT_DYN_SWAP));
        // The gauge and the swap counter must stay distinct series.
        assert_ne!(DYN_GENERATION, DYN_SWAPS_TOTAL);
        assert!(!is_declared_metric("lcds_dyn_made_up_total"));
    }

    #[test]
    fn ord_names_share_the_subsystem_prefix() {
        for name in [
            ORD_BUILDS_TOTAL,
            ORD_KEYS,
            ORD_LEVELS,
            ORD_QUERIES_TOTAL,
            ORD_PROBES_TOTAL,
            ORD_BATCH_LATENCY,
        ] {
            assert!(name.starts_with("lcds_ord_"), "{name}");
            assert!(is_declared_metric(name), "{name}");
        }
        // Φ̂-per-level is label-only: the bare family name is not a series.
        assert!(ORD_PHI_LEVEL.starts_with("lcds_ord_"));
        assert!(!is_declared_metric(ORD_PHI_LEVEL));
        assert!(is_declared_metric("lcds_ord_phi_level{level=\"0\"}"));
        assert!(!is_declared_metric("lcds_ord_made_up_total"));
    }

    #[test]
    fn ts_and_slo_names_share_the_subsystem_prefix() {
        for name in [
            TS_WINDOWS_TOTAL,
            TS_WINDOW_SECONDS,
            TS_RING_LEN,
            TS_SAMPLE_NS,
            TS_RECORDER_BUNDLES_TOTAL,
        ] {
            assert!(name.starts_with("lcds_ts_"), "{name}");
            assert!(is_declared_metric(name), "{name}");
        }
        for name in [SLO_BREACHES_TOTAL, SLO_CLEARS_TOTAL, SLO_BREACHED] {
            assert!(name.starts_with("lcds_slo_"), "{name}");
            assert!(is_declared_metric(name), "{name}");
        }
        assert!(is_declared_event(EVENT_SLO_BREACH));
        assert!(is_declared_event(EVENT_RECORDER_DUMP));
        // The breach counter and the breach event must stay distinct
        // names, or an exporter would double-count transitions.
        assert_ne!(SLO_BREACHES_TOTAL, EVENT_SLO_BREACH);
        assert!(!is_declared_metric("lcds_ts_made_up_total"));
    }

    #[test]
    fn every_declared_metric_carries_the_lcds_prefix() {
        for name in ALL_METRICS
            .iter()
            .chain(ALL_SPANS)
            .chain(ALL_LABELED_FAMILIES)
        {
            assert!(name.starts_with("lcds_"), "{name}");
        }
    }

    #[test]
    fn declared_metric_matching_handles_spans_and_labels() {
        assert!(is_declared_metric(SERVE_KEYS_TOTAL));
        assert!(is_declared_metric("lcds_build_total_ns"));
        assert!(is_declared_metric("lcds_hot_cell_probes{cell=\"12\"}"));
        assert!(is_declared_metric("lcds_heatmap_cell_probes{cell=\"0\"}"));
        // A bare labeled-family name without labels is not a series.
        assert!(!is_declared_metric("lcds_hot_cell_probes"));
        assert!(!is_declared_metric("lcds_totally_made_up_total"));
        assert!(!is_declared_metric("lcds_unknown_span_ns"));
    }

    #[test]
    fn declared_event_matching_is_exact() {
        assert!(is_declared_event(EVENT_SPAN));
        assert!(is_declared_event(EVENT_WATCHDOG));
        assert!(!is_declared_event("made_up_event"));
    }
}

//! Offline stand-in for the `serde_json` surface this workspace uses:
//! a `Value` tree, a recursive `json!` (nested objects, arrays,
//! expressions), and placeholder `to_string`/`from_str`.

use std::collections::BTreeMap;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i128) }
        }
    )*};
}
impl_from_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_from_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
impl_from_ref!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, &str);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Copy + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().map(|&x| x.into()).collect())
    }
}
impl<T: Into<Value>> From<BTreeMap<String, T>> for Value {
    fn from(v: BTreeMap<String, T>) -> Value {
        Value::Object(v.into_iter().map(|(k, x)| (k, x.into())).collect())
    }
}
impl<T: Clone + Into<Value>> From<&BTreeMap<String, T>> for Value {
    fn from(v: &BTreeMap<String, T>) -> Value {
        Value::Object(v.iter().map(|(k, x)| (k.clone(), x.clone().into())).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(i) if *i == *other as i128)
            }
        }
    )*};
}
impl_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Int(i) if u64::try_from(*i).is_ok())
    }
    pub fn is_i64(&self) -> bool {
        matches!(self, Value::Int(i) if i64::try_from(*i).is_ok())
    }
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Float(_))
    }
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }
    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(i).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

// Mutable indexing, matching real serde_json: `v["k"] = x` auto-vivifies
// objects (a Null becomes an object first), panics on other types.
impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        match self {
            Value::Array(v) => &mut v[i],
            other => panic!("cannot index {other:?} with a usize"),
        }
    }
}

#[macro_export]
macro_rules! json_internal_object {
    ($m:ident ()) => {};
    ($m:ident ($k:literal : { $($v:tt)* } $(, $($rest:tt)*)?)) => {
        $m.insert($k.to_string(), $crate::json!({ $($v)* }));
        $crate::json_internal_object!($m ($($($rest)*)?));
    };
    ($m:ident ($k:literal : [ $($v:tt)* ] $(, $($rest:tt)*)?)) => {
        $m.insert($k.to_string(), $crate::json!([ $($v)* ]));
        $crate::json_internal_object!($m ($($($rest)*)?));
    };
    ($m:ident ($k:literal : $v:expr , $($rest:tt)*)) => {
        $m.insert($k.to_string(), $crate::Value::from($v));
        $crate::json_internal_object!($m ($($rest)*));
    };
    ($m:ident ($k:literal : $v:expr)) => {
        $m.insert($k.to_string(), $crate::Value::from($v));
    };
}

#[macro_export]
macro_rules! json_internal_array {
    ($out:ident ()) => {};
    ($out:ident ({ $($v:tt)* } $(, $($rest:tt)*)?)) => {
        $out.push($crate::json!({ $($v)* }));
        $crate::json_internal_array!($out ($($($rest)*)?));
    };
    ($out:ident ([ $($v:tt)* ] $(, $($rest:tt)*)?)) => {
        $out.push($crate::json!([ $($v)* ]));
        $crate::json_internal_array!($out ($($($rest)*)?));
    };
    ($out:ident ($v:expr , $($rest:tt)*)) => {
        $out.push($crate::Value::from($v));
        $crate::json_internal_array!($out ($($rest)*));
    };
    ($out:ident ($v:expr)) => {
        $out.push($crate::Value::from($v));
    };
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut m = ::std::collections::BTreeMap::new();
        $crate::json_internal_object!(m ($($tt)*));
        $crate::Value::Object(m)
    }};
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut v = ::std::vec::Vec::new();
        $crate::json_internal_array!(v ($($tt)*));
        $crate::Value::Array(v)
    }};
    ($e:expr) => { $crate::Value::from($e) };
}

/// Writes `s` as a JSON string literal, escaping like real serde_json
/// does. Used for both string values and object keys — keys can carry
/// quotes too (Prometheus-style labeled names such as `m{cell="7"}`).
fn write_json_str(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl Value {
    fn write(&self, f: &mut std::fmt::Formatter<'_>, indent: usize) -> std::fmt::Result {
        let pretty = f.alternate();
        let pad = |f: &mut std::fmt::Formatter<'_>, n: usize| -> std::fmt::Result {
            if pretty {
                write!(f, "\n{}", "  ".repeat(n))
            } else {
                Ok(())
            }
        };
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            Value::Str(s) => write_json_str(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    pad(f, indent + 1)?;
                    item.write(f, indent + 1)?;
                }
                if !items.is_empty() {
                    pad(f, indent)?;
                }
                write!(f, "]")
            }
            Value::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    pad(f, indent + 1)?;
                    write_json_str(f, k)?;
                    write!(f, ":")?;
                    if pretty {
                        write!(f, " ")?;
                    }
                    v.write(f, indent + 1)?;
                }
                if !m.is_empty() {
                    pad(f, indent)?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.write(f, 0)
    }
}

#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}
impl std::error::Error for Error {}

/// Serializes `Value` faithfully; any other type (the no-op `Serialize`
/// derive carries no data) degrades to `"{}"`.
pub fn to_string<T: std::any::Any>(value: &T) -> Result<String, Error> {
    match (value as &dyn std::any::Any).downcast_ref::<Value>() {
        Some(v) => Ok(v.to_string()),
        None => Ok("{}".to_string()),
    }
}

pub fn to_string_pretty<T: std::any::Any>(value: &T) -> Result<String, Error> {
    match (value as &dyn std::any::Any).downcast_ref::<Value>() {
        Some(v) => Ok(format!("{v:#}")),
        None => Ok("{}".to_string()),
    }
}

/// Parses into `Value` only; deserializing derive-based types is
/// unsupported offline (the `Deserialize` derive is a no-op).
pub fn from_str<T: std::any::Any>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s)?;
    match (Box::new(v) as Box<dyn std::any::Any>).downcast::<T>() {
        Ok(b) => Ok(*b),
        Err(_) => Err(Error("only Value deserialization is supported offline".into())),
    }
}

mod parse {
    use super::{Error, Value};
    use std::collections::BTreeMap;

    pub fn parse(s: &str) -> Result<Value, Error> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        ws(b, &mut i);
        if i != b.len() {
            return Err(Error(format!("trailing input at byte {i}")));
        }
        Ok(v)
    }

    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn eat(b: &[u8], i: &mut usize, c: u8) -> Result<(), Error> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(Error(format!("expected '{}' at byte {}", c as char, i)))
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, Error> {
        ws(b, i);
        match b.get(*i) {
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(string(b, i)?)),
            Some(b'[') => {
                *i += 1;
                let mut items = Vec::new();
                ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(value(b, i)?);
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("expected ',' or ']' at byte {i}"))),
                    }
                }
            }
            Some(b'{') => {
                *i += 1;
                let mut m = BTreeMap::new();
                ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    ws(b, i);
                    let k = string(b, i)?;
                    ws(b, i);
                    eat(b, i, b':')?;
                    m.insert(k, value(b, i)?);
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error(format!("expected ',' or '}}' at byte {i}"))),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            _ => Err(Error(format!("unexpected input at byte {i}"))),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, Error> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {i}")))
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, Error> {
        eat(b, i, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*i) {
                Some(b'"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {i}"))),
                    }
                    *i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(&b[*i..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    *i += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, Error> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        let mut float = false;
        if b.get(*i) == Some(&b'.') {
            float = true;
            *i += 1;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
        }
        if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
            float = true;
            *i += 1;
            if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
                *i += 1;
            }
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
        }
        let text = std::str::from_utf8(&b[start..*i]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number: {e}")))
        }
    }
}

//! Row layout of the §2.2 table and replica arithmetic.
//!
//! The table has `2d + ρ + 4` rows of `s` cells each:
//!
//! | rows                | content (column `j`)                              |
//! |---------------------|---------------------------------------------------|
//! | `0 .. d`            | coefficient `i` of `f`, replicated `s` times      |
//! | `d .. 2d`           | coefficient `i` of `g`, replicated `s` times      |
//! | `2d` (Z)            | `z[j mod r]`                                      |
//! | `2d+1` (GBAS)       | group-base-address `GBAS(j mod m)`                |
//! | `2d+2 .. 2d+2+ρ`    | histogram word `i` of group `j mod m`             |
//! | `2d+2+ρ` (header)   | per-bucket perfect-hash seeds, bucket-owned cells |
//! | `2d+3+ρ` (data)     | keys, placed by each bucket's perfect hash        |
//!
//! (The paper writes `2d + ρ + 2` rows by double-using row `2d` in the
//! query description — a known indexing slip in the extended abstract; the
//! explicit enum here is the intended structure. See DESIGN.md,
//! substitutions.)
//!
//! `m` divides `s`, so GBAS/histogram residues have exactly `s/m` replicas;
//! `r` need not divide `s`, so `z[i]` has `⌊s/r⌋` or `⌈s/r⌉` replicas and
//! queries sample uniformly among the *actual* copies via
//! [`Layout::replica_count`].

use crate::params::Params;

/// Row indices and replica arithmetic, derived from [`Params`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Independence degree `d`.
    pub d: u32,
    /// Histogram words per group ρ.
    pub rho: u32,
    /// Columns per row `s`.
    pub s: u64,
    /// Displacement classes `r`.
    pub r: u64,
    /// Groups `m`.
    pub m: u64,
}

impl Layout {
    /// Builds the layout for the given parameters.
    pub fn new(p: &Params) -> Layout {
        Layout {
            d: p.d as u32,
            rho: p.rho,
            s: p.s,
            r: p.r,
            m: p.m,
        }
    }

    /// Row of `f`'s `i`-th coefficient.
    #[inline]
    pub fn row_f(&self, i: u32) -> u32 {
        debug_assert!(i < self.d);
        i
    }

    /// Row of `g`'s `i`-th coefficient.
    #[inline]
    pub fn row_g(&self, i: u32) -> u32 {
        debug_assert!(i < self.d);
        self.d + i
    }

    /// Row of the displacement vector `z`.
    #[inline]
    pub fn row_z(&self) -> u32 {
        2 * self.d
    }

    /// Row of the group base addresses.
    #[inline]
    pub fn row_gbas(&self) -> u32 {
        2 * self.d + 1
    }

    /// Row of histogram word `i`.
    #[inline]
    pub fn row_hist(&self, i: u32) -> u32 {
        debug_assert!(i < self.rho);
        2 * self.d + 2 + i
    }

    /// Row of the per-bucket perfect-hash seeds.
    #[inline]
    pub fn row_header(&self) -> u32 {
        2 * self.d + 2 + self.rho
    }

    /// Row of the stored keys.
    #[inline]
    pub fn row_data(&self) -> u32 {
        2 * self.d + 3 + self.rho
    }

    /// Total rows `2d + ρ + 4`.
    #[inline]
    pub fn num_rows(&self) -> u32 {
        2 * self.d + self.rho + 4
    }

    /// Maximum probes a query makes: one per `f`/`g` coefficient row, one
    /// for `z`, one for GBAS, ρ histogram reads, one header and one data
    /// probe.
    #[inline]
    pub fn max_probes(&self) -> u32 {
        2 * self.d + self.rho + 4
    }

    /// How many columns `j ∈ [s]` satisfy `j ≡ residue (mod modulus)` —
    /// i.e. how many replicas a residue-indexed item has.
    #[inline]
    pub fn replica_count(&self, modulus: u64, residue: u64) -> u64 {
        debug_assert!(residue < modulus);
        // Columns residue, residue + modulus, ... below s.
        (self.s - residue).div_ceil(modulus)
    }

    /// The column of the `k`-th replica of `residue` (mod `modulus`).
    #[inline]
    pub fn replica_col(&self, modulus: u64, residue: u64, k: u64) -> u64 {
        debug_assert!(k < self.replica_count(modulus, residue));
        residue + k * modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Params, ParamsConfig};

    fn layout(n: u64) -> Layout {
        Layout::new(&Params::derive(n, &ParamsConfig::default()))
    }

    #[test]
    fn rows_are_contiguous_and_disjoint() {
        let l = layout(1000);
        let mut rows = Vec::new();
        for i in 0..l.d {
            rows.push(l.row_f(i));
        }
        for i in 0..l.d {
            rows.push(l.row_g(i));
        }
        rows.push(l.row_z());
        rows.push(l.row_gbas());
        for i in 0..l.rho {
            rows.push(l.row_hist(i));
        }
        rows.push(l.row_header());
        rows.push(l.row_data());
        let expected: Vec<u32> = (0..l.num_rows()).collect();
        assert_eq!(rows, expected, "every row used exactly once, in order");
    }

    #[test]
    fn probe_budget_matches_row_walk() {
        let l = layout(4096);
        assert_eq!(l.max_probes(), l.num_rows());
    }

    #[test]
    fn replica_counts_sum_to_s() {
        let l = layout(777);
        for modulus in [l.r, l.m] {
            let total: u64 = (0..modulus).map(|res| l.replica_count(modulus, res)).sum();
            assert_eq!(total, l.s, "modulus {modulus}");
        }
    }

    #[test]
    fn replica_counts_are_balanced() {
        let l = layout(12345);
        for modulus in [l.r, l.m] {
            let counts: Vec<u64> = (0..modulus)
                .map(|res| l.replica_count(modulus, res))
                .collect();
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(
                max - min <= 1,
                "modulus {modulus}: counts differ by {}",
                max - min
            );
        }
    }

    #[test]
    fn replica_cols_are_in_range_and_congruent() {
        let l = layout(500);
        for res in [0, 1, l.r - 1] {
            let count = l.replica_count(l.r, res);
            for k in [0, count / 2, count - 1] {
                let col = l.replica_col(l.r, res, k);
                assert!(col < l.s);
                assert_eq!(col % l.r, res);
            }
        }
    }

    #[test]
    fn m_divides_s_exactly() {
        let l = layout(2048);
        for res in 0..l.m.min(50) {
            assert_eq!(l.replica_count(l.m, res), l.s / l.m);
        }
    }
}

//! Bit-packed cell storage: cells of exactly `b` bits, `b ≤ 64`.
//!
//! The paper's model has `b = log₂ N`-bit cells (61 bits for this
//! repository's universe), while the working tables use whole `u64` words
//! for speed. [`BitTable`] is the bit-faithful container: it stores any
//! table at exactly `b` bits per cell (values crossing word boundaries),
//! so space claims can be audited in *bits*, not words. The core crate's
//! tests mirror a built dictionary into a `BitTable` to verify every cell
//! value genuinely fits in `b` bits (the sentinel is remapped to the one
//! spare value `2^61 − 1`, which is not a valid key).

/// A vector of `cells` values, each exactly `bits` wide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitTable {
    bits: u32,
    cells: u64,
    words: Vec<u64>,
}

impl BitTable {
    /// Allocates an all-zero table of `cells` × `bits`-bit values.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or > 64.
    pub fn new(cells: u64, bits: u32) -> BitTable {
        assert!((1..=64).contains(&bits), "bits must be in [1, 64]");
        let total_bits = cells
            .checked_mul(bits as u64)
            .expect("bit table size overflow");
        BitTable {
            bits,
            cells,
            words: vec![0u64; total_bits.div_ceil(64) as usize],
        }
    }

    /// Bits per cell.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of cells.
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Total storage in bits (`cells × bits`).
    pub fn total_bits(&self) -> u64 {
        self.cells * self.bits as u64
    }

    /// Reads cell `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: u64) -> u64 {
        assert!(i < self.cells, "cell {i} out of range");
        let bit = i * self.bits as u64;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let lo = self.words[word] >> off;
        let value = if off + self.bits <= 64 {
            lo
        } else {
            lo | (self.words[word + 1] << (64 - off))
        };
        if self.bits == 64 {
            value
        } else {
            value & ((1u64 << self.bits) - 1)
        }
    }

    /// Writes cell `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or `value` does not fit in `bits`.
    pub fn set(&mut self, i: u64, value: u64) {
        assert!(i < self.cells, "cell {i} out of range");
        if self.bits < 64 {
            assert!(
                value < (1u64 << self.bits),
                "value {value} does not fit in {} bits",
                self.bits
            );
        }
        let bit = i * self.bits as u64;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        self.words[word] &= !(mask << off);
        self.words[word] |= value << off;
        if off + self.bits > 64 {
            let spill = off + self.bits - 64;
            let hi_mask = (1u64 << spill) - 1;
            self.words[word + 1] &= !hi_mask;
            self.words[word + 1] |= value >> (64 - off);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_within_one_word() {
        let mut t = BitTable::new(10, 16);
        for i in 0..10 {
            t.set(i, (i * 1000 + 7) & 0xFFFF);
        }
        for i in 0..10 {
            assert_eq!(t.get(i), (i * 1000 + 7) & 0xFFFF);
        }
    }

    #[test]
    fn roundtrip_across_word_boundaries() {
        // 61-bit cells straddle words constantly.
        let mut t = BitTable::new(100, 61);
        let vals: Vec<u64> = (0..100u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1 << 61) - 1))
            .collect();
        for (i, &v) in vals.iter().enumerate() {
            t.set(i as u64, v);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(t.get(i as u64), v, "cell {i}");
        }
    }

    #[test]
    fn neighbors_are_not_disturbed() {
        let mut t = BitTable::new(5, 61);
        for i in 0..5 {
            t.set(i, i + 1);
        }
        t.set(2, (1 << 61) - 1);
        assert_eq!(t.get(1), 2);
        assert_eq!(t.get(3), 4);
        t.set(2, 0);
        assert_eq!(t.get(1), 2);
        assert_eq!(t.get(3), 4);
    }

    #[test]
    fn space_accounting() {
        let t = BitTable::new(1000, 61);
        assert_eq!(t.total_bits(), 61_000);
        // Underlying storage within one word of optimal.
        assert!(t.words.len() as u64 * 64 - t.total_bits() < 64);
    }

    #[test]
    fn full_width_cells() {
        let mut t = BitTable::new(3, 64);
        t.set(1, u64::MAX);
        assert_eq!(t.get(1), u64::MAX);
        assert_eq!(t.get(0), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        let mut t = BitTable::new(2, 8);
        t.set(0, 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let t = BitTable::new(2, 8);
        let _ = t.get(2);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(bits in 1u32..=64,
                          writes in proptest::collection::vec((0u64..64, 0u64..u64::MAX), 1..64)) {
            let mut t = BitTable::new(64, bits);
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let mut shadow = vec![0u64; 64];
            for &(i, v) in &writes {
                let v = v & mask;
                t.set(i, v);
                shadow[i as usize] = v;
            }
            for (i, &v) in shadow.iter().enumerate() {
                prop_assert_eq!(t.get(i as u64), v);
            }
        }
    }
}

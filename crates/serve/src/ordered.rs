//! The batched ordered-query engine: predecessor, rank, and range count
//! over an [`OrderedLcd`], chunked and (by config) parallel.
//!
//! Same charter as [`crate::engine`]: the probe-level work lives in the
//! dictionary's planned executor ([`lcds_ordered::OrdPlan`]); the engine
//! owns the serving *contract* — query `i`'s balancing randomness is
//! addressed by its global stream position `first_index + i`, never by
//! the chunk it landed in, so answers are bit-identical to the
//! sequential path at any batch size, thread count, schedule, or frame
//! split. That contract is what lets the TCP server slice one logical
//! stream across frames and connections and still answer exactly what a
//! direct engine call would.

use crate::engine::EngineConfig;
use lcds_cellprobe::sink::{NullSink, ProbeSink};
use lcds_ordered::{with_ord_scratch, OrdPlan, OrderedLcd};
use rayon::prelude::*;
use std::time::Instant;

/// A long-lived ordered serving handle: the dictionary, the query seed,
/// and the chunking config, with non-consuming accessors for front ends
/// (CLI run headers, the TCP `Stats` opcode).
#[derive(Clone, Debug)]
pub struct OrderedEngine {
    dict: OrderedLcd,
    seed: u64,
    cfg: EngineConfig,
}

/// One observed chunk: trace-sampled sink, batch wall time into
/// [`ORD_BATCH_LATENCY`](lcds_obs::names::ORD_BATCH_LATENCY).
fn observed<F>(batch_index: u64, work: F) -> Vec<u64>
where
    F: FnOnce(&mut OrdPlan, &mut dyn ProbeSink, &mut Vec<u64>),
{
    let start = if lcds_obs::enabled() {
        Some(Instant::now())
    } else {
        None
    };
    let mut out = Vec::new();
    match lcds_obs::trace::try_batch_trace(0, batch_index) {
        Some(mut trace) => with_ord_scratch(|p| work(p, &mut trace, &mut out)),
        None => with_ord_scratch(|p| work(p, &mut NullSink, &mut out)),
    }
    if let Some(t0) = start {
        lcds_obs::global()
            .histogram(lcds_obs::names::ORD_BATCH_LATENCY)
            .record(t0.elapsed().as_nanos() as u64);
    }
    out
}

impl OrderedEngine {
    /// Engine over one ordered dictionary.
    pub fn new(dict: OrderedLcd, seed: u64, cfg: EngineConfig) -> OrderedEngine {
        OrderedEngine { dict, seed, cfg }
    }

    /// The served dictionary.
    pub fn dict(&self) -> &OrderedLcd {
        &self.dict
    }

    /// Stored keys.
    pub fn key_count(&self) -> usize {
        self.dict.len()
    }

    /// Cells across all level rows.
    pub fn num_cells(&self) -> u64 {
        lcds_cellprobe::CellProbeDict::num_cells(&self.dict)
    }

    /// Per-query probe bound (`B` words per level).
    pub fn max_probes(&self) -> u32 {
        lcds_cellprobe::CellProbeDict::max_probes(&self.dict)
    }

    /// The query seed every answer is deterministic in.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The engine tuning knobs.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Generic chunked dispatch: `op` runs one chunk's plan with the
    /// chunk's global first index. `T` is `u64` for key-addressed ops and
    /// `(u64, u64)` for range pairs — the *item* index is the stream
    /// position either way.
    fn run_op<T, F>(&self, items: &[T], first_index: u64, op: F) -> Vec<u64>
    where
        T: Sync,
        F: Fn(&mut OrdPlan, &[T], u64, &mut dyn ProbeSink, &mut Vec<u64>) + Sync,
    {
        let batch = self.cfg.batch.max(1);
        let run_chunk = |(c, chunk): (usize, &[T])| {
            observed(c as u64, |p, sink, out| {
                op(p, chunk, first_index + (c * batch) as u64, sink, out)
            })
        };
        if !self.cfg.parallel || items.len() <= batch {
            items
                .chunks(batch)
                .enumerate()
                .flat_map(run_chunk)
                .collect()
        } else {
            items
                .par_chunks(batch)
                .enumerate()
                .flat_map_iter(run_chunk)
                .collect()
        }
    }

    /// Bulk predecessor of the stream slice starting at global position
    /// `first_index`: `out[i]` is the largest stored key
    /// `≤ queries[i]`, or [`lcds_ordered::NO_PREDECESSOR`].
    pub fn bulk_predecessor_at(&self, queries: &[u64], first_index: u64) -> Vec<u64> {
        let seed = self.seed;
        self.run_op(queries, first_index, |p, chunk, fi, sink, out| {
            p.run_predecessor(&self.dict, chunk, fi, seed, sink, out)
        })
    }

    /// Whole-stream [`OrderedEngine::bulk_predecessor_at`] (position 0).
    pub fn bulk_predecessor(&self, queries: &[u64]) -> Vec<u64> {
        self.bulk_predecessor_at(queries, 0)
    }

    /// Bulk strict rank: `out[i] = #{k < queries[i]}`.
    pub fn bulk_rank_at(&self, queries: &[u64], first_index: u64) -> Vec<u64> {
        let seed = self.seed;
        self.run_op(queries, first_index, |p, chunk, fi, sink, out| {
            p.run_rank(&self.dict, chunk, fi, seed, sink, out)
        })
    }

    /// Whole-stream [`OrderedEngine::bulk_rank_at`] (position 0).
    pub fn bulk_rank(&self, queries: &[u64]) -> Vec<u64> {
        self.bulk_rank_at(queries, 0)
    }

    /// Bulk inclusive range count: `out[i] = #{lo_i ≤ k ≤ hi_i}`
    /// (0 for inverted pairs).
    pub fn bulk_range_count_at(&self, ranges: &[(u64, u64)], first_index: u64) -> Vec<u64> {
        let seed = self.seed;
        self.run_op(ranges, first_index, |p, chunk, fi, sink, out| {
            p.run_range_count(&self.dict, chunk, fi, seed, sink, out)
        })
    }

    /// Whole-stream [`OrderedEngine::bulk_range_count_at`] (position 0).
    pub fn bulk_range_count(&self, ranges: &[(u64, u64)]) -> Vec<u64> {
        self.bulk_range_count_at(ranges, 0)
    }

    /// Measures the hottest-cell probe share Φ̂ *per level row* over a
    /// query sample (sequential — sinks are not thread-safe), publishes
    /// each as `lcds_ord_phi_level{level="ℓ"}` when telemetry is on, and
    /// returns the levels leaf-first. This is the per-level view of the
    /// contention story: under the adversarial scheme the root level's
    /// Φ̂ approaches its `1/n_top` ceiling while the replicated scheme
    /// holds every level near `1/s`.
    pub fn phi_per_level(&self, queries: &[u64]) -> Vec<f64> {
        let mut sink = lcds_cellprobe::CountingSink::new(self.num_cells());
        with_ord_scratch(|p| {
            p.run_rank(
                &self.dict,
                queries,
                0,
                self.seed,
                &mut sink,
                &mut Vec::new(),
            )
        });
        let cols = self.dict.table().cols() as usize;
        let counts = sink.counts();
        let phis: Vec<f64> = counts
            .chunks(cols)
            .map(|row| {
                let total: u64 = row.iter().sum();
                let max = row.iter().copied().max().unwrap_or(0);
                if total == 0 {
                    0.0
                } else {
                    max as f64 / total as f64
                }
            })
            .collect();
        if lcds_obs::enabled() {
            let reg = lcds_obs::global();
            for (l, &phi) in phis.iter().enumerate() {
                reg.gauge(&format!(
                    "{}{{level=\"{l}\"}}",
                    lcds_obs::names::ORD_PHI_LEVEL
                ))
                .set(phi);
            }
        }
        phis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::rngutil::StreamRng;
    use lcds_ordered::{build_seeded, OrdScheme, NO_PREDECESSOR};

    fn engine(n: u64, batch: usize, parallel: bool) -> OrderedEngine {
        let keys: Vec<u64> = (0..n).map(|i| 6 * i + 3).collect();
        let dict = build_seeded(&keys, OrdScheme::Replicated).unwrap();
        OrderedEngine::new(dict, 0xE11E, EngineConfig { batch, parallel })
    }

    #[test]
    fn engine_matches_the_sequential_dictionary_path() {
        let e = engine(1500, 256, true);
        let queries: Vec<u64> = (0..4000u64).map(|i| i * 3 + 1).collect();
        let pred = e.bulk_predecessor(&queries);
        let rank = e.bulk_rank(&queries);
        for (i, &q) in queries.iter().enumerate() {
            let mut rng = StreamRng::for_stream(e.seed(), i as u64);
            assert_eq!(
                pred[i],
                e.dict()
                    .predecessor(q, &mut rng, &mut NullSink)
                    .unwrap_or(NO_PREDECESSOR),
                "pred q={q}"
            );
            let mut rng = StreamRng::for_stream(e.seed(), i as u64);
            assert_eq!(rank[i], e.dict().rank(q, &mut rng, &mut NullSink));
        }
    }

    #[test]
    fn answers_do_not_depend_on_batch_size_or_parallelism() {
        let queries: Vec<u64> = (0..2500u64).map(|i| i * 5).collect();
        let ranges: Vec<(u64, u64)> = queries.iter().map(|&q| (q, q + 100)).collect();
        let base = engine(900, 64, false);
        let (bp, br, bc) = (
            base.bulk_predecessor(&queries),
            base.bulk_rank(&queries),
            base.bulk_range_count(&ranges),
        );
        for batch in [1usize, 17, 1024, 1 << 14] {
            for parallel in [false, true] {
                let e = engine(900, batch, parallel);
                assert_eq!(e.bulk_predecessor(&queries), bp, "batch={batch}");
                assert_eq!(e.bulk_rank(&queries), br, "batch={batch}");
                assert_eq!(e.bulk_range_count(&ranges), bc, "batch={batch}");
            }
        }
    }

    #[test]
    fn offset_slices_agree_with_the_whole_stream_run() {
        let e = engine(700, 64, true);
        let queries: Vec<u64> = (0..1200u64).map(|i| i * 7 + 2).collect();
        let ranges: Vec<(u64, u64)> = queries.iter().map(|&q| (q / 2, q)).collect();
        let full_p = e.bulk_predecessor(&queries);
        let full_c = e.bulk_range_count(&ranges);
        for split in [0usize, 1, 63, 64, 65, 1000, queries.len()] {
            let (a, b) = queries.split_at(split.min(queries.len()));
            let mut stitched = e.bulk_predecessor_at(a, 0);
            stitched.extend(e.bulk_predecessor_at(b, a.len() as u64));
            assert_eq!(stitched, full_p, "pred split at {split}");

            let (ra, rb) = ranges.split_at(split.min(ranges.len()));
            let mut stitched = e.bulk_range_count_at(ra, 0);
            stitched.extend(e.bulk_range_count_at(rb, ra.len() as u64));
            assert_eq!(stitched, full_c, "range split at {split}");
        }
    }

    #[test]
    fn accessors_match_the_structure_and_empty_inputs_work() {
        let e = engine(513, 0, true); // batch=0 is clamped, not a panic
        assert_eq!(e.key_count(), 513);
        assert_eq!(e.num_cells(), 513 * e.dict().num_levels() as u64);
        assert_eq!(e.max_probes() as usize, 8 * e.dict().num_levels());
        assert!(e.bulk_predecessor(&[]).is_empty());
        assert!(e.bulk_range_count(&[]).is_empty());
        assert_eq!(e.bulk_predecessor(&[2]), vec![NO_PREDECESSOR]);
    }

    #[test]
    fn phi_per_level_separates_the_schemes_at_the_root() {
        let keys: Vec<u64> = (0..2048u64).map(|i| 2 * i).collect();
        let queries: Vec<u64> = (0..4096u64).collect();
        let cfg = EngineConfig::default();
        let rep = OrderedEngine::new(build_seeded(&keys, OrdScheme::Replicated).unwrap(), 1, cfg);
        let adv = OrderedEngine::new(build_seeded(&keys, OrdScheme::Adversarial).unwrap(), 1, cfg);
        let phi_rep = rep.phi_per_level(&queries);
        let phi_adv = adv.phi_per_level(&queries);
        assert_eq!(phi_rep.len(), rep.dict().num_levels());
        let top = phi_rep.len() - 1;
        // The pinned root replica concentrates the whole root row's
        // traffic on n_top cells; replication spreads it over ~n.
        assert!(
            phi_adv[top] > 8.0 * phi_rep[top],
            "adv {} vs rep {}",
            phi_adv[top],
            phi_rep[top]
        );
    }
}

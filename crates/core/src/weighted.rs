//! The distribution-aware dictionary: what the builder can do when it
//! *knows* the query distribution.
//!
//! The model (§1.1) deliberately lets the table `T_{S,q}` depend on the
//! query distribution `q` — only the *query algorithm* is oblivious. The
//! §2 construction never uses that freedom (uniform positives make every
//! key equally hot). This module exercises it: each group's storage block
//! (all of its buckets' perfect-hash tables) is replicated
//! `γ_g ∝ group query mass` times, and the triple
//! `(base address, block size, γ_g)` is bit-packed into the **same GBAS
//! cell the query already reads**, so the oblivious query algorithm learns
//! the replication degree for free and lands on a uniformly random copy.
//!
//! ## What this flattens — and what it provably cannot
//!
//! Under a skewed known distribution (experiment F6: Zipf(1.5) drives the
//! oblivious dictionary to ~10⁵× optimal), the binding cells are the hot
//! keys' header/data cells. γ-replication spreads exactly those, pulling
//! the ratio down to the **metadata floor**: the GBAS/histogram cells of a
//! group with query mass `w` keep contention `w·m/s` (their replication is
//! the fixed `s/m` of the residue layout), and the `z` row keeps
//! `class-mass·r/s`. Flattening *those* would require the query algorithm
//! to learn where a hot group's extra metadata lives — i.e. to learn `q` —
//! and §3's Theorem 13 is precisely the proof that no balanced scheme does
//! that in `o(log log n)` probes. The residual measured in experiment F9
//! is the lower bound made visible.
//!
//! ## Layout
//!
//! Rows as the oblivious dictionary (`f`/`g`, `z`, GBAS, ρ histogram rows),
//! then a [`REGION_ROWS`]-row header region and an equal data region.
//! Group `g`'s block occupies `[base_g, base_g + size_g)` repeated `γ_g`
//! times; region offsets are contiguous in global cell-id space, so every
//! probe distribution remains an arithmetic progression.

use crate::builder::BuildError;
use crate::histogram;
use crate::params::{Params, ParamsConfig};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::exact::{ExactProbes, ProbeSet};
use lcds_cellprobe::rngutil::uniform_below;
use lcds_cellprobe::sink::ProbeSink;
use lcds_cellprobe::table::Table;
use lcds_hashing::family::{HashFamily, HashFunction};
use lcds_hashing::perfect::{PerfectHash, PerfectHashBuilder};
use lcds_hashing::poly::{horner, PolyFamily, PolyHash};
use lcds_hashing::MAX_KEY;
use rand::{Rng, RngCore};

/// Sentinel for unowned cells (shared with the oblivious dictionary).
pub use crate::dict::EMPTY;
use crate::dict::MAX_D;

/// Rows per storage region; the region holds `REGION_ROWS · s` cells, of
/// which `Σ size_g ≤ 2s` is the base copy and the rest is replication
/// budget distributed by group mass.
pub const REGION_ROWS: u32 = 6;

/// Per-group squared-load cap (`size_g = Σ_{i ∈ group} ℓ_i² ≤
/// LOAD_SQ_FACTOR · group_size`), part of the weighted acceptance property.
const LOAD_SQ_FACTOR: u64 = 2;

/// Bit widths of the packed GBAS descriptor `(base, size, γ)`.
///
/// The packing uses the full 64-bit word (26 + 19 + 19), so the weighted
/// *extension* is word-faithful rather than `b = 61`-bit-faithful like the
/// §2 dictionary; shaving it to 61 bits would cost one bit of each field.
const BASE_BITS: u32 = 26;
/// Bits for the block size.
const SIZE_BITS: u32 = 19;
/// Bits for the replica count.
const GAMMA_BITS: u32 = 19;

/// Packs a group descriptor into one word.
#[inline]
fn pack_group(base: u64, size: u64, gamma: u64) -> u64 {
    debug_assert!(base < (1 << BASE_BITS));
    debug_assert!(size < (1 << SIZE_BITS));
    debug_assert!(gamma >= 1 && gamma < (1 << GAMMA_BITS));
    base | (size << BASE_BITS) | (gamma << (BASE_BITS + SIZE_BITS))
}

/// Inverse of [`pack_group`].
#[inline]
fn unpack_group(word: u64) -> (u64, u64, u64) {
    (
        word & ((1 << BASE_BITS) - 1),
        (word >> BASE_BITS) & ((1 << SIZE_BITS) - 1),
        (word >> (BASE_BITS + SIZE_BITS)) & ((1 << GAMMA_BITS) - 1),
    )
}

/// Derived parameters of the weighted variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedParams {
    /// The underlying oblivious parameters (including ρ — histograms are
    /// loads-only, exactly as in §2.2).
    pub base: Params,
    /// Cells in each storage region (`REGION_ROWS · s`).
    pub region_cells: u64,
}

impl WeightedParams {
    /// Derives weighted parameters for `n` keys.
    pub fn derive(n: u64, config: &ParamsConfig) -> WeightedParams {
        let base = Params::derive(n, config);
        let region_cells = REGION_ROWS as u64 * base.s;
        assert!(
            region_cells < (1 << BASE_BITS),
            "n outside the packed-descriptor range"
        );
        assert!(
            LOAD_SQ_FACTOR * base.group_size < (1 << SIZE_BITS),
            "group blocks outside the packed-descriptor range"
        );
        WeightedParams { base, region_cells }
    }

    /// Total table rows: `2d + 2 + ρ + 2·REGION_ROWS`.
    pub fn num_rows(&self) -> u32 {
        2 * self.base.d as u32 + 2 + self.base.rho + 2 * REGION_ROWS
    }

    /// First row of the header region.
    fn header_base(&self) -> u32 {
        2 * self.base.d as u32 + 2 + self.base.rho
    }

    /// First row of the data region.
    fn data_base(&self) -> u32 {
        self.header_base() + REGION_ROWS
    }

    /// Probes per query — identical to the oblivious walk.
    pub fn max_probes(&self) -> u32 {
        2 * self.base.d as u32 + self.base.rho + 4
    }
}

/// Construction statistics for the weighted build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WeightedBuildStats {
    /// Rejected `(f, g, z)` draws.
    pub hash_retries: u32,
    /// Total storage cells owned (`Σ γ_g · size_g`).
    pub region_used: u64,
    /// Largest replica count granted.
    pub gamma_max: u64,
}

/// The distribution-aware dictionary.
#[derive(Clone, Debug)]
pub struct WeightedDict {
    wp: WeightedParams,
    table: Table,
    keys: Vec<u64>,
    /// Normalized per-key weights, aligned with `keys`.
    weights: Vec<f64>,
    f: PolyHash,
    g: PolyHash,
    z: Vec<u64>,
    stats: WeightedBuildStats,
}

/// Builds the weighted dictionary; `weights[i]` is the query mass of
/// `keys[i]` (any non-negative values; normalized internally).
pub fn build_weighted<R: Rng + ?Sized>(
    keys: &[u64],
    weights: &[f64],
    config: &ParamsConfig,
    rng: &mut R,
) -> Result<WeightedDict, BuildError> {
    if keys.is_empty() {
        return Err(BuildError::EmptyKeySet);
    }
    assert_eq!(keys.len(), weights.len(), "one weight per key");
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be non-negative and finite"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total query mass must be positive");

    // Sort keys, carrying weights along.
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_unstable_by_key(|&i| keys[i]);
    let sorted: Vec<u64> = order.iter().map(|&i| keys[i]).collect();
    let sorted_w: Vec<f64> = order.iter().map(|&i| weights[i] / total).collect();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(BuildError::DuplicateKey(w[0]));
        }
    }
    if let Some(&bad) = sorted.iter().find(|&&k| k > MAX_KEY) {
        return Err(BuildError::KeyOutOfRange(bad));
    }

    let n = sorted.len() as u64;
    let wp = WeightedParams::derive(n, config);
    let p = wp.base;

    // Acceptance: group loads within histogram capacity AND per-group Σℓ²
    // within the base share of the region budget.
    let mut accepted = None;
    let mut retries = 0u32;
    for _ in 0..config.max_hash_retries {
        let f = PolyFamily::new(p.d, p.s).sample(rng);
        let g = PolyFamily::new(p.d, p.r).sample(rng);
        let z: Vec<u64> = (0..p.r).map(|_| rng.random_range(0..p.s)).collect();

        let mut bucket = Vec::with_capacity(sorted.len());
        let mut bucket_loads = vec![0u32; p.s as usize];
        let mut group_loads = vec![0u32; p.m as usize];
        for &x in &sorted {
            let t = f.eval(x) + z[g.eval(x) as usize];
            let hx = if t >= p.s { t - p.s } else { t };
            bucket_loads[hx as usize] += 1;
            group_loads[(hx % p.m) as usize] += 1;
            bucket.push(hx);
        }
        if group_loads.iter().any(|&l| l as u64 > p.group_load_cap) {
            retries += 1;
            continue;
        }
        let mut group_sq = vec![0u64; p.m as usize];
        for (b, &l) in bucket_loads.iter().enumerate() {
            group_sq[b % p.m as usize] += (l as u64) * (l as u64);
        }
        if group_sq
            .iter()
            .any(|&sq| sq > LOAD_SQ_FACTOR * p.group_size)
        {
            retries += 1;
            continue;
        }
        accepted = Some((f, g, z, bucket, bucket_loads, group_sq));
        break;
    }
    let (f, g, z, bucket, bucket_loads, group_sq) =
        accepted.ok_or(BuildError::HashRetriesExhausted(config.max_hash_retries))?;

    // Group query masses and replica counts: the replication budget
    // (region minus one copy of everything) is split by mass; each group
    // gets γ = 1 + ⌊budget_g / size_g⌋ copies of its whole block.
    let mut group_mass = vec![0.0f64; p.m as usize];
    for (i, &b) in bucket.iter().enumerate() {
        group_mass[(b % p.m) as usize] += sorted_w[i];
    }
    let total_sq: u64 = group_sq.iter().sum();
    let extra_total = wp.region_cells - total_sq;
    let gamma_cap = (1u64 << GAMMA_BITS) - 1;

    let mut gamma = vec![1u64; p.m as usize];
    let mut gbas = vec![0u64; p.m as usize];
    let mut stats = WeightedBuildStats {
        hash_retries: retries,
        ..Default::default()
    };
    let mut cursor = 0u64;
    for group in 0..p.m as usize {
        gbas[group] = cursor;
        let size = group_sq[group];
        if size > 0 {
            let budget = (extra_total as f64 * group_mass[group]).floor() as u64;
            gamma[group] = (1 + budget / size).min(gamma_cap);
            stats.gamma_max = stats.gamma_max.max(gamma[group]);
        }
        cursor += gamma[group] * size;
    }
    stats.region_used = cursor;
    debug_assert!(cursor <= wp.region_cells);

    // Keys by bucket (counting sort).
    let mut offsets = vec![0usize; p.s as usize + 1];
    for &b in &bucket {
        offsets[b as usize + 1] += 1;
    }
    for i in 0..p.s as usize {
        offsets[i + 1] += offsets[i];
    }
    let mut by_bucket = vec![0u64; sorted.len()];
    {
        let mut cursor = offsets.clone();
        for (i, &x) in sorted.iter().enumerate() {
            let b = bucket[i] as usize;
            by_bucket[cursor[b]] = x;
            cursor[b] += 1;
        }
    }

    // Lay out the table.
    let mut table = Table::new(wp.num_rows(), p.s, EMPTY);
    let fw = f.words();
    let gw = g.words();
    for i in 0..p.d as u32 {
        for j in 0..p.s {
            table.write(i, j, fw[i as usize]);
            table.write(p.d as u32 + i, j, gw[i as usize]);
        }
    }
    let row_z = 2 * p.d as u32;
    let row_gbas = row_z + 1;
    for j in 0..p.s {
        table.write(row_z, j, z[(j % p.r) as usize]);
        let g_idx = (j % p.m) as usize;
        table.write(
            row_gbas,
            j,
            pack_group(gbas[g_idx], group_sq[g_idx], gamma[g_idx]),
        );
    }

    // Histograms: loads-only, exactly as §2.2.
    let mut loads_buf = vec![0u32; p.group_size as usize];
    for group in 0..p.m {
        for k in 0..p.group_size {
            loads_buf[k as usize] = bucket_loads[p.bucket_of(group, k) as usize];
        }
        let words = histogram::encode(&loads_buf, p.rho)
            .expect("group-load cap bounds the histogram by construction");
        for (w, &word) in words.iter().enumerate() {
            let row = row_gbas + 1 + w as u32;
            let mut j = group;
            while j < p.s {
                table.write(row, j, word);
                j += p.m;
            }
        }
    }

    // Header + data regions: γ copies of each group block.
    let ph_builder = PerfectHashBuilder::default();
    let header_base = wp.header_base();
    let data_base = wp.data_base();
    let write_region = |table: &mut Table, base_row: u32, offset: u64, value: u64| {
        table.write(base_row + (offset / p.s) as u32, offset % p.s, value);
    };
    for group in 0..p.m as usize {
        let size = group_sq[group];
        if size == 0 {
            continue;
        }
        let mut off_in_block = 0u64;
        for k in 0..p.group_size {
            let b = p.bucket_of(group as u64, k) as usize;
            let l = bucket_loads[b] as u64;
            if l == 0 {
                continue;
            }
            let range = l * l;
            let bucket_keys = &by_bucket[offsets[b]..offsets[b + 1]];
            let found =
                ph_builder
                    .build(bucket_keys, range, rng)
                    .ok_or(BuildError::PerfectHashFailed {
                        bucket: b as u64,
                        load: l as u32,
                    })?;
            for copy in 0..gamma[group] {
                let block = gbas[group] + copy * size + off_in_block;
                for j in block..block + range {
                    write_region(&mut table, header_base, j, found.hash.seed());
                }
                for &x in bucket_keys {
                    write_region(&mut table, data_base, block + found.hash.eval(x), x);
                }
            }
            off_in_block += range;
        }
        debug_assert_eq!(off_in_block, size);
    }

    Ok(WeightedDict {
        wp,
        table,
        keys: sorted,
        weights: sorted_w,
        f,
        g,
        z,
        stats,
    })
}

/// What `resolve` derives about a query (no probes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedResolution {
    /// Displacement class `g(x)`.
    pub gx: u64,
    /// Bucket `h(x)`.
    pub h: u64,
    /// Group `h'(x)`.
    pub hp: u64,
    /// Region offset of copy 0 of the group block.
    pub base: u64,
    /// Block size `Σℓ²` of the group.
    pub size: u64,
    /// Replicas γ of the group block.
    pub gamma: u64,
    /// Bucket offset within a block copy.
    pub off: u64,
    /// Bucket load `ℓ`.
    pub load: u32,
    /// Within-bucket slot `h*(x)` (valid when `load > 0`).
    pub slot: u64,
}

impl WeightedDict {
    /// The weighted parameters.
    pub fn weighted_params(&self) -> &WeightedParams {
        &self.wp
    }

    /// The sorted stored keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Normalized weights, aligned with [`WeightedDict::keys`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Construction statistics.
    pub fn stats(&self) -> &WeightedBuildStats {
        &self.stats
    }

    fn region_peek(&self, base_row: u32, offset: u64) -> u64 {
        let s = self.wp.base.s;
        self.table.peek(base_row + (offset / s) as u32, offset % s)
    }

    fn region_read(&self, base_row: u32, offset: u64, sink: &mut dyn ProbeSink) -> u64 {
        let s = self.wp.base.s;
        self.table
            .read(base_row + (offset / s) as u32, offset % s, sink)
    }

    /// Analytic query resolution from construction-side state.
    pub fn resolve(&self, x: u64) -> WeightedResolution {
        let p = &self.wp.base;
        let gx = self.g.eval(x);
        let t = self.f.eval(x) + self.z[gx as usize];
        let h = if t >= p.s { t - p.s } else { t };
        let hp = h % p.m;
        let k_star = h / p.m;
        let (base, size, gamma) = unpack_group(self.table.peek(2 * p.d as u32 + 1, hp));
        let mut hist = [0u64; 16];
        for w in 0..p.rho {
            hist[w as usize] = self.table.peek(2 * p.d as u32 + 2 + w, hp);
        }
        let (off, load) = histogram::locate(&hist[..p.rho as usize], k_star);
        let slot = if load == 0 {
            0
        } else {
            let seed = self.region_peek(self.wp.header_base(), base + off);
            PerfectHash::from_seed(seed, (load as u64) * (load as u64)).eval(x)
        };
        WeightedResolution {
            gx,
            h,
            hp,
            base,
            size,
            gamma,
            off,
            load,
            slot,
        }
    }

    /// Membership via the analytic path.
    pub fn resolve_contains(&self, x: u64) -> bool {
        let r = self.resolve(x);
        r.load > 0 && self.region_peek(self.wp.data_base(), r.base + r.off + r.slot) == x
    }
}

impl CellProbeDict for WeightedDict {
    fn name(&self) -> String {
        "low-contention-weighted".into()
    }

    fn contains(&self, x: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
        let p = &self.wp.base;
        let d = p.d;
        let mut fw = [0u64; MAX_D];
        let mut gw = [0u64; MAX_D];
        for i in 0..d as u32 {
            fw[i as usize] = self.table.read(i, uniform_below(rng, p.s), sink);
            gw[i as usize] = self.table.read(d as u32 + i, uniform_below(rng, p.s), sink);
        }
        let gx = horner(&gw[..d], x) % p.r;
        let z_copies = (p.s - gx).div_ceil(p.r);
        let z_col = gx + p.r * uniform_below(rng, z_copies);
        let zg = self.table.read(2 * d as u32, z_col, sink);

        let t = horner(&fw[..d], x) % p.s + zg;
        let h = if t >= p.s { t - p.s } else { t };
        let hp = h % p.m;
        let k_star = h / p.m;

        let reps = p.group_size;
        let gbas_col = hp + p.m * uniform_below(rng, reps);
        let (base, size, gamma) = unpack_group(self.table.read(2 * d as u32 + 1, gbas_col, sink));
        let mut hist = [0u64; 16];
        for w in 0..p.rho {
            let col = hp + p.m * uniform_below(rng, reps);
            hist[w as usize] = self.table.read(2 * d as u32 + 2 + w, col, sink);
        }
        let (off, load) = histogram::locate(&hist[..p.rho as usize], k_star);
        if load == 0 {
            return false;
        }
        let range = (load as u64) * (load as u64);
        // Header: a random block copy, at a key-determined inner slot (all
        // owned header cells hold the same seed).
        let copy_h = uniform_below(rng, gamma);
        let seed = self.region_read(
            self.wp.header_base(),
            base + copy_h * size + off + x % range,
            sink,
        );
        let ph = PerfectHash::from_seed(seed, range);
        // Data: an independent random copy, then the perfect-hash slot.
        let copy_d = uniform_below(rng, gamma);
        let data = self.region_read(
            self.wp.data_base(),
            base + copy_d * size + off + ph.eval(x),
            sink,
        );
        data == x
    }

    fn num_cells(&self) -> u64 {
        self.table.num_cells()
    }

    fn max_probes(&self) -> u32 {
        self.wp.max_probes()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

impl ExactProbes for WeightedDict {
    fn probe_sets(&self, x: u64, out: &mut Vec<ProbeSet>) {
        let p = &self.wp.base;
        let s = p.s;
        let row_cells = |row: u32| row as u64 * s;
        let res = self.resolve(x);

        for i in 0..p.d as u32 {
            out.push(ProbeSet::range(row_cells(i), s));
            out.push(ProbeSet::range(row_cells(p.d as u32 + i), s));
        }
        out.push(ProbeSet::strided(
            row_cells(2 * p.d as u32) + res.gx,
            p.r,
            (s - res.gx).div_ceil(p.r),
        ));
        out.push(ProbeSet::strided(
            row_cells(2 * p.d as u32 + 1) + res.hp,
            p.m,
            p.group_size,
        ));
        for w in 0..p.rho {
            out.push(ProbeSet::strided(
                row_cells(2 * p.d as u32 + 2 + w) + res.hp,
                p.m,
                p.group_size,
            ));
        }
        if res.load > 0 {
            let range = (res.load as u64) * (res.load as u64);
            // Region offsets are contiguous in global id space; block
            // copies are `size` apart.
            out.push(ProbeSet::strided(
                row_cells(self.wp.header_base()) + res.base + res.off + x % range,
                res.size,
                res.gamma,
            ));
            out.push(ProbeSet::strided(
                row_cells(self.wp.data_base()) + res.base + res.off + res.slot,
                res.size,
                res.gamma,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::dist::QueryPool;
    use lcds_cellprobe::exact::exact_contention;
    use lcds_cellprobe::sink::{NullSink, TraceSink};
    use lcds_hashing::mix::derive;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn keyset(n: u64, salt: u64) -> Vec<u64> {
        let mut set = HashSet::new();
        let mut i = 0u64;
        while (set.len() as u64) < n {
            set.insert(derive(salt, i) % MAX_KEY);
            i += 1;
        }
        set.into_iter().collect()
    }

    fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
        (0..n).map(|i| ((i + 1) as f64).powf(-theta)).collect()
    }

    fn build(n: u64, salt: u64, theta: f64) -> WeightedDict {
        let keys = keyset(n, salt);
        let w = zipf_weights(keys.len(), theta);
        build_weighted(&keys, &w, &ParamsConfig::default(), &mut rng(salt)).expect("build")
    }

    #[test]
    fn descriptor_packing_roundtrips() {
        for (base, size, gamma) in [
            (0u64, 0u64, 1u64),
            (12345, 77, 500),
            ((1 << 26) - 1, (1 << 19) - 1, (1 << 19) - 1),
        ] {
            assert_eq!(
                unpack_group(pack_group(base, size, gamma)),
                (base, size, gamma)
            );
        }
    }

    #[test]
    fn membership_correct_under_skew() {
        let d = build(800, 1, 1.2);
        let mut r = rng(100);
        for &x in d.keys() {
            assert!(d.contains(x, &mut r, &mut NullSink), "missing {x}");
            assert!(d.resolve_contains(x));
        }
        let members: HashSet<u64> = d.keys().iter().copied().collect();
        let mut probe = 5u64;
        for _ in 0..500 {
            probe = derive(probe, 2) % MAX_KEY;
            if !members.contains(&probe) {
                assert!(!d.contains(probe, &mut r, &mut NullSink), "phantom {probe}");
                assert!(!d.resolve_contains(probe));
            }
        }
    }

    #[test]
    fn uniform_weights_need_no_replication_but_stay_flat() {
        let d = build(512, 2, 0.0);
        // Every group has mass ≈ gs·1/n, so γ ≈ extra·mass/size stays small.
        let prof = exact_contention(&d, &QueryPool::uniform(d.keys()));
        assert!(
            prof.max_step_ratio() < 120.0,
            "ratio {}",
            prof.max_step_ratio()
        );
        assert!(prof.conservation_ok(1e-9));
    }

    #[test]
    fn hot_groups_get_replicated_blocks() {
        let d = build(1024, 3, 1.5);
        // Zipf(1.5)'s head carries ≈ 0.38 mass; its group's block should be
        // replicated hundreds of times.
        assert!(
            d.stats().gamma_max >= 50,
            "gamma_max {}",
            d.stats().gamma_max
        );
        assert!(d.stats().region_used <= d.weighted_params().region_cells);
    }

    #[test]
    fn storage_rows_are_flattened_to_the_metadata_floor() {
        let d = build(2048, 4, 1.2);
        let pool = QueryPool {
            entries: d
                .keys()
                .iter()
                .copied()
                .zip(d.weights().iter().copied())
                .collect(),
        };
        let prof = exact_contention(&d, &pool);
        // The header/data steps (last two) must not exceed the hottest
        // group's metadata contention (mass_group / group_size replicas) by
        // more than a small factor — γ-replication ties them together.
        let steps = prof.step_max.len();
        let meta = prof.step_max[steps - 3 - d.weighted_params().base.rho as usize + 1..steps - 2]
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(prof.step_max[2 * d.weighted_params().base.d + 1]); // GBAS step
        assert!(
            prof.step_max[steps - 1] <= 4.0 * meta + 4.0 / d.len() as f64,
            "data step {} far above metadata floor {meta}",
            prof.step_max[steps - 1]
        );
        assert!(
            prof.step_max[steps - 2] <= 4.0 * meta + 4.0 / d.len() as f64,
            "header step {} far above metadata floor {meta}",
            prof.step_max[steps - 2]
        );
    }

    #[test]
    fn weighted_beats_oblivious_under_skew() {
        let n = 2048u64;
        let keys = keyset(n, 5);
        let w = zipf_weights(keys.len(), 1.2);
        let weighted = build_weighted(&keys, &w, &ParamsConfig::default(), &mut rng(5)).unwrap();
        let oblivious = crate::builder::build(&keys, &mut rng(6)).unwrap();
        let pool = QueryPool::weighted(keys.iter().copied().zip(w.iter().copied()).collect());
        let rw = exact_contention(&weighted, &pool).max_step_ratio();
        let ro = exact_contention(&oblivious, &pool).max_step_ratio();
        assert!(
            rw * 3.0 < ro,
            "weighted {rw:.1} should be far below oblivious {ro:.1}"
        );
    }

    #[test]
    fn probes_match_declared_sets() {
        let d = build(400, 7, 1.0);
        let mut r = rng(70);
        let mut sets = Vec::new();
        let probes: Vec<u64> = d
            .keys()
            .iter()
            .copied()
            .take(60)
            .chain((0..60).map(|i| derive(71, i) % MAX_KEY))
            .collect();
        for x in probes {
            sets.clear();
            d.probe_sets(x, &mut sets);
            let mut trace = TraceSink::new();
            trace.begin_query();
            let _ = d.contains(x, &mut r, &mut trace);
            assert_eq!(trace.trace().len(), sets.len(), "x={x}");
            for (t, (&cell, set)) in trace.trace().iter().zip(&sets).enumerate() {
                assert!(set.cells().any(|c| c == cell), "step {t}: {cell} ∉ {set:?}");
            }
        }
    }

    #[test]
    fn point_mass_distribution_is_survivable() {
        // All mass on one key: its group's block gets nearly the whole
        // replication budget, flattening the data cell to ~size/(4s).
        let n = 1024usize;
        let keys = keyset(n as u64, 8);
        let mut w = vec![1e-9; n];
        w[0] = 1.0;
        let d = build_weighted(&keys, &w, &ParamsConfig::default(), &mut rng(8)).unwrap();
        let pool = QueryPool::weighted(keys.iter().copied().zip(w.iter().copied()).collect());
        let prof = exact_contention(&d, &pool);
        let last = prof.step_max.len() - 1;
        let res = d.resolve(keys[0]);
        let expected = 1.0 / res.gamma as f64;
        assert!(res.gamma > 50, "gamma {}", res.gamma);
        assert!(
            (prof.step_max[last] - expected).abs() < 0.25 * expected + 1e-6,
            "hot data contention {} vs 1/γ = {expected}",
            prof.step_max[last]
        );
    }

    #[test]
    fn input_validation() {
        let mut r = rng(9);
        assert_eq!(
            build_weighted(&[], &[], &ParamsConfig::default(), &mut r).unwrap_err(),
            BuildError::EmptyKeySet
        );
        assert_eq!(
            build_weighted(&[1, 1], &[0.5, 0.5], &ParamsConfig::default(), &mut r).unwrap_err(),
            BuildError::DuplicateKey(1)
        );
    }

    #[test]
    #[should_panic(expected = "one weight per key")]
    fn mismatched_weights_rejected() {
        let mut r = rng(10);
        let _ = build_weighted(&[1, 2], &[1.0], &ParamsConfig::default(), &mut r);
    }

    #[test]
    #[should_panic(expected = "total query mass")]
    fn zero_mass_rejected() {
        let mut r = rng(11);
        let _ = build_weighted(&[1, 2], &[0.0, 0.0], &ParamsConfig::default(), &mut r);
    }
}

//! Baseline static dictionaries the paper compares against (§1 and §1.3),
//! each instrumented through [`lcds_cellprobe::CellProbeDict`] and described
//! analytically through [`lcds_cellprobe::ExactProbes`]:
//!
//! | scheme | probes | max contention × optimal (uniform positive) |
//! |---|---|---|
//! | [`binsearch::BinarySearchDict`] | `⌊log₂n⌋+1` | `s` (root probed by everyone) |
//! | [`fks::FksDict`] | 3 | `Θ(√n)` worst case (descriptor of the biggest bucket) |
//! | [`dm_dict::DmDict`] | 4 | `Θ(ln n / ln ln n)` (DM loads concentrate) |
//! | [`cuckoo::CuckooDict`] | ≤ 3 | `Θ(ln n / ln ln n)` (loaded nest cells) |
//! | [`linear_probe::LinearProbeDict`] | `O(cluster)` | cluster-proportional |
//! | [`robin_hood::RobinHoodDict`] | `O(max displacement)` | cluster-shaped, variance-equalized |
//! | [`chaining::ChainingDict`] | `2 + chain` | `Θ(ln n/ln ln n)` (directory, like FKS) |
//!
//! All hash-parameter cells support the replication knob of §1.3
//! ([`common::Replication`]): unreplicated, the parameter cell alone has
//! contention 1; with linear replication the parameter rows flatten to
//! `1/n` and the *residual* hot spots above are what remains — exactly the
//! gap Theorem 3's structure closes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binsearch;
pub mod chaining;
pub mod common;
pub mod cuckoo;
pub mod dm_dict;
pub mod fks;
pub mod linear_probe;
pub mod robin_hood;
mod seed_search;

pub use binsearch::BinarySearchDict;
pub use chaining::{ChainingConfig, ChainingDict};
pub use common::{BaselineError, Replication};
pub use cuckoo::{CuckooConfig, CuckooDict};
pub use dm_dict::{DmConfig, DmDict};
pub use fks::{FksConfig, FksDict};
pub use linear_probe::{LinearProbeConfig, LinearProbeDict};
pub use robin_hood::{RobinHoodConfig, RobinHoodDict};

//! Minimal table rendering for the experiment binaries: markdown for humans,
//! CSV for plotting.

use std::fmt::Write as _;

/// A rectangular results table with a title and column headers.
#[derive(Clone, Debug)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a markdown table with aligned columns.
    pub fn markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        let _ = writeln!(out, "| {} |", dashes.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders CSV (header row first). Cells containing commas or quotes are
    /// quoted per RFC 4180.
    pub fn csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.headers.iter().map(|h| escape(h)).collect();
        let _ = writeln!(out, "{}", header.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

/// Formats a float with 4 significant digits — compact but comparable.
pub fn sig4(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (3 - mag).clamp(0, 12) as usize;
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = TextTable::new("demo", &["scheme", "ratio"]);
        t.row(vec!["lcd".into(), "1.92".into()]);
        t.row(vec!["binary-search".into(), "65536".into()]);
        let md = t.markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| scheme        | ratio |"));
        assert!(md.contains("| binary-search | 65536 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn sig4_formats() {
        assert_eq!(sig4(0.0), "0");
        assert_eq!(sig4(1234.5), "1234"); // 4 sig figs, round-half-to-even
        assert_eq!(sig4(0.0012345), "0.001234");
        assert_eq!(sig4(1.5), "1.500");
        assert_eq!(sig4(f64::INFINITY), "inf");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new("t", &["h"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.csv().starts_with("h\n"));
    }
}

//! F14 — batched serving throughput: the `lcds-serve` planned engine vs
//! the per-key query loop, and sharded variants, on a bulk mixed
//! workload.
//!
//! Wall-clock numbers are hardware-specific; the reproduced claims are the
//! *orderings*: (1) the planned, region-grouped batch path beats the
//! per-key path at equal thread counts (it issues ~2d fewer probes per key
//! and overlaps the remaining misses), and (2) every variant returns
//! bit-for-bit identical answers — batching and sharding are pure
//! execution strategies.

use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::report::{sig4, TextTable};
use lcds_cellprobe::rngutil::StreamRng;
use lcds_cellprobe::sink::NullSink;
use lcds_core::LowContentionDict;
use lcds_serve::{bulk_contains, EngineConfig, ShardedLcd};
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::querygen::negative_pool;
use lcds_workloads::rng::seeded;
use rayon::prelude::*;
use serde_json::json;
use std::time::Instant;

use super::ExpOutput;

/// The un-batched baseline: one `contains` per key across Rayon, with the
/// same position-addressed randomness streams the engine uses (so the two
/// paths are answer-identical and differ only in execution strategy).
fn per_key_parallel(dict: &LowContentionDict, probes: &[u64], seed: u64) -> Vec<bool> {
    const CHUNK: usize = 1024;
    probes
        .par_chunks(CHUNK)
        .enumerate()
        .flat_map_iter(|(c, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(move |(i, &x)| {
                    let mut rng = StreamRng::for_stream(seed, (c * CHUNK + i) as u64);
                    dict.contains(x, &mut rng, &mut NullSink)
                })
                .collect::<Vec<bool>>()
        })
        .collect()
}

/// Best-of-`reps` wall-clock for one run of `f`, in Mq/s over `q` keys.
fn best_mqps(q: usize, reps: usize, mut f: impl FnMut() -> Vec<bool>) -> (f64, Vec<bool>) {
    let mut best = f64::MAX;
    let mut out = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (q as f64 / best / 1e6, out)
}

/// **F14** — batched-vs-per-key bulk throughput (Mq/s), 50/50 mixed pool.
pub fn f14(quick: bool) -> ExpOutput {
    let n = if quick { 2048 } else { 1 << 16 };
    let reps = if quick { 1 } else { 3 };
    let seed = 0xF140 + n as u64;
    let keys = uniform_keys(n, seed);
    let probes: Vec<u64> = keys
        .iter()
        .copied()
        .chain(negative_pool(&keys, n, seed ^ 1))
        .collect();
    let q = probes.len();

    let dict = lcds_core::builder::build(&keys, &mut seeded(seed)).expect("build");
    let qseed = 0x5EED;

    let mut table = TextTable::new(
        format!("F14 — bulk throughput, {q} mixed queries, n = {n} (Mq/s, best of {reps})"),
        &["variant", "Mq/s", "vs per-key ×"],
    );
    let mut csv = String::from("variant,queries,mqps\n");
    let mut rows = Vec::new();
    let mut consistent = true;

    let (base_mqps, baseline) = best_mqps(q, reps, || per_key_parallel(&dict, &probes, qseed));
    let mut push = |name: &str, mqps: f64, out: &[bool]| {
        consistent &= out == baseline;
        table.row(vec![name.into(), sig4(mqps), sig4(mqps / base_mqps)]);
        csv.push_str(&format!("{name},{q},{mqps}\n"));
        rows.push(json!({ "variant": name, "mqps": mqps, "speedup": mqps / base_mqps }));
        if lcds_obs::enabled() {
            lcds_obs::global()
                .gauge(&format!(
                    "lcds_experiment_qps{{exp=\"f14\",variant=\"{name}\"}}"
                ))
                .set(mqps * 1e6);
        }
    };
    push("per-key", base_mqps, &baseline);

    for batch in [64usize, 1024, 4096] {
        let cfg = EngineConfig {
            batch,
            parallel: true,
        };
        let (mqps, out) = best_mqps(q, reps, || bulk_contains(&dict, &probes, qseed, cfg));
        push(&format!("planned b={batch}"), mqps, &out);
    }

    for shards in [2usize, 4] {
        // Sharded variants route to different per-shard dictionaries, so
        // answers are compared against their own resolve, not the
        // unsharded baseline.
        let sharded = match ShardedLcd::build(&keys, shards, seed ^ 2, &mut seeded(seed ^ 3)) {
            Ok(s) => s,
            Err(_) => continue, // quick-mode key sets can under-fill shards
        };
        let (mqps, out) = best_mqps(q, reps, || sharded.bulk_contains(&probes, qseed, true));
        let expect: Vec<bool> = probes
            .iter()
            .map(|&x| sharded.shards()[sharded.shard_of(x)].resolve_contains(x))
            .collect();
        consistent &= out == expect;
        table.row(vec![
            format!("sharded K={shards}"),
            sig4(mqps),
            sig4(mqps / base_mqps),
        ]);
        csv.push_str(&format!("sharded K={shards},{q},{mqps}\n"));
        rows.push(json!({
            "variant": format!("sharded K={shards}"),
            "mqps": mqps,
            "speedup": mqps / base_mqps,
        }));
    }

    ExpOutput {
        id: "f14",
        tables: vec![table],
        series: vec![("serve_batched.csv".into(), csv)],
        json: json!({
            "n": n,
            "queries": q,
            "reps": reps,
            "answers_consistent": consistent,
            "rows": rows,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f14_all_variants_agree_and_report() {
        let out = f14(true);
        assert_eq!(out.json["answers_consistent"], true);
        let rows = out.json["rows"].as_array().unwrap();
        assert!(rows.len() >= 4, "per-key + three planned batch sizes");
        for r in rows {
            assert!(r["mqps"].as_f64().unwrap() > 0.0, "{r}");
        }
        assert!(out.json["rows"]
            .as_array()
            .unwrap()
            .iter()
            .any(|r| r["variant"].as_str().unwrap().starts_with("planned")));
    }

    #[test]
    fn per_key_baseline_matches_engine_answers() {
        // The baseline must use the engine's stream addressing, or the
        // consistency flag would compare different replica universes.
        let keys = uniform_keys(600, 77);
        let dict = lcds_core::builder::build(&keys, &mut seeded(77)).unwrap();
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain(negative_pool(&keys, 600, 78))
            .collect();
        let a = per_key_parallel(&dict, &probes, 9);
        let b = bulk_contains(&dict, &probes, 9, EngineConfig::with_batch(256));
        assert_eq!(a, b);
    }
}

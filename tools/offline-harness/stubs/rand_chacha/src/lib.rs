//! Offline stand-in for `rand_chacha`: a deterministic splitmix64 walker
//! behind the `ChaCha8Rng` name. NOT ChaCha — byte streams differ from the
//! real crate — but fully deterministic in the seed, which is all the
//! internal-consistency tests compare.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: u64,
}

impl ChaCha8Rng {
    fn step(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha8Rng {
            state: seed ^ 0xD6E8_FEB8_6659_FD93,
        }
    }
}

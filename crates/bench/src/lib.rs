//! Experiment harness: regenerates every table and figure in DESIGN.md §4.
//!
//! The paper (SPAA 2010) is pure theory — it has no evaluation section —
//! so the "tables and figures" here are the experiment inventory DESIGN.md
//! defines to validate each theorem, lemma, and §1.3 comparison claim.
//! Run them with:
//!
//! ```text
//! cargo run -p lcds-bench --release --bin experiments -- all
//! cargo run -p lcds-bench --release --bin experiments -- t1 f5
//! ```
//!
//! Markdown tables go to stdout; machine-readable CSV/JSON series are
//! written to `results/` for plotting. Criterion benches (`cargo bench`)
//! cover the timing-oriented figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exps;
pub mod fit;
pub mod kernels;
pub mod registry;
pub mod summary;

pub use registry::{build_schemes, SchemeSet};

/// The repository HEAD commit baked in by the build script
/// (`LCDS_GIT_REV`), for provenance stamps in bench artifacts and
/// flight-recorder headers. `"unknown"` when git was unavailable at
/// compile time (source tarballs, the offline test harness).
pub fn git_rev() -> &'static str {
    match option_env!("LCDS_GIT_REV") {
        Some(rev) if !rev.is_empty() => rev,
        _ => "unknown",
    }
}

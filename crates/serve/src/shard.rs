//! Sharded serving: `K` independently built Theorem 3 dictionaries behind
//! a splitter hash.
//!
//! One dictionary's contention optimum is `1/s` over *its* `s` cells; `K`
//! shards multiply the cell budget (and, on real machines, the sockets/
//! memory channels) while each shard keeps its own flat profile. The
//! splitter is a single SplitMix64 evaluation — stateless, so routing
//! adds no shared hot cell of its own, which would otherwise defeat the
//! whole construction (a routing directory read by every query is exactly
//! the FKS failure mode the paper starts from).
//!
//! [`ShardedLcd`] implements [`CellProbeDict`] and [`ExactProbes`] over
//! the *disjoint union* of its shards' cells (shard `k`'s cell `j` maps to
//! global id `base_k + j`), so contention measurement, replay harnesses,
//! and the bulk engine all apply unchanged.

use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::exact::{ExactProbes, ProbeSet};
use lcds_cellprobe::sink::{NullSink, ProbeSink};
use lcds_cellprobe::table::CellId;
use lcds_core::builder::{build, BuildError};
use lcds_core::{BatchPlan, LowContentionDict};
use lcds_hashing::mix::splitmix64;
use rand::{Rng, RngCore};
use rayon::prelude::*;

/// Keys per probe plan inside one shard's sub-batch (bounds plan scratch;
/// answers are independent of this constant by construction).
const SHARD_BATCH: usize = 4096;

/// Why sharded construction failed.
#[derive(Debug)]
pub enum ShardBuildError {
    /// No keys were supplied.
    EmptyKeySet,
    /// Zero shards requested.
    ZeroShards,
    /// The splitter routed no keys to this shard — the key set is too
    /// small (or too adversarial) for the requested shard count.
    EmptyShard(usize),
    /// An underlying per-shard build failed.
    Build(BuildError),
}

impl std::fmt::Display for ShardBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardBuildError::EmptyKeySet => write!(f, "no keys to shard"),
            ShardBuildError::ZeroShards => write!(f, "shard count must be at least 1"),
            ShardBuildError::EmptyShard(k) => {
                write!(f, "shard {k} received no keys; use fewer shards")
            }
            ShardBuildError::Build(e) => write!(f, "shard build failed: {e}"),
        }
    }
}

impl std::error::Error for ShardBuildError {}

impl From<BuildError> for ShardBuildError {
    fn from(e: BuildError) -> Self {
        ShardBuildError::Build(e)
    }
}

/// Forwards probes with a constant cell-id offset: presents shard-local
/// probes as probes into the sharded structure's global cell space.
struct OffsetSink<'a> {
    inner: &'a mut dyn ProbeSink,
    base: u64,
}

impl ProbeSink for OffsetSink<'_> {
    #[inline]
    fn probe(&mut self, cell: CellId) {
        self.inner.probe(self.base + cell);
    }
    fn begin_query(&mut self) {
        self.inner.begin_query();
    }
    fn stage(&mut self, stage: lcds_cellprobe::sink::PlanStage) {
        self.inner.stage(stage);
    }
}

/// `K` low-contention dictionaries behind a stateless splitter hash.
#[derive(Clone, Debug)]
pub struct ShardedLcd {
    shards: Vec<LowContentionDict>,
    /// Global cell-id base of each shard (prefix sums of `num_cells`).
    bases: Vec<u64>,
    splitter_seed: u64,
    len: usize,
}

impl ShardedLcd {
    /// Splits `keys` across `num_shards` dictionaries and builds each.
    ///
    /// Deterministic given (`keys`, `num_shards`, `splitter_seed`, `rng`
    /// state). Fails with [`ShardBuildError::EmptyShard`] rather than
    /// building a degenerate empty dictionary.
    pub fn build<R: Rng + ?Sized>(
        keys: &[u64],
        num_shards: usize,
        splitter_seed: u64,
        rng: &mut R,
    ) -> Result<ShardedLcd, ShardBuildError> {
        let parts = partition(keys, num_shards, splitter_seed)?;
        let mut shards = Vec::with_capacity(num_shards);
        for part in &parts {
            shards.push(build(part, rng)?);
        }
        Ok(Self::assemble(shards, splitter_seed, keys.len()))
    }

    /// Builds every shard **in parallel** from one top-level build seed:
    /// shard `k` runs `lcds_core::par_build` under the derived sub-seed
    /// [`lcds_core::shard_seed`]`(build_seed, k)`. Deterministic — the
    /// output is bit-identical to [`ShardedLcd::build_seeded`] for the
    /// same `(keys, num_shards, splitter_seed, build_seed)` at every
    /// thread count.
    pub fn par_build(
        keys: &[u64],
        num_shards: usize,
        splitter_seed: u64,
        build_seed: u64,
    ) -> Result<ShardedLcd, ShardBuildError> {
        let parts = partition(keys, num_shards, splitter_seed)?;
        let shards = parts
            .par_iter()
            .enumerate()
            .map(|(k, part)| {
                lcds_core::par_build(part, lcds_core::shard_seed(build_seed, k as u64))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::assemble(shards, splitter_seed, keys.len()))
    }

    /// Sequential twin of [`ShardedLcd::par_build`]: same sub-seed
    /// discipline, shards built one after another — the reference the
    /// determinism matrix compares against.
    pub fn build_seeded(
        keys: &[u64],
        num_shards: usize,
        splitter_seed: u64,
        build_seed: u64,
    ) -> Result<ShardedLcd, ShardBuildError> {
        let parts = partition(keys, num_shards, splitter_seed)?;
        let shards = parts
            .iter()
            .enumerate()
            .map(|(k, part)| {
                lcds_core::build_seeded(part, lcds_core::shard_seed(build_seed, k as u64))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::assemble(shards, splitter_seed, keys.len()))
    }

    /// Computes the global cell-id bases and records the shard gauge —
    /// the assembly shared by all build entry points.
    fn assemble(shards: Vec<LowContentionDict>, splitter_seed: u64, len: usize) -> ShardedLcd {
        let mut bases = Vec::with_capacity(shards.len());
        let mut base = 0u64;
        for s in &shards {
            bases.push(base);
            base += s.num_cells();
        }
        if lcds_obs::enabled() {
            lcds_obs::global()
                .gauge(lcds_obs::names::SERVE_SHARDS)
                .set(shards.len() as f64);
        }
        ShardedLcd {
            shards,
            bases,
            splitter_seed,
            len,
        }
    }

    /// Which shard serves key `x`.
    #[inline]
    pub fn shard_of(&self, x: u64) -> usize {
        route(x, self.splitter_seed, self.shards.len())
    }

    /// The per-shard dictionaries, in shard order.
    pub fn shards(&self) -> &[LowContentionDict] {
        &self.shards
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Bulk membership across shards: routes the batch, runs each shard's
    /// planned executor on its sub-batch (in parallel when asked), and
    /// scatters answers back to input order.
    ///
    /// Key `i`'s balancing randomness is still addressed by its *global*
    /// position `i` — routing does not perturb replica choices, so the
    /// answers (and any derived trace) are identical to an unsharded run
    /// over the same per-shard dictionaries.
    pub fn bulk_contains(&self, keys: &[u64], seed: u64, parallel: bool) -> Vec<bool> {
        let k = self.shards.len();
        let mut per_keys: Vec<Vec<u64>> = vec![Vec::new(); k];
        let mut per_idx: Vec<Vec<u64>> = vec![Vec::new(); k];
        for (i, &x) in keys.iter().enumerate() {
            let s = self.shard_of(x);
            per_keys[s].push(x);
            per_idx[s].push(i as u64);
        }
        if lcds_obs::enabled() {
            let depth = lcds_obs::global().histogram(lcds_obs::names::SERVE_SHARD_DEPTH);
            for p in &per_keys {
                depth.record(p.len() as u64);
            }
        }
        let run_shard = |s: usize| -> Vec<bool> {
            let mut out = Vec::with_capacity(per_keys[s].len());
            let mut plan = BatchPlan::new();
            for (c, (kc, ic)) in per_keys[s]
                .chunks(SHARD_BATCH)
                .zip(per_idx[s].chunks(SHARD_BATCH))
                .enumerate()
            {
                let start = if lcds_obs::enabled() {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                match lcds_obs::trace::try_batch_trace(s as u32, c as u64) {
                    Some(mut trace) => {
                        // Offset so the traced cell ids live in the sharded
                        // structure's global cell space, like every other
                        // sink this type feeds.
                        let mut sink = OffsetSink {
                            inner: &mut trace,
                            base: self.bases[s],
                        };
                        plan.run_indexed(&self.shards[s], kc, ic, seed, &mut sink, &mut out);
                    }
                    None => {
                        plan.run_indexed(&self.shards[s], kc, ic, seed, &mut NullSink, &mut out)
                    }
                }
                if let Some(t0) = start {
                    lcds_obs::global()
                        .histogram(lcds_obs::names::SERVE_BATCH_LATENCY)
                        .record(t0.elapsed().as_nanos() as u64);
                }
            }
            out
        };
        let per_out: Vec<Vec<bool>> = if parallel {
            (0..k).into_par_iter().map(run_shard).collect()
        } else {
            (0..k).map(run_shard).collect()
        };
        let mut answers = vec![false; keys.len()];
        for s in 0..k {
            for (j, &i) in per_idx[s].iter().enumerate() {
                answers[i as usize] = per_out[s][j];
            }
        }
        answers
    }
}

#[inline]
fn route(x: u64, splitter_seed: u64, k: usize) -> usize {
    (splitmix64(x ^ splitter_seed) % k as u64) as usize
}

/// Validates inputs and routes every key to its shard's key list.
fn partition(
    keys: &[u64],
    num_shards: usize,
    splitter_seed: u64,
) -> Result<Vec<Vec<u64>>, ShardBuildError> {
    if keys.is_empty() {
        return Err(ShardBuildError::EmptyKeySet);
    }
    if num_shards == 0 {
        return Err(ShardBuildError::ZeroShards);
    }
    let mut parts: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
    for &x in keys {
        parts[route(x, splitter_seed, num_shards)].push(x);
    }
    if let Some(k) = parts.iter().position(|p| p.is_empty()) {
        return Err(ShardBuildError::EmptyShard(k));
    }
    Ok(parts)
}

impl CellProbeDict for ShardedLcd {
    fn name(&self) -> String {
        format!("sharded-low-contention({})", self.shards.len())
    }

    fn contains(&self, x: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
        let s = self.shard_of(x);
        let mut sink = OffsetSink {
            inner: sink,
            base: self.bases[s],
        };
        self.shards[s].contains(x, rng, &mut sink)
    }

    fn contains_batch(
        &self,
        keys: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        // Route, run each shard's plan with globally-addressed streams,
        // scatter. Sequential over shards (the sink is not shareable);
        // parallel callers use `bulk_contains`.
        let k = self.shards.len();
        let mut per_keys: Vec<Vec<u64>> = vec![Vec::new(); k];
        let mut per_idx: Vec<Vec<u64>> = vec![Vec::new(); k];
        let mut per_pos: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &x) in keys.iter().enumerate() {
            let s = self.shard_of(x);
            per_keys[s].push(x);
            per_idx[s].push(first_index + i as u64);
            per_pos[s].push(i);
        }
        let out_base = out.len();
        out.resize(out_base + keys.len(), false);
        let mut plan = BatchPlan::new();
        for s in 0..k {
            if per_keys[s].is_empty() {
                continue;
            }
            let mut shard_out = Vec::with_capacity(per_keys[s].len());
            let mut shard_sink = OffsetSink {
                inner: sink,
                base: self.bases[s],
            };
            plan.run_indexed(
                &self.shards[s],
                &per_keys[s],
                &per_idx[s],
                seed,
                &mut shard_sink,
                &mut shard_out,
            );
            for (j, &i) in per_pos[s].iter().enumerate() {
                out[out_base + i] = shard_out[j];
            }
        }
    }

    fn num_cells(&self) -> u64 {
        self.shards.iter().map(|s| s.num_cells()).sum()
    }

    fn max_probes(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| s.max_probes())
            .max()
            .unwrap_or(0)
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl ExactProbes for ShardedLcd {
    fn probe_sets(&self, x: u64, out: &mut Vec<ProbeSet>) {
        let s = self.shard_of(x);
        let from = out.len();
        self.shards[s].probe_sets(x, out);
        for ps in &mut out[from..] {
            ps.start += self.bases[s];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::dist::QueryPool;
    use lcds_cellprobe::exact::exact_contention;
    use lcds_cellprobe::sink::CountingSink;
    use lcds_workloads::keysets::uniform_keys;
    use lcds_workloads::querygen::negative_pool;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sharded(n: usize, k: usize, salt: u64) -> ShardedLcd {
        ShardedLcd::build(
            &uniform_keys(n, salt),
            k,
            salt ^ 0xD1D1,
            &mut ChaCha8Rng::seed_from_u64(salt),
        )
        .expect("sharded build")
    }

    #[test]
    fn routes_every_key_to_its_shard_and_answers() {
        let keys = uniform_keys(3000, 51);
        let d = ShardedLcd::build(&keys, 4, 7, &mut ChaCha8Rng::seed_from_u64(51)).unwrap();
        assert_eq!(d.len(), 3000);
        assert_eq!(d.num_shards(), 4);
        let shard_total: usize = d.shards().iter().map(|s| s.len()).sum();
        assert_eq!(shard_total, 3000);
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain(negative_pool(&keys, 3000, 52))
            .collect();
        for parallel in [false, true] {
            let got = d.bulk_contains(&probes, 5, parallel);
            for (i, &x) in probes.iter().enumerate() {
                let expect = d.shards()[d.shard_of(x)].resolve_contains(x);
                assert_eq!(got[i], expect, "key {x}");
            }
        }
    }

    #[test]
    fn trait_contains_and_bulk_agree() {
        let d = sharded(1500, 3, 53);
        let keys = uniform_keys(1500, 53);
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain(negative_pool(&keys, 1500, 54))
            .collect();
        let bulk = d.bulk_contains(&probes, 11, false);
        let mut via_trait = Vec::new();
        d.contains_batch(&probes, 0, 11, &mut NullSink, &mut via_trait);
        assert_eq!(bulk, via_trait);
    }

    #[test]
    fn offset_sink_maps_probes_into_disjoint_shard_regions() {
        let d = sharded(800, 2, 55);
        let mut sink = CountingSink::new(d.num_cells());
        let keys = uniform_keys(800, 55);
        let mut out = Vec::new();
        d.contains_batch(&keys, 0, 3, &mut sink, &mut out);
        assert!(out.iter().all(|&v| v));
        // Probes must land inside num_cells (CountingSink would panic
        // otherwise) and both shard regions must be touched.
        let split = d.bases[1] as usize;
        let counts = sink.counts();
        assert!(counts[..split].iter().any(|&c| c > 0), "shard 0 untouched");
        assert!(counts[split..].iter().any(|&c| c > 0), "shard 1 untouched");
    }

    #[test]
    fn single_shard_matches_unsharded_dictionary() {
        let keys = uniform_keys(900, 57);
        let d = ShardedLcd::build(&keys, 1, 99, &mut ChaCha8Rng::seed_from_u64(57)).unwrap();
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain(negative_pool(&keys, 900, 58))
            .collect();
        let got = d.bulk_contains(&probes, 13, false);
        for (i, &x) in probes.iter().enumerate() {
            assert_eq!(got[i], d.shards()[0].resolve_contains(x));
        }
    }

    #[test]
    fn sharded_exact_contention_stays_flat() {
        let keys = uniform_keys(2000, 59);
        let d = ShardedLcd::build(&keys, 2, 3, &mut ChaCha8Rng::seed_from_u64(59)).unwrap();
        let profile = exact_contention(&d, &QueryPool::uniform(&keys));
        assert!(profile.conservation_ok(1e-9));
        // Same constant bound the unsharded dictionary meets in
        // tests/contention_bounds.rs: flat per shard + balanced splitter
        // ⇒ flat overall.
        assert!(
            profile.max_step_ratio() < 60.0,
            "ratio {}",
            profile.max_step_ratio()
        );
    }

    fn shard_bytes(d: &ShardedLcd) -> Vec<Vec<u8>> {
        d.shards()
            .iter()
            .map(|s| {
                let mut buf = Vec::new();
                lcds_core::persist::save(s, &mut buf).unwrap();
                buf
            })
            .collect()
    }

    #[test]
    fn par_build_matches_sequential_twin_per_shard() {
        let keys = uniform_keys(2000, 63);
        for k in [1usize, 3] {
            let par = ShardedLcd::par_build(&keys, k, 17, 99).expect("par build");
            let seq = ShardedLcd::build_seeded(&keys, k, 17, 99).expect("seq build");
            assert_eq!(shard_bytes(&par), shard_bytes(&seq), "k={k}");
            // And the assembled structure answers identically.
            let probes: Vec<u64> = keys
                .iter()
                .copied()
                .chain(negative_pool(&keys, 500, 64))
                .collect();
            assert_eq!(
                par.bulk_contains(&probes, 3, false),
                seq.bulk_contains(&probes, 3, false)
            );
        }
    }

    #[test]
    fn seeded_builds_validate_inputs_like_build() {
        assert!(matches!(
            ShardedLcd::par_build(&[], 2, 0, 0),
            Err(ShardBuildError::EmptyKeySet)
        ));
        assert!(matches!(
            ShardedLcd::par_build(&[1, 2, 3], 0, 0, 0),
            Err(ShardBuildError::ZeroShards)
        ));
        match ShardedLcd::par_build(&[42], 64, 0, 0) {
            Err(ShardBuildError::EmptyShard(_)) => {}
            other => panic!("expected EmptyShard, got {other:?}"),
        }
    }

    #[test]
    fn build_errors_are_structured() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        assert!(matches!(
            ShardedLcd::build(&[], 2, 0, &mut rng),
            Err(ShardBuildError::EmptyKeySet)
        ));
        assert!(matches!(
            ShardedLcd::build(&[1, 2, 3], 0, 0, &mut rng),
            Err(ShardBuildError::ZeroShards)
        ));
        // 1 key over 64 shards: some shard must be empty.
        match ShardedLcd::build(&[42], 64, 0, &mut rng) {
            Err(ShardBuildError::EmptyShard(_)) => {}
            other => panic!("expected EmptyShard, got {other:?}"),
        }
    }
}

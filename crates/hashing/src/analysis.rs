//! Bucket and load analysis (Definition 5) and the checkable conditions of
//! Lemma 9.
//!
//! The construction algorithm of §2.2 draws `(f, g, z)`, forms
//! `h ∈ R^d_{r,s}` and `h' = h mod m`, and accepts the draw only if the
//! property `P(S)` holds:
//!
//! 1. every `g`-class load is ≤ `c·n/r`          (Lemma 9(1)),
//! 2. every `h'`-group load is ≤ `c·n/m`          (Lemma 9(2)),
//! 3. `Σ_i ℓ(S, h, i)² ≤ s`                        (Lemma 9(3), FKS condition).
//!
//! These helpers compute loads in one pass and evaluate each condition, and
//! are reused by experiment T6 to measure the empirical probability of each
//! event against the paper's `1 − o(1)` / `≥ 1/2` bounds.

use crate::family::HashFunction;

/// Computes the load vector `ℓ(S, h, ·)`: how many of `keys` each of the
/// `h.range()` buckets receives (Definition 5).
pub fn loads<H: HashFunction>(h: &H, keys: &[u64]) -> Vec<u32> {
    let mut loads = vec![0u32; h.range() as usize];
    for &k in keys {
        loads[h.eval(k) as usize] += 1;
    }
    loads
}

/// The largest bucket load.
pub fn max_load(loads: &[u32]) -> u32 {
    loads.iter().copied().max().unwrap_or(0)
}

/// `Σ_i ℓ_i²` — the FKS space requirement for quadratic per-bucket tables.
pub fn sum_squared_loads(loads: &[u32]) -> u64 {
    loads.iter().map(|&l| (l as u64) * (l as u64)).sum()
}

/// Number of ordered collision pairs `X = Σ ℓ_i² − n` (proof of Lemma 9(3)).
pub fn ordered_collision_pairs(loads: &[u32]) -> u64 {
    let n: u64 = loads.iter().map(|&l| l as u64).sum();
    sum_squared_loads(loads) - n
}

/// Summary statistics of a load vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadStats {
    /// Number of buckets (the hash range).
    pub buckets: u64,
    /// Total keys hashed.
    pub total: u64,
    /// Largest load.
    pub max: u32,
    /// Number of empty buckets.
    pub empty: u64,
    /// `Σ ℓ_i²`.
    pub sum_squares: u64,
}

impl LoadStats {
    /// Computes statistics from a load vector.
    pub fn from_loads(loads: &[u32]) -> LoadStats {
        LoadStats {
            buckets: loads.len() as u64,
            total: loads.iter().map(|&l| l as u64).sum(),
            max: max_load(loads),
            empty: loads.iter().filter(|&&l| l == 0).count() as u64,
            sum_squares: sum_squared_loads(loads),
        }
    }

    /// Mean load `n / buckets`.
    pub fn mean(&self) -> f64 {
        self.total as f64 / self.buckets as f64
    }

    /// `max / mean`: the balance ratio that Lemma 9 bounds by the constant
    /// `c` for classes and groups.
    pub fn balance_ratio(&self) -> f64 {
        self.max as f64 / self.mean().max(f64::MIN_POSITIVE)
    }
}

/// Lemma 9(1)/(2): does every bucket respect the load cap `c·n/range`?
pub fn all_loads_within(loads: &[u32], n: u64, c: f64) -> bool {
    let cap = c * n as f64 / loads.len() as f64;
    loads.iter().all(|&l| (l as f64) <= cap)
}

/// Lemma 9(3): the FKS condition `Σ ℓ_i² ≤ s` (with `s = loads.len()` for
/// the paper's `h ∈ R^d_{r,s}`).
pub fn fks_condition(loads: &[u32]) -> bool {
    sum_squared_loads(loads) <= loads.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{PolyFamily, PolyHash};
    use crate::HashFamily;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn loads_count_correctly() {
        // Identity-ish hash: constant polynomial d=1 sends all keys to one bucket.
        let h = PolyHash::from_words(&[2], 5);
        let l = loads(&h, &[1, 2, 3]);
        assert_eq!(l, vec![0, 0, 3, 0, 0]);
        assert_eq!(max_load(&l), 3);
        assert_eq!(sum_squared_loads(&l), 9);
        assert_eq!(ordered_collision_pairs(&l), 6);
    }

    #[test]
    fn stats_on_uniform_spread() {
        let l = vec![1u32; 16];
        let s = LoadStats::from_loads(&l);
        assert_eq!(s.buckets, 16);
        assert_eq!(s.total, 16);
        assert_eq!(s.max, 1);
        assert_eq!(s.empty, 0);
        assert_eq!(s.sum_squares, 16);
        assert!((s.balance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_cap_check() {
        let l = vec![2, 2, 2, 2]; // n = 8, range 4, mean 2
        assert!(all_loads_within(&l, 8, 1.0));
        let l = vec![5, 1, 1, 1]; // max 5 > 2·2
        assert!(!all_loads_within(&l, 8, 2.0));
        assert!(all_loads_within(&l, 8, 2.5));
    }

    #[test]
    fn fks_condition_examples() {
        assert!(fks_condition(&[1, 1, 1, 1])); // 4 ≤ 4
        assert!(!fks_condition(&[3, 0, 0, 0])); // 9 > 4
    }

    #[test]
    fn empty_input() {
        let h = PolyHash::from_words(&[1, 2], 7);
        let l = loads(&h, &[]);
        assert_eq!(l.iter().sum::<u32>(), 0);
        assert_eq!(max_load(&l), 0);
        let s = LoadStats::from_loads(&l);
        assert_eq!(s.total, 0);
        assert_eq!(s.empty, 7);
    }

    #[test]
    fn random_family_fks_success_rate_matches_lemma() {
        // Lemma 9(3): with s = 2n cells the FKS condition holds w.p. ≥ 1/2.
        // Pairwise independence is enough for the Markov argument.
        let n = 256usize;
        let s = 2 * n as u64;
        let fam = PolyFamily::new(2, s);
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 104_729 + 11).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 200;
        let ok = (0..trials)
            .filter(|_| fks_condition(&loads(&fam.sample(&mut rng), &keys)))
            .count();
        assert!(
            ok * 2 >= trials,
            "FKS condition held only {ok}/{trials} times; Lemma 9(3) promises ≥ 1/2"
        );
    }

    proptest! {
        #[test]
        fn prop_loads_sum_to_n(keys in proptest::collection::vec(0..crate::field::MAX_KEY, 0..200),
                               words in proptest::collection::vec(0..crate::field::P, 2..4),
                               m in 1..500u64) {
            let h = PolyHash::from_words(&words, m);
            let l = loads(&h, &keys);
            prop_assert_eq!(l.iter().map(|&x| x as usize).sum::<usize>(), keys.len());
        }

        #[test]
        fn prop_sum_squares_at_least_n(keys in proptest::collection::vec(0..crate::field::MAX_KEY, 1..100),
                                       m in 1..200u64) {
            let h = PolyHash::from_words(&[7, 13], m);
            let l = loads(&h, &keys);
            // Cauchy–Schwarz: Σℓ² ≥ n²/m, and always ≥ n when each key adds ≥ 1.
            prop_assert!(sum_squared_loads(&l) >= keys.len() as u64);
        }
    }
}

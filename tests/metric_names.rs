//! Metric-name hygiene: a smoke workload with telemetry on must emit
//! *only* names declared in `lcds_obs::names`. An inline string literal
//! that drifts from the constants silently forks a parallel empty series
//! in Prometheus — the classic observability bug this test makes loud.
//!
//! One test function on purpose: it toggles the process-global `enabled`
//! flag, and the registry/event log are process-global, so splitting the
//! smoke into parallel `#[test]`s would race the snapshot.

use lcds_sim::threads::replay;
use lcds_sim::traces::collect;
use low_contention::prelude::*;

#[test]
fn every_emitted_metric_and_event_name_is_declared() {
    lcds_obs::set_enabled(true);

    // Build path: spans + seed-trial counters + build_complete event.
    let keys = uniform_keys(1024, 0x4A3E);
    let mut rng = seeded(0x4A3F);
    let dict = build_dict(&keys, &mut rng).expect("build");

    // Parallel build path: worker-count gauge.
    let _par = lcds_core::par_build(&keys, 0x4A40).expect("par_build");

    // Serve path: batch counters/histograms + batch latency.
    let hits = bulk_contains(
        &dict,
        &keys,
        0x4A3F,
        EngineConfig {
            batch: 128,
            parallel: false,
        },
    );
    assert!(hits.iter().all(|&b| b));

    // Replay path: probe/stall counters, per-thread timing, QPS gauge —
    // and the global heatmap absorbs the traces.
    let dist = positive_dist(&keys);
    let t = collect(&dict, &dist, 4, 8, &mut rng);
    let r = replay(&t.traces, &t.queries, dict.num_cells());
    assert!(r.total_probes > 0);

    // Ordered path: build counter/gauges, descent query + probe
    // counters, the batch-latency histogram, and the per-level Φ̂
    // labeled gauge family.
    {
        let od = build_ordered(&keys, OrdScheme::Replicated).expect("ordered build");
        let engine = OrderedEngine::new(
            od,
            0x4A42,
            EngineConfig {
                batch: 64,
                parallel: false,
            },
        );
        let preds = engine.bulk_predecessor(&keys);
        assert!(preds.iter().all(|&p| p != NO_PREDECESSOR));
        let phi = engine.phi_per_level(&keys[..256]);
        assert!(!phi.is_empty());
    }

    // Watchdog path: force a trip so EVENT_WATCHDOG and the trips
    // counter are exercised. A single-cell stream has Φ̂ = 1.
    {
        let mut hm = lcds_obs::Heatmap::with_defaults(0x4A41);
        hm.absorb_trace(&[3, 3, 3, 3, 3, 3, 3, 3], 8);
        let mut wd = lcds_obs::Watchdog::new(1.0, 1.5).with_min_probes(1);
        assert!(wd.check(&hm, dict.num_cells()).is_some(), "forced trip");
    }

    // Time-series + SLO + flight-recorder path: TS_*/SLO_* series, the
    // breach event, and the recorder-dump event must all be declared.
    {
        let ts = lcds_obs::TimeSeries::for_global(lcds_obs::TimeSeriesConfig {
            window: std::time::Duration::from_millis(1),
            capacity: 4,
        });
        ts.set_slo(lcds_obs::SloConfig {
            // A 1 ns p99 envelope with single-window hysteresis: the
            // batch latency recorded above guarantees a breach event.
            p99_ns: 1,
            breach_after: 1,
            clear_after: 1,
            ..lcds_obs::SloConfig::default()
        });
        lcds_obs::global()
            .histogram(lcds_obs::names::SERVE_BATCH_LATENCY)
            .record(1_000);
        let (_, transition) = ts.sample();
        assert!(
            transition.is_some_and(|t| t.breached),
            "forced SLO breach did not fire"
        );
        let dir = std::env::temp_dir().join(format!("lcds-names-smoke-{}", std::process::id()));
        let rec = lcds_obs::FlightRecorder::new(&dir);
        rec.dump_live("drain", serde_json::json!({}), &ts, &[])
            .expect("recorder dump");
        std::fs::remove_dir_all(&dir).ok();
    }

    // Labeled gauge families, as `lcds obs` / `lcds watch` emit them.
    lcds_obs::gauge(&format!(
        "{}{{cell=\"7\"}}",
        lcds_obs::names::HOT_CELL_PROBES
    ))
    .set(1.0);
    lcds_obs::gauge(&format!(
        "{}{{cell=\"7\"}}",
        lcds_obs::names::HEATMAP_CELL_PROBES
    ))
    .set(1.0);

    lcds_obs::set_enabled(false);

    let snap = lcds_obs::global().snapshot();
    assert!(
        !snap.is_empty(),
        "smoke run recorded nothing — the gate is stuck off"
    );
    let mut undeclared: Vec<String> = Vec::new();
    for name in snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
    {
        if !lcds_obs::names::is_declared_metric(name) {
            undeclared.push(name.clone());
        }
    }
    assert!(
        undeclared.is_empty(),
        "metric names missing from lcds_obs::names: {undeclared:?}"
    );
    // The ordered family must have recorded, not merely been declared.
    assert!(
        snap.counters
            .contains_key(lcds_obs::names::ORD_QUERIES_TOTAL),
        "ordered smoke did not reach the lcds_ord_* counters"
    );
    assert!(
        snap.gauges
            .keys()
            .any(|k| k.starts_with(lcds_obs::names::ORD_PHI_LEVEL)),
        "phi_per_level did not publish its labeled gauge family"
    );

    let events = lcds_obs::global_events().events();
    assert!(!events.is_empty(), "smoke run emitted no events");
    let bad_events: Vec<&str> = events
        .iter()
        .map(|e| e.name.as_str())
        .filter(|n| !lcds_obs::names::is_declared_event(n))
        .collect();
    assert!(
        bad_events.is_empty(),
        "event names missing from lcds_obs::names: {bad_events:?}"
    );
    // The forced trip above must have landed as a structured event.
    assert!(
        events
            .iter()
            .any(|e| e.name == lcds_obs::names::EVENT_WATCHDOG),
        "watchdog trip did not reach the event log"
    );
}

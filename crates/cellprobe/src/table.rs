//! The cell-probe table: a rectangular array of 64-bit words whose reads are
//! recorded by a [`ProbeSink`].
//!
//! The paper's table is a flat array `T : [s] → {0,1}^b`; the §2.2
//! construction organizes it as a constant number of *rows* of `s` cells
//! each, and every baseline here fits the same shape (a 1-row table is a
//! flat array). Cells are globally numbered row-major so contention is
//! always accounted over the *entire* structure — hot hash-parameter cells
//! included, which is the paper's whole point.

use crate::sink::ProbeSink;

/// Global index of a cell within a table (row-major).
pub type CellId = u64;

/// A `rows × cols` table of 64-bit words.
///
/// `b = 64` bits per cell everywhere in this repository; the paper assumes
/// `b = log₂ N` and our universe is `[2^61 - 1)`, so one word comfortably
/// holds a key, a hash coefficient, a displacement, a base address, or a
/// perfect-hash seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    rows: u32,
    cols: u64,
    words: Vec<u64>,
}

impl Table {
    /// Allocates a table filled with `fill`.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the total size overflows.
    pub fn new(rows: u32, cols: u64, fill: u64) -> Table {
        assert!(rows > 0 && cols > 0, "table dimensions must be positive");
        let total = (rows as u64)
            .checked_mul(cols)
            .expect("table size overflows");
        let total_usize = usize::try_from(total).expect("table too large for address space");
        Table {
            rows,
            cols,
            words: vec![fill; total_usize],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (the paper's `s`).
    #[inline]
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total number of cells `rows · cols` — the `s` used when comparing
    /// contention to the `1/s` optimum.
    #[inline]
    pub fn num_cells(&self) -> u64 {
        self.rows as u64 * self.cols
    }

    /// The global cell id of `(row, col)`.
    #[inline]
    pub fn cell_id(&self, row: u32, col: u64) -> CellId {
        debug_assert!(row < self.rows && col < self.cols);
        row as u64 * self.cols + col
    }

    /// Inverse of [`Table::cell_id`].
    #[inline]
    pub fn cell_pos(&self, cell: CellId) -> (u32, u64) {
        debug_assert!(cell < self.num_cells());
        ((cell / self.cols) as u32, cell % self.cols)
    }

    /// Reads `(row, col)` **and records the probe** — the only read the
    /// query algorithms are allowed to use.
    #[inline]
    pub fn read(&self, row: u32, col: u64, sink: &mut dyn ProbeSink) -> u64 {
        let id = self.cell_id(row, col);
        sink.probe(id);
        self.words[id as usize]
    }

    /// Un-recorded access for construction and verification code (never for
    /// queries).
    #[inline]
    pub fn peek(&self, row: u32, col: u64) -> u64 {
        self.words[self.cell_id(row, col) as usize]
    }

    /// Writes a word during construction.
    #[inline]
    pub fn write(&mut self, row: u32, col: u64, value: u64) {
        let id = self.cell_id(row, col);
        self.words[id as usize] = value;
    }

    /// The raw word storage (row-major), e.g. for the contended-memory
    /// simulators that want to mirror the layout.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, NullSink, TraceSink};

    #[test]
    fn ids_are_row_major_and_invertible() {
        let t = Table::new(3, 5, 0);
        assert_eq!(t.cell_id(0, 0), 0);
        assert_eq!(t.cell_id(1, 0), 5);
        assert_eq!(t.cell_id(2, 4), 14);
        assert_eq!(t.num_cells(), 15);
        for row in 0..3 {
            for col in 0..5 {
                assert_eq!(t.cell_pos(t.cell_id(row, col)), (row, col));
            }
        }
    }

    #[test]
    fn read_records_probe_and_returns_value() {
        let mut t = Table::new(2, 4, 7);
        t.write(1, 2, 99);
        let mut sink = TraceSink::new();
        assert_eq!(t.read(1, 2, &mut sink), 99);
        assert_eq!(t.read(0, 0, &mut sink), 7);
        assert_eq!(sink.trace(), &[t.cell_id(1, 2), 0]);
    }

    #[test]
    fn peek_does_not_record() {
        let t = Table::new(1, 3, 5);
        let mut sink = CountingSink::new(t.num_cells());
        assert_eq!(t.peek(0, 1), 5);
        assert_eq!(sink.total(), 0);
        let _ = t.read(0, 1, &mut sink);
        assert_eq!(sink.total(), 1);
    }

    #[test]
    fn null_sink_compiles_away_probes() {
        let t = Table::new(1, 1, 3);
        let mut sink = NullSink;
        assert_eq!(t.read(0, 0, &mut sink), 3);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = Table::new(0, 5, 0);
    }
}

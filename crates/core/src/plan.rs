//! Batched probe planning and execution for the Theorem 3 dictionary —
//! the core of the `lcds-serve` bulk-query engine.
//!
//! The sequential query walks one key through all `2d + ρ + 4` rows before
//! touching the next key: every probe is a dependent cache miss, and the
//! `2d` hash-coefficient reads are repeated per key even though the rows
//! are fully replicated (every column holds the same word). Serving bulk
//! traffic, both costs are avoidable:
//!
//! 1. **Amortized parameter reads.** Each `f`/`g` coefficient row is read
//!    *once per batch* (from one random replica) instead of once per key —
//!    `2d` probes per batch rather than per key. This only *lowers*
//!    contention on the parameter rows; the per-key rows keep their exact
//!    Theorem 3 profile.
//! 2. **Region-grouped execution.** Probes run stage-at-a-time across the
//!    whole batch — all `z` reads, then all GBAS reads, then each histogram
//!    row, then headers, then data — so at any moment the engine streams
//!    through *one* table row. Independent same-row misses overlap in the
//!    memory system instead of serializing behind each key's chain.
//! 3. **Read-ahead.** Within a stage, entry `i + READ_AHEAD`'s cell is
//!    touched (a plain load folded into a checksum the optimizer cannot
//!    drop) while entry `i` is being resolved — a safe-Rust software
//!    prefetch that hides the random-access latency of the next plan
//!    entry.
//!
//! Balancing randomness (which replica to read) is drawn from
//! [`StreamRng::for_stream`]`(seed, global key index)` — per-key streams
//! addressed by position, so replica choices never depend on how a query
//! array was chunked into batches or routed across shards. The per-batch
//! coefficient-replica choice is the one draw that is inherently
//! batch-scoped; answers never depend on it.
//!
//! Answers are bit-for-bit those of
//! [`LowContentionDict::resolve_contains`]; the equivalence is tested
//! across batch sizes and shard counts in `tests/batched_serving.rs`.

use crate::dict::{LowContentionDict, MAX_D};
use crate::histogram;
use lcds_cellprobe::rngutil::{uniform_below, StreamRng};
use lcds_cellprobe::sink::{PlanStage, ProbeSink};
use lcds_hashing::perfect::PerfectHash;
use lcds_hashing::poly::horner;

/// How far ahead of the current plan entry the execute sweeps touch the
/// table. Deep enough to cover one memory round-trip at typical batch
/// processing rates; shallow enough that the touched lines are still
/// resident when their entry is resolved.
pub const READ_AHEAD: usize = 8;

/// Reusable scratch for one batch: the probe plan's per-key columns and
/// intermediate hash state, kept as parallel arrays so each execution
/// stage streams through contiguous memory.
///
/// A plan is cheap to create but cheaper to reuse — callers running many
/// batches (the `lcds-serve` engine, the criterion benches) hold one per
/// worker and amortize the allocations away.
#[derive(Clone, Debug, Default)]
pub struct BatchPlan {
    rng: Vec<StreamRng>,
    fx: Vec<u64>,
    col: Vec<u64>,
    h: Vec<u64>,
    gbas: Vec<u64>,
    hist: Vec<u64>,
    start: Vec<u64>,
    range: Vec<u64>,
    active: Vec<u32>,
}

impl BatchPlan {
    /// An empty plan (no scratch allocated yet).
    pub fn new() -> BatchPlan {
        BatchPlan::default()
    }

    /// Runs the batch with key `i`'s randomness stream addressed as
    /// `first_index + i` (contiguous chunk of a larger query array).
    pub fn run(
        &mut self,
        dict: &LowContentionDict,
        keys: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        self.run_inner(dict, keys, &|i| first_index + i as u64, seed, sink, out);
    }

    /// Runs the batch with explicit per-key stream indices — the sharded
    /// router gathers keys per shard, so positions are not contiguous.
    ///
    /// # Panics
    /// Panics if `indices.len() != keys.len()`.
    pub fn run_indexed(
        &mut self,
        dict: &LowContentionDict,
        keys: &[u64],
        indices: &[u64],
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        assert_eq!(indices.len(), keys.len(), "one stream index per key");
        self.run_inner(dict, keys, &|i| indices[i], seed, sink, out);
    }

    fn clear(&mut self) {
        self.rng.clear();
        self.fx.clear();
        self.col.clear();
        self.h.clear();
        self.gbas.clear();
        self.hist.clear();
        self.start.clear();
        self.range.clear();
        self.active.clear();
    }

    fn run_inner(
        &mut self,
        dict: &LowContentionDict,
        keys: &[u64],
        idx: &dyn Fn(usize) -> u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        let b = keys.len();
        if b == 0 {
            return;
        }
        let p = *dict.params();
        let l = *dict.layout();
        let t = dict.table();
        let words = t.words();
        let d = p.d;
        self.clear();
        // One `begin_query` per batch: probes are ordered by region, not by
        // query, so per-step sinks don't apply (see the trait docs).
        sink.begin_query();
        // Dead-store-proof accumulator for the read-ahead touches.
        let mut ra_acc = 0u64;
        let touch = |acc: &mut u64, cell: u64| {
            *acc = acc.wrapping_add(words[cell as usize]);
        };

        // Stage 0 — reconstruct f and g once per batch: the coefficient
        // rows are fully replicated, so one probe per row (at a random
        // replica, from a batch-scoped stream) yields the whole function.
        sink.stage(PlanStage::Coefficients);
        let mut prng = StreamRng::for_stream(seed ^ 0x9E37_79B9_7F4A_7C15, idx(0));
        let mut fw = [0u64; MAX_D];
        let mut gw = [0u64; MAX_D];
        for i in 0..d as u32 {
            fw[i as usize] = t.read(l.row_f(i), uniform_below(&mut prng, p.s), sink);
            gw[i as usize] = t.read(l.row_g(i), uniform_below(&mut prng, p.s), sink);
        }

        // Stage 1 (plan) — per key: hash arithmetic and the z replica
        // choice. Pure compute; no table traffic.
        for (i, &x) in keys.iter().enumerate() {
            let mut rng = StreamRng::for_stream(seed, idx(i));
            let gx = horner(&gw[..d], x) % p.r;
            let copies = l.replica_count(p.r, gx);
            self.col
                .push(l.replica_col(p.r, gx, uniform_below(&mut rng, copies)));
            self.fx.push(horner(&fw[..d], x) % p.s);
            self.rng.push(rng);
        }

        // Stage 2 (execute) — z reads, region `row_z`, with read-ahead;
        // resolves each key's bucket h and plans its GBAS replica column.
        sink.stage(PlanStage::Displacement);
        let z_base = l.row_z() as u64 * p.s;
        for i in 0..b {
            if i + READ_AHEAD < b {
                touch(&mut ra_acc, z_base + self.col[i + READ_AHEAD]);
            }
            let zg = t.read(l.row_z(), self.col[i], sink);
            let sum = self.fx[i] + zg;
            self.h.push(if sum >= p.s { sum - p.s } else { sum });
        }
        let reps = p.group_size; // m | s ⇒ every residue has s/m replicas
        for i in 0..b {
            let hp = self.h[i] % p.m;
            self.col[i] = l.replica_col(p.m, hp, uniform_below(&mut self.rng[i], reps));
        }

        // Stage 3 (execute) — GBAS reads, region `row_gbas`.
        sink.stage(PlanStage::GroupBase);
        let gbas_base = l.row_gbas() as u64 * p.s;
        for i in 0..b {
            if i + READ_AHEAD < b {
                touch(&mut ra_acc, gbas_base + self.col[i + READ_AHEAD]);
            }
            self.gbas.push(t.read(l.row_gbas(), self.col[i], sink));
        }

        // Stage 4 (execute) — histogram words, one region (row) at a time.
        // Each key's hist columns are drawn from its own stream in
        // ascending word order, exactly as the sequential path does.
        sink.stage(PlanStage::Histogram);
        let rho = p.rho as usize;
        self.hist.resize(b * rho, 0);
        for w in 0..p.rho {
            for i in 0..b {
                let hp = self.h[i] % p.m;
                self.col[i] = l.replica_col(p.m, hp, uniform_below(&mut self.rng[i], reps));
            }
            let hist_base = l.row_hist(w) as u64 * p.s;
            for i in 0..b {
                if i + READ_AHEAD < b {
                    touch(&mut ra_acc, hist_base + self.col[i + READ_AHEAD]);
                }
                self.hist[i * rho + w as usize] = t.read(l.row_hist(w), self.col[i], sink);
            }
        }

        // Stage 5 (plan) — locate each bucket in its group histogram.
        // Empty buckets answer negative here and leave the plan; the
        // survivors carry on to the header/data stages.
        let out_base = out.len();
        out.resize(out_base + b, false);
        for i in 0..b {
            let k_star = self.h[i] / p.m;
            let (off, load) = histogram::locate(&self.hist[i * rho..(i + 1) * rho], k_star);
            if load == 0 {
                continue;
            }
            let start = self.gbas[i] + off;
            let range = (load as u64) * (load as u64);
            self.start.push(start);
            self.range.push(range);
            self.col[self.active.len()] = start + uniform_below(&mut self.rng[i], range);
            self.active.push(i as u32);
        }

        // Stage 6 (execute) — header reads (perfect-hash seeds), active
        // entries only.
        sink.stage(PlanStage::Header);
        let a = self.active.len();
        let header_base = l.row_header() as u64 * p.s;
        for j in 0..a {
            if j + READ_AHEAD < a {
                touch(&mut ra_acc, header_base + self.col[j + READ_AHEAD]);
            }
            let seed_word = t.read(l.row_header(), self.col[j], sink);
            let ph = PerfectHash::from_seed(seed_word, self.range[j]);
            let x = keys[self.active[j] as usize];
            self.col[j] = self.start[j] + ph.eval(x);
        }

        // Stage 7 (execute) — data reads settle membership by comparison.
        sink.stage(PlanStage::Data);
        let data_base = l.row_data() as u64 * p.s;
        for j in 0..a {
            if j + READ_AHEAD < a {
                touch(&mut ra_acc, data_base + self.col[j + READ_AHEAD]);
            }
            let i = self.active[j] as usize;
            out[out_base + i] = t.read(l.row_data(), self.col[j], sink) == keys[i];
        }
        std::hint::black_box(ra_acc);

        if lcds_obs::enabled() {
            let reg = lcds_obs::global();
            reg.counter(lcds_obs::names::SERVE_PLAN_ENTRIES_TOTAL)
                .add(b as u64);
            reg.counter(lcds_obs::names::SERVE_PLAN_ACTIVE_TOTAL)
                .add(a as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use lcds_cellprobe::dict::CellProbeDict;
    use lcds_cellprobe::sink::{CountingSink, NullSink};
    use lcds_workloads::keysets::uniform_keys;
    use lcds_workloads::querygen::negative_pool;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dict(n: usize, salt: u64) -> LowContentionDict {
        build(&uniform_keys(n, salt), &mut ChaCha8Rng::seed_from_u64(salt)).expect("build")
    }

    fn mixed_probes(d: &LowContentionDict, negs: usize, salt: u64) -> Vec<u64> {
        d.keys()
            .iter()
            .copied()
            .chain(negative_pool(d.keys(), negs, salt))
            .collect()
    }

    #[test]
    fn planned_batch_matches_resolve() {
        let d = dict(2000, 21);
        let probes = mixed_probes(&d, 2000, 22);
        let mut plan = BatchPlan::new();
        let mut out = Vec::new();
        plan.run(&d, &probes, 0, 5, &mut NullSink, &mut out);
        assert_eq!(out.len(), probes.len());
        for (i, &x) in probes.iter().enumerate() {
            assert_eq!(out[i], d.resolve_contains(x), "key {x}");
        }
    }

    #[test]
    fn planned_batch_matches_trait_default_answers() {
        let d = dict(700, 23);
        let probes = mixed_probes(&d, 700, 24);
        let mut planned = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 9, &mut NullSink, &mut planned);
        // The un-overridden default: per-key `contains` with the same
        // per-key streams.
        let mut per_key = Vec::new();
        for (i, &x) in probes.iter().enumerate() {
            let mut rng = StreamRng::for_stream(9, i as u64);
            per_key.push(d.contains(x, &mut rng, &mut NullSink));
        }
        assert_eq!(planned, per_key);
    }

    #[test]
    fn plan_reuse_and_batch_splits_agree() {
        let d = dict(900, 25);
        let probes = mixed_probes(&d, 900, 26);
        let mut whole = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 3, &mut NullSink, &mut whole);
        let mut plan = BatchPlan::new();
        for chunk in [1usize, 64, 333] {
            let mut pieced = Vec::new();
            for (c, part) in probes.chunks(chunk).enumerate() {
                plan.run(&d, part, (c * chunk) as u64, 3, &mut NullSink, &mut pieced);
            }
            assert_eq!(pieced, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn run_indexed_matches_contiguous_streams() {
        // Routing keys through run_indexed with their original positions
        // must reproduce the contiguous run exactly — the property the
        // sharded router depends on.
        let d = dict(600, 27);
        let probes = mixed_probes(&d, 600, 28);
        let mut whole = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 11, &mut NullSink, &mut whole);
        // Gather even positions then odd positions, as a shard split would.
        let mut plan = BatchPlan::new();
        let mut scattered = vec![false; probes.len()];
        for parity in 0..2u64 {
            let (keys, idxs): (Vec<u64>, Vec<u64>) = probes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as u64 % 2 == parity)
                .map(|(i, &x)| (x, i as u64))
                .unzip();
            let mut part = Vec::new();
            plan.run_indexed(&d, &keys, &idxs, 11, &mut NullSink, &mut part);
            for (j, &i) in idxs.iter().enumerate() {
                scattered[i as usize] = part[j];
            }
        }
        assert_eq!(scattered, whole);
    }

    #[test]
    fn batch_probes_fewer_parameter_cells() {
        // The batched path reads each coefficient row once per batch, so
        // total probes must undercut the per-key path by ~2d per key while
        // still touching every per-key row.
        let d = dict(500, 29);
        let probes = mixed_probes(&d, 0, 0);
        let mut sink = CountingSink::new(d.num_cells());
        let mut out = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 7, &mut sink, &mut out);
        let b = probes.len() as u64;
        let dd = d.params().d as u64;
        let rho = d.params().rho as u64;
        // 2d batch-level + per key: z + gbas + ρ hist + header + data
        // (all probes are positives here, so nothing stops early).
        assert_eq!(sink.total(), 2 * dd + b * (rho + 4));
    }

    #[test]
    fn stages_label_every_probe_region() {
        // Per-stage probe counts for an all-positive batch: 2d coefficient
        // reads, then b probes in each per-key stage (ρ·b for histogram).
        #[derive(Default)]
        struct StageCounter {
            current: PlanStage,
            by_stage: std::collections::HashMap<PlanStage, u64>,
        }
        impl ProbeSink for StageCounter {
            fn probe(&mut self, _cell: u64) {
                *self.by_stage.entry(self.current).or_insert(0) += 1;
            }
            fn stage(&mut self, stage: PlanStage) {
                self.current = stage;
            }
        }

        let d = dict(500, 29);
        let probes = mixed_probes(&d, 0, 0);
        let mut sink = StageCounter::default();
        let mut out = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 7, &mut sink, &mut out);
        let b = probes.len() as u64;
        let p = *d.params();
        let get = |s: PlanStage| sink.by_stage.get(&s).copied().unwrap_or(0);
        assert_eq!(get(PlanStage::Coefficients), 2 * p.d as u64);
        assert_eq!(get(PlanStage::Displacement), b);
        assert_eq!(get(PlanStage::GroupBase), b);
        assert_eq!(get(PlanStage::Histogram), p.rho as u64 * b);
        assert_eq!(get(PlanStage::Header), b);
        assert_eq!(get(PlanStage::Data), b);
        assert_eq!(get(PlanStage::Other), 0, "no probe escapes its stage");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let d = dict(100, 31);
        let mut out = Vec::new();
        BatchPlan::new().run(&d, &[], 0, 1, &mut NullSink, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_batches_below_read_ahead_work() {
        let d = dict(400, 33);
        for b in 1..=3usize {
            let probes: Vec<u64> = d.keys().iter().copied().take(b).collect();
            let mut out = Vec::new();
            BatchPlan::new().run(&d, &probes, 0, 2, &mut NullSink, &mut out);
            assert!(out.iter().all(|&v| v), "batch of {b}");
        }
    }

    #[test]
    #[should_panic(expected = "one stream index per key")]
    fn run_indexed_length_mismatch_panics() {
        let d = dict(50, 35);
        let mut out = Vec::new();
        BatchPlan::new().run_indexed(&d, &[1, 2], &[0], 0, &mut NullSink, &mut out);
    }
}

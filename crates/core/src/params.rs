//! Parameter derivation for the §2.2 construction.
//!
//! The paper fixes constants `c = 2e`, an independence degree `d > 2`, and
//! (via Lemma 9) constraints tying the remaining knobs together:
//!
//! * `r = n^{1-δ}` displacement classes, with `2/(d+2) < δ < 1 − 1/d`;
//! * `m = n / (α ln n)` groups, with `α > d / (c (ln c − 1))`;
//! * `s = βn` buckets/columns with `β ≥ 2`, **divisible by `m`** so that
//!   `h' = h mod m` is itself a uniform DM function (§2.2).
//!
//! [`ParamsConfig`] holds the knobs (validated against those constraints)
//! and [`Params::derive`] turns `(n, config)` into the concrete integer
//! parameters, rounding `s` *up* to the next multiple of `m` (this only
//! increases space slack and keeps the divisibility the paper wants; `r`
//! need not divide `s` — replicas of `z` are sampled among the actual
//! `⌊s/r⌋`/`⌈s/r⌉` copies, see `layout.rs`).

use std::f64::consts::E;

/// Tunable constants of the construction. [`ParamsConfig::default`]
/// satisfies every Lemma 9 constraint with `d = 4`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamsConfig {
    /// Independence degree `d > 2` of the polynomial families.
    pub d: usize,
    /// Load-cap constant `c > e`; the paper uses `c = 2e`.
    pub c: f64,
    /// Group-count constant `α > d / (c (ln c − 1))`.
    pub alpha: f64,
    /// Space constant `β ≥ 2` (`s ≈ βn`).
    pub beta: f64,
    /// Class exponent: `r = n^{1-δ}`, `2/(d+2) < δ < 1 − 1/d`.
    pub delta: f64,
    /// Give up after this many rejected `(f, g, z)` draws (expected O(1)
    /// needed; the cap only guards against misconfiguration).
    pub max_hash_retries: u32,
}

impl Default for ParamsConfig {
    fn default() -> ParamsConfig {
        ParamsConfig {
            d: 4,
            c: 2.0 * E,
            alpha: 2.0,
            beta: 2.0,
            delta: 0.5,
            max_hash_retries: 1000,
        }
    }
}

impl ParamsConfig {
    /// Checks every Lemma 9 side condition; returns a human-readable reason
    /// on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.d <= 2 {
            return Err(format!("d must exceed 2 (Lemma 9), got {}", self.d));
        }
        if self.d > 8 {
            return Err(format!(
                "d must be at most 8 (query-path stack buffer), got {}",
                self.d
            ));
        }
        if self.c <= E {
            return Err(format!("c must exceed e (Theorem 7), got {}", self.c));
        }
        let lo = 2.0 / (self.d as f64 + 2.0);
        let hi = 1.0 - 1.0 / self.d as f64;
        if !(self.delta > lo && self.delta < hi) {
            return Err(format!(
                "delta must lie in ({lo:.4}, {hi:.4}) for d = {}, got {}",
                self.d, self.delta
            ));
        }
        let alpha_min = self.d as f64 / (self.c * (self.c.ln() - 1.0));
        if self.alpha <= alpha_min {
            return Err(format!(
                "alpha must exceed d/(c(ln c - 1)) = {alpha_min:.4}, got {}",
                self.alpha
            ));
        }
        if self.beta < 2.0 {
            return Err(format!("beta must be at least 2, got {}", self.beta));
        }
        if self.max_hash_retries == 0 {
            return Err("max_hash_retries must be positive".into());
        }
        Ok(())
    }
}

/// Concrete integer parameters for one data-set size `n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Number of stored keys.
    pub n: u64,
    /// Independence degree.
    pub d: usize,
    /// Load-cap constant.
    pub c: f64,
    /// Displacement classes `r ≈ n^{1-δ}`.
    pub r: u64,
    /// Number of groups `m ≈ n/(α ln n)`; divides `s`.
    pub m: u64,
    /// Buckets / columns per row, `s ≈ βn`, multiple of `m`.
    pub s: u64,
    /// Buckets per group, `s / m`.
    pub group_size: u64,
    /// Keys allowed per group by P(S): `⌊c·n/m⌋`.
    pub group_load_cap: u64,
    /// Keys allowed per `g`-class by P(S): `⌊c·n/r⌋`.
    pub class_load_cap: u64,
    /// Histogram capacity in bits: `group_load_cap + group_size` (unary
    /// loads plus one separator per bucket).
    pub hist_bits: u64,
    /// Histogram words per group, `⌈hist_bits / 64⌉` — the paper's ρ.
    pub rho: u32,
}

impl Params {
    /// Derives parameters for `n ≥ 1` keys under `config`.
    ///
    /// # Panics
    /// Panics if `n == 0` or the config is invalid.
    pub fn derive(n: u64, config: &ParamsConfig) -> Params {
        assert!(n >= 1, "the dictionary requires at least one key");
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid config: {e}"));
        let nf = n as f64;

        let r = (nf.powf(1.0 - config.delta).round() as u64).max(1);

        // m = n / (α ln n), clamped to [1, n]; ln n < 1 for n ≤ 2 degenerates
        // to a single group, which is fine (everything is replicated s times).
        let m = if n >= 3 {
            ((nf / (config.alpha * nf.ln())).floor() as u64).clamp(1, n)
        } else {
            1
        };

        // s = βn rounded UP to a multiple of m (keeps m | s; adds < m ≤ n
        // cells of slack, within the O(n) space budget).
        let s_raw = (config.beta * nf).ceil() as u64;
        let s = s_raw.div_ceil(m) * m;
        let group_size = s / m;

        let group_load_cap = (config.c * nf / m as f64).floor() as u64;
        let class_load_cap = (config.c * nf / r as f64).floor() as u64;
        let hist_bits = group_load_cap + group_size;
        let rho = u32::try_from(hist_bits.div_ceil(64)).expect("rho overflow");
        assert!(
            rho <= 16,
            "rho = {rho} exceeds the query-path histogram buffer; \
             n = {n} is outside the supported range"
        );

        Params {
            n,
            d: config.d,
            c: config.c,
            r,
            m,
            s,
            group_size,
            group_load_cap,
            class_load_cap,
            hist_bits,
            rho,
        }
    }

    /// The bucket index (`[s]`) of a group-local position: bucket `k` of
    /// group `i` is `k·m + i` (§2.2's congruence-class arrangement).
    #[inline]
    pub fn bucket_of(&self, group: u64, k: u64) -> u64 {
        debug_assert!(group < self.m && k < self.group_size);
        k * self.m + group
    }

    /// The DM displacement `h(x) = (f(x) + z_{g(x)}) mod s`, by conditional
    /// subtraction (both summands are `< s`, so one subtraction suffices).
    #[inline]
    pub fn displace(&self, fx: u64, z: u64) -> u64 {
        debug_assert!(fx < self.s && z < self.s);
        let t = fx + z;
        if t >= self.s {
            t - self.s
        } else {
            t
        }
    }

    /// Lemma 9 clause 1: is this `g`-class load within `⌊c·n/r⌋`?
    #[inline]
    pub fn class_load_within_cap(&self, load: u32) -> bool {
        load as u64 <= self.class_load_cap
    }

    /// Lemma 9 clause 2: is this group load within `⌊c·n/m⌋`?
    #[inline]
    pub fn group_load_within_cap(&self, load: u32) -> bool {
        load as u64 <= self.group_load_cap
    }

    /// Lemma 9 clause 3 (the FKS condition): does `Σℓ²` fit in `s` cells?
    #[inline]
    pub fn fks_within_space(&self, sum_squared_loads: u64) -> bool {
        sum_squared_loads <= self.s
    }

    /// Which group a bucket belongs to: `bucket mod m`.
    #[inline]
    pub fn group_of(&self, bucket: u64) -> u64 {
        bucket % self.m
    }

    /// A bucket's position within its group: `bucket / m`.
    #[inline]
    pub fn index_in_group(&self, bucket: u64) -> u64 {
        bucket / self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ParamsConfig::default()
            .validate()
            .expect("default must validate");
    }

    #[test]
    fn invalid_configs_are_rejected_with_reasons() {
        let base = ParamsConfig::default();
        let cases: Vec<(ParamsConfig, &str)> = vec![
            (ParamsConfig { d: 2, ..base }, "d must exceed 2"),
            (
                ParamsConfig {
                    d: 9,
                    delta: 0.5,
                    ..base
                },
                "d must be at most 8",
            ),
            (ParamsConfig { c: 2.0, ..base }, "c must exceed e"),
            (ParamsConfig { delta: 0.9, ..base }, "delta must lie"),
            (ParamsConfig { delta: 0.1, ..base }, "delta must lie"),
            (ParamsConfig { alpha: 0.1, ..base }, "alpha must exceed"),
            (
                ParamsConfig { beta: 1.0, ..base },
                "beta must be at least 2",
            ),
            (
                ParamsConfig {
                    max_hash_retries: 0,
                    ..base
                },
                "max_hash_retries",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().expect_err("must be invalid");
            assert!(err.contains(needle), "error {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn derived_params_satisfy_structure() {
        for n in [1u64, 2, 3, 10, 100, 1024, 65_536] {
            let p = Params::derive(n, &ParamsConfig::default());
            assert!(p.m >= 1 && p.m <= n.max(1), "n={n}: m={}", p.m);
            assert_eq!(p.s % p.m, 0, "n={n}: m must divide s");
            assert!(p.s >= 2 * n, "n={n}: s={} below 2n", p.s);
            assert_eq!(p.group_size, p.s / p.m);
            assert!(p.r >= 1);
            assert_eq!(p.rho as u64, p.hist_bits.div_ceil(64));
            assert!(p.rho >= 1);
        }
    }

    #[test]
    fn space_overhead_is_linear() {
        // s ≤ βn + m ≤ (β+1)n: the rounding never breaks linear space.
        for n in [5u64, 77, 1000, 1 << 14] {
            let p = Params::derive(n, &ParamsConfig::default());
            assert!(p.s <= 3 * n + 3, "n={n}: s={}", p.s);
        }
    }

    #[test]
    fn rho_is_small_constant_across_sizes() {
        // ρ = O(1): α(β+c)ln n bits packed into Θ(log n)-bit words.
        for n in [64u64, 1 << 10, 1 << 14, 1 << 17, 1 << 20] {
            let p = Params::derive(n, &ParamsConfig::default());
            assert!(p.rho <= 8, "n={n}: rho={} not O(1)-small", p.rho);
        }
    }

    #[test]
    fn r_tracks_sqrt_n_for_default_delta() {
        let p = Params::derive(1 << 16, &ParamsConfig::default());
        assert_eq!(p.r, 256);
    }

    #[test]
    fn bucket_group_round_trips() {
        let p = Params::derive(1000, &ParamsConfig::default());
        for group in [0, 1, p.m - 1] {
            for k in [0, 1, p.group_size - 1] {
                let b = p.bucket_of(group, k);
                assert!(b < p.s);
                assert_eq!(p.group_of(b), group);
                assert_eq!(p.index_in_group(b), k);
            }
        }
    }

    #[test]
    fn displace_wraps_mod_s() {
        let p = Params::derive(100, &ParamsConfig::default());
        assert_eq!(p.displace(0, 0), 0);
        assert_eq!(p.displace(p.s - 1, 1), 0);
        assert_eq!(p.displace(p.s - 1, p.s - 1), p.s - 2);
        assert_eq!(p.displace(3, 4), 7);
    }

    #[test]
    fn load_predicates_match_caps() {
        let p = Params::derive(1000, &ParamsConfig::default());
        assert!(p.class_load_within_cap(p.class_load_cap as u32));
        assert!(!p.class_load_within_cap(p.class_load_cap as u32 + 1));
        assert!(p.group_load_within_cap(p.group_load_cap as u32));
        assert!(!p.group_load_within_cap(p.group_load_cap as u32 + 1));
        assert!(p.fks_within_space(p.s));
        assert!(!p.fks_within_space(p.s + 1));
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_n_rejected() {
        let _ = Params::derive(0, &ParamsConfig::default());
    }

    #[test]
    fn tiny_n_degenerates_gracefully() {
        let p = Params::derive(1, &ParamsConfig::default());
        assert_eq!(p.m, 1);
        assert_eq!(p.group_size, p.s);
        let p2 = Params::derive(2, &ParamsConfig::default());
        assert_eq!(p2.m, 1);
    }
}

//! F10 — the dynamic dictionary (the paper's closing open problem):
//! amortized update cost and query contention across an update stream.

use lcds_cellprobe::dist::QueryPool;
use lcds_cellprobe::exact::exact_contention;
use lcds_cellprobe::report::{sig4, TextTable};
use lcds_core::dynamic::DynamicLcd;
use lcds_core::ParamsConfig;
use lcds_hashing::mix::derive;
use lcds_hashing::MAX_KEY;
use lcds_workloads::keysets::uniform_keys;
use serde_json::json;

use super::ExpOutput;

/// **F10** — drive interleaved inserts/deletes through [`DynamicLcd`],
/// sampling (a) amortized cells written per update and (b) the exact query
/// contention ratio of snapshots along the way. The claims: amortized
/// writes are a constant (rebuilds are paid for by the `Θ(n)` updates that
/// trigger them) and query contention never leaves the low-contention
/// regime (main structure flat; delta adds a short-cluster factor).
pub fn f10(quick: bool) -> ExpOutput {
    let n0 = if quick { 512 } else { 4096 };
    let updates = if quick { 600u64 } else { 40_000 };
    let checkpoints = 8u64;

    let initial = uniform_keys(n0, 0xD100);
    let mut dict = DynamicLcd::new(&initial, 0xD101, ParamsConfig::default()).expect("init");

    let mut table = TextTable::new(
        format!("F10 — dynamic dictionary over {updates} updates (start n = {n0})"),
        &[
            "updates",
            "live keys",
            "delta entries",
            "rebuilds",
            "amortized writes/update",
            "hottest cell × per-key share (1.0 = flat)",
        ],
    );
    let mut csv = String::from("updates,live,rebuilds,amortized,ratio\n");
    let mut rows = Vec::new();
    let mut applied = 0u64;
    for cp in 1..=checkpoints {
        let target = updates * cp / checkpoints;
        while applied < target {
            let roll = derive(0xD102, applied);
            if roll % 3 == 0 && dict.len() > n0 / 2 {
                // Delete a pseudo-random live key (deterministic pick).
                let live_count = dict.len() as u64;
                let idx = derive(0xD103, applied) % live_count;
                // BTreeSet iteration order is sorted; pick by rank through
                // the public snapshot of main keys + recent inserts is not
                // exposed, so delete a key we know we inserted, else skip.
                let candidate = derive(0xD104, idx) % MAX_KEY;
                let _ = dict.remove(candidate).expect("remove");
                // Ensure progress even when the candidate was absent:
                if dict
                    .remove(initial[(idx % n0 as u64) as usize])
                    .expect("remove")
                {
                    applied += 1;
                    continue;
                }
            }
            let key = derive(0xD105, applied) % MAX_KEY;
            if dict.insert(key).expect("insert") {
                applied += 1;
            } else {
                let _ = dict.remove(key).expect("remove");
                applied += 1;
            }
        }
        let live: Vec<u64> = {
            // Query pool: sample positives by re-deriving inserted keys.
            let mut keys = Vec::new();
            let mut i = 0u64;
            while keys.len() < 192 && i < applied + n0 as u64 {
                let k = if i < n0 as u64 {
                    initial[i as usize]
                } else {
                    derive(0xD105, i - n0 as u64) % MAX_KEY
                };
                let mut rng = lcds_workloads::rng::seeded(1);
                let snap = dict.snapshot();
                if lcds_cellprobe::dict::CellProbeDict::contains(
                    &snap,
                    k,
                    &mut rng,
                    &mut lcds_cellprobe::sink::NullSink,
                ) {
                    keys.push(k);
                }
                i += 1;
            }
            keys
        };
        let snap = dict.snapshot();
        // Normalize against the sampled pool, not the cell count: with a
        // k-key uniform pool each key's data cell trivially carries 1/k,
        // so "hottest cell × k" is 1.0 for a perfectly flat structure and
        // k for a binary-search-style hot cell — pool-size independent.
        let ratio = if live.is_empty() {
            0.0
        } else {
            exact_contention(&snap, &QueryPool::uniform(&live)).max_step() * live.len() as f64
        };
        let st = *dict.write_stats();
        table.row(vec![
            applied.to_string(),
            dict.len().to_string(),
            dict.delta_len().to_string(),
            st.rebuilds.to_string(),
            sig4(st.amortized_writes()),
            sig4(ratio),
        ]);
        csv.push_str(&format!(
            "{applied},{},{},{},{ratio}\n",
            dict.len(),
            st.rebuilds,
            st.amortized_writes()
        ));
        rows.push(json!({
            "updates": applied,
            "live": dict.len(),
            "rebuilds": st.rebuilds,
            "amortized_writes": st.amortized_writes(),
            "ratio": ratio,
        }));
    }

    ExpOutput {
        id: "f10",
        tables: vec![table],
        series: vec![("f10_dynamic.csv".into(), csv)],
        json: json!({ "initial_n": n0, "updates": updates, "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f10_amortized_writes_bounded_and_contention_low() {
        let out = f10(true);
        let rows = out.json["rows"].as_array().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last["amortized_writes"].as_f64().unwrap() < 300.0,
            "amortized writes {last}"
        );
        assert!(
            last["rebuilds"].as_u64().unwrap() >= 2,
            "must rebuild: {last}"
        );
        for row in rows {
            // Flat = 1.0; the delta's linear-probe clusters and the short
            // sampled pool allow a modest constant above that.
            let ratio = row["ratio"].as_f64().unwrap();
            assert!(ratio < 40.0, "normalized contention {ratio} at {row}");
        }
    }
}

//! Production-path telemetry overhead: the cost a query pays when its
//! probe stream is observed through `lcds-obs` sinks, relative to the
//! free `NullSink` baseline.
//!
//! The acceptance bar (docs/OBSERVABILITY.md) is ≤5% overhead for
//! `SamplingSink` at 1-in-1024: the unsampled path is a decrement, a
//! compare, and a branch per probe, amortizing the downstream sink's
//! cost over the sampling period.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::sink::{CountingSink, NullSink, ProbeSink};
use lcds_obs::{SamplingSink, TopKSink};
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::rng::seeded;

fn bench_sink_overhead(c: &mut Criterion) {
    let n = 1 << 14;
    let keys = uniform_keys(n, 0x0B5E);
    let dict = lcds_core::build(&keys, &mut seeded(0x0B5F)).expect("build");

    let mut group = c.benchmark_group("obs_overhead");

    // Baseline: the probe stream is discarded.
    group.bench_function("null_sink", |b| {
        let mut rng = seeded(1);
        let mut i = 0usize;
        b.iter(|| {
            let x = keys[i % keys.len()];
            i += 1;
            let mut sink = NullSink;
            sink.begin_query();
            black_box(dict.contains(black_box(x), &mut rng, &mut sink))
        });
    });

    // 1-in-1024 sampling in front of a top-K hot-cell detector: the
    // configuration the ≤5% overhead criterion targets.
    group.bench_function("sampling_1in1024_topk", |b| {
        let mut rng = seeded(2);
        let mut topk = TopKSink::new(16);
        let mut sampler = SamplingSink::new(&mut topk, 1024, 0x5EED);
        let mut i = 0usize;
        b.iter(|| {
            let x = keys[i % keys.len()];
            i += 1;
            sampler.begin_query();
            black_box(dict.contains(black_box(x), &mut rng, &mut sampler))
        });
    });

    // Same sampler over a free downstream sink: isolates the sampler's
    // own decrement-and-branch cost from the top-K updates.
    group.bench_function("sampling_1in1024_null", |b| {
        let mut rng = seeded(3);
        let mut null = NullSink;
        let mut sampler = SamplingSink::new(&mut null, 1024, 0x5EED);
        let mut i = 0usize;
        b.iter(|| {
            let x = keys[i % keys.len()];
            i += 1;
            sampler.begin_query();
            black_box(dict.contains(black_box(x), &mut rng, &mut sampler))
        });
    });

    // Unsampled observers, for scale: every probe updates the sketch /
    // the per-cell count vector.
    group.bench_function("unsampled_topk", |b| {
        let mut rng = seeded(4);
        let mut topk = TopKSink::new(16);
        let mut i = 0usize;
        b.iter(|| {
            let x = keys[i % keys.len()];
            i += 1;
            topk.begin_query();
            black_box(dict.contains(black_box(x), &mut rng, &mut topk))
        });
    });
    group.bench_function("unsampled_counting", |b| {
        let mut rng = seeded(5);
        let mut counting = CountingSink::new(dict.num_cells());
        let mut i = 0usize;
        b.iter(|| {
            let x = keys[i % keys.len()];
            i += 1;
            counting.begin_query();
            black_box(dict.contains(black_box(x), &mut rng, &mut counting))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sink_overhead);
criterion_main!(benches);

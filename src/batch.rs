//! Data-parallel bulk queries, served by the [`lcds_serve`] engine.
//!
//! A static read-only dictionary is embarrassingly parallel on real
//! hardware *when its contention is flat* — which is the whole point of
//! the paper. These wrappers keep the original simple API and delegate to
//! [`lcds_serve::bulk_contains`]: batched probe plans, region-grouped
//! execution with read-ahead, Rayon across batches.
//!
//! Determinism contract (stronger than the old per-key loop): key `i`'s
//! balancing randomness is derived from `(seed, i)` — its *global*
//! position — so results are identical whatever the batch size, chunk
//! constant, thread count, or schedule. The old code seeded one RNG per
//! chunk (`seed ⊕ chunk_index`), which silently changed every replica
//! choice (and any contention trace derived from them) whenever `CHUNK`
//! changed.

use lcds_cellprobe::dict::CellProbeDict;
use lcds_serve::EngineConfig;

/// Keys per batch: large enough to amortize the per-batch parameter-row
/// reads and task overhead, small enough to load-balance. Answers do
/// **not** depend on this constant.
const CHUNK: usize = 1024;

/// Bulk membership: `out[i] = dict.contains(keys[i])`, evaluated in
/// parallel across Rayon's thread pool via batched probe plans.
///
/// Deterministic in `seed` alone; see the module docs.
pub fn par_contains<D: CellProbeDict + Sync + ?Sized>(
    dict: &D,
    keys: &[u64],
    seed: u64,
) -> Vec<bool> {
    lcds_serve::bulk_contains(dict, keys, seed, EngineConfig::with_batch(CHUNK))
}

/// Bulk membership count: how many of `keys` are members (parallel
/// map-reduce; avoids materializing the bool vector).
pub fn par_count_members<D: CellProbeDict + Sync + ?Sized>(
    dict: &D,
    keys: &[u64],
    seed: u64,
) -> usize {
    lcds_serve::bulk_count(dict, keys, seed, EngineConfig::with_batch(CHUNK))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn par_contains_matches_sequential() {
        let keys = uniform_keys(3000, 1);
        let mut rng = seeded(2);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain(lcds_workloads::querygen::negative_pool(&keys, 3000, 3))
            .collect();
        let par = par_contains(&dict, &probes, 7);
        assert_eq!(par.len(), probes.len());
        for (i, &x) in probes.iter().enumerate() {
            assert_eq!(par[i], dict.resolve_contains(x), "key {x}");
        }
    }

    #[test]
    fn par_contains_is_deterministic() {
        let keys = uniform_keys(500, 4);
        let mut rng = seeded(5);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let a = par_contains(&dict, &keys, 9);
        let b = par_contains(&dict, &keys, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn results_do_not_depend_on_chunking() {
        // Regression: replica-choice RNGs used to be seeded per chunk
        // (`seed ⊕ chunk_index`), so two different chunk sizes probed
        // different replicas. Now streams are addressed by global key
        // index, so any two batch sizes — including the CHUNK wrapper —
        // agree exactly.
        let keys = uniform_keys(2000, 11);
        let mut rng = seeded(12);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain(lcds_workloads::querygen::negative_pool(&keys, 2000, 13))
            .collect();
        let via_wrapper = par_contains(&dict, &probes, 21);
        for batch in [64usize, 4096] {
            let got = lcds_serve::bulk_contains(
                &dict,
                &probes,
                21,
                lcds_serve::EngineConfig {
                    batch,
                    parallel: false,
                },
            );
            assert_eq!(got, via_wrapper, "batch size {batch} changed results");
        }
    }

    #[test]
    fn par_count_members() {
        let keys = uniform_keys(2000, 6);
        let mut rng = seeded(7);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let mixed: Vec<u64> = keys
            .iter()
            .copied()
            .take(1500)
            .chain(lcds_workloads::querygen::negative_pool(&keys, 500, 8))
            .collect();
        assert_eq!(super::par_count_members(&dict, &mixed, 10), 1500);
    }

    #[test]
    fn empty_input() {
        let keys = uniform_keys(10, 9);
        let mut rng = seeded(10);
        let dict = build_dict(&keys, &mut rng).unwrap();
        assert!(par_contains(&dict, &[], 0).is_empty());
        assert_eq!(super::par_count_members(&dict, &[], 0), 0);
    }
}

//! Separate chaining — the textbook hash table, flattened into cells.
//!
//! Each of `m = n` buckets owns a contiguous chain in a spill region; a
//! directory cell per bucket stores `(offset, length)`. Queries read the
//! seed (replicated), the directory cell, then scan the chain. The
//! directory cell of bucket `i` has contention `ℓ_i / n`, and every chain
//! cell before a key adds to that key's cost — a probe/contention profile
//! strictly between FKS (3 probes, same directory hot spot) and linear
//! probing (no directory, cluster-shaped hot spots).
//!
//! ```text
//! [0, k)              hash seed replicas
//! [k, k+m)            directory: (offset, length) packed
//! [k+m, k+m+n)        chain region: keys grouped by bucket
//! ```

use crate::common::{
    checked_sorted_keys, pack_descriptor, unpack_descriptor, BaselineError, Replication,
    OFFSET_BITS,
};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::exact::{ExactProbes, ProbeSet};
use lcds_cellprobe::rngutil::uniform_below;
use lcds_cellprobe::sink::ProbeSink;
use lcds_cellprobe::table::Table;
use lcds_hashing::perfect::PerfectHash;
use rand::{Rng, RngCore};

/// Sentinel for unoccupied cells.
const EMPTY: u64 = u64::MAX;

/// Tunables for [`ChainingDict::build`].
#[derive(Clone, Copy, Debug)]
pub struct ChainingConfig {
    /// Copies of the hash seed.
    pub replication: Replication,
    /// Redraw the seed if the longest chain exceeds this bound.
    pub max_chain: u32,
    /// Seed redraw cap.
    pub max_retries: u32,
}

impl Default for ChainingConfig {
    fn default() -> ChainingConfig {
        ChainingConfig {
            replication: Replication::Linear,
            max_chain: 64,
            max_retries: 100,
        }
    }
}

/// A built separate-chaining dictionary.
#[derive(Clone, Debug)]
pub struct ChainingDict {
    table: Table,
    keys: Vec<u64>,
    hash: PerfectHash,
    k: u64,
    m: u64,
    /// Longest chain.
    pub max_chain: u32,
    /// Rejected seeds.
    pub retries: u32,
}

impl ChainingDict {
    /// Builds the dictionary over `keys`.
    pub fn build<R: Rng + ?Sized>(
        keys: &[u64],
        config: ChainingConfig,
        rng: &mut R,
    ) -> Result<ChainingDict, BaselineError> {
        let sorted = checked_sorted_keys(keys)?;
        let n = sorted.len() as u64;
        if n >= (1 << OFFSET_BITS) {
            return Err(BaselineError::TooLarge(n));
        }
        let m = n;
        let k = config.replication.copies(n);

        let mut retries = 0;
        for _ in 0..config.max_retries {
            let seed = rng.random::<u64>();
            let hash = PerfectHash::from_seed(seed, m);
            let mut loads = vec![0u32; m as usize];
            for &x in &sorted {
                loads[hash.eval(x) as usize] += 1;
            }
            let max_chain = loads.iter().copied().max().unwrap_or(0);
            if max_chain > config.max_chain {
                retries += 1;
                continue;
            }
            // Offsets by prefix sums; keys grouped by bucket.
            let mut offsets = vec![0u64; m as usize + 1];
            for i in 0..m as usize {
                offsets[i + 1] = offsets[i] + loads[i] as u64;
            }
            let mut table = Table::new(1, k + m + n, EMPTY);
            for j in 0..k {
                table.write(0, j, seed);
            }
            let mut cursor = offsets.clone();
            for &x in &sorted {
                let b = hash.eval(x) as usize;
                table.write(0, k + m + cursor[b], x);
                cursor[b] += 1;
            }
            for i in 0..m as usize {
                table.write(0, k + i as u64, pack_descriptor(offsets[i], loads[i], 0));
            }
            return Ok(ChainingDict {
                table,
                keys: sorted,
                hash,
                k,
                m,
                max_chain,
                retries,
            });
        }
        Err(BaselineError::RetriesExhausted(config.max_retries))
    }

    /// Builds with [`ChainingConfig::default`].
    pub fn build_default<R: Rng + ?Sized>(
        keys: &[u64],
        rng: &mut R,
    ) -> Result<ChainingDict, BaselineError> {
        ChainingDict::build(keys, ChainingConfig::default(), rng)
    }

    /// The sorted stored keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// `(offset, length, position-of-x-or-end)` for query `x`.
    fn resolve(&self, x: u64) -> (u64, u32, u32) {
        let b = self.hash.eval(x);
        let (off, len, _) = unpack_descriptor(self.table.peek(0, self.k + b));
        for i in 0..len {
            if self.table.peek(0, self.k + self.m + off + i as u64) == x {
                return (off, len, i + 1); // scanned i+1 cells
            }
        }
        (off, len, len)
    }
}

impl CellProbeDict for ChainingDict {
    fn name(&self) -> String {
        let label = if self.k == 1 {
            "×1".into()
        } else if self.k == self.keys.len() as u64 {
            "×n".to_string()
        } else {
            format!("×{}", self.k)
        };
        format!("chaining{label}")
    }

    fn contains(&self, x: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
        let seed = self.table.read(0, uniform_below(rng, self.k), sink);
        let hash = PerfectHash::from_seed(seed, self.m);
        let b = hash.eval(x);
        let (off, len, _) = unpack_descriptor(self.table.read(0, self.k + b, sink));
        for i in 0..len as u64 {
            if self.table.read(0, self.k + self.m + off + i, sink) == x {
                return true;
            }
        }
        false
    }

    fn num_cells(&self) -> u64 {
        self.table.num_cells()
    }

    fn max_probes(&self) -> u32 {
        2 + self.max_chain
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

impl ExactProbes for ChainingDict {
    fn probe_sets(&self, x: u64, out: &mut Vec<ProbeSet>) {
        out.push(ProbeSet::range(0, self.k));
        let b = self.hash.eval(x);
        out.push(ProbeSet::fixed(self.k + b));
        let (off, _, scanned) = self.resolve(x);
        for i in 0..scanned as u64 {
            out.push(ProbeSet::fixed(self.k + self.m + off + i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::dist::QueryPool;
    use lcds_cellprobe::exact::exact_contention;
    use lcds_cellprobe::measure::verify_membership;
    use lcds_cellprobe::sink::TraceSink;
    use lcds_hashing::mix::derive;
    use lcds_hashing::MAX_KEY;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn keyset(n: u64, salt: u64) -> Vec<u64> {
        let mut set = HashSet::new();
        let mut i = 0u64;
        while (set.len() as u64) < n {
            set.insert(derive(salt, i) % MAX_KEY);
            i += 1;
        }
        set.into_iter().collect()
    }

    #[test]
    fn membership_is_correct() {
        let keys = keyset(800, 1);
        let d = ChainingDict::build_default(&keys, &mut rng(1)).unwrap();
        let negs: Vec<u64> = (0..400)
            .map(|i| derive(222, i) % MAX_KEY)
            .filter(|x| !keys.contains(x))
            .collect();
        verify_membership(&d, &keys, &negs, &mut rng(2)).unwrap();
    }

    #[test]
    fn space_is_exactly_directory_plus_chains() {
        let keys = keyset(500, 2);
        let d = ChainingDict::build_default(&keys, &mut rng(2)).unwrap();
        // k (=n) + m (=n) + n chain cells.
        assert_eq!(d.num_cells(), 3 * 500);
    }

    #[test]
    fn probes_match_declared_sets() {
        let keys = keyset(300, 3);
        let d = ChainingDict::build_default(&keys, &mut rng(3)).unwrap();
        let mut r = rng(4);
        let mut sets = Vec::new();
        for x in keys
            .iter()
            .copied()
            .take(60)
            .chain((0..60).map(|i| derive(6, i) % MAX_KEY))
        {
            sets.clear();
            d.probe_sets(x, &mut sets);
            let mut t = TraceSink::new();
            t.begin_query();
            let _ = d.contains(x, &mut r, &mut t);
            assert_eq!(t.trace().len(), sets.len(), "x={x}");
            for (&cell, set) in t.trace().iter().zip(&sets) {
                assert!(set.cells().any(|c| c == cell));
            }
        }
    }

    #[test]
    fn directory_contention_tracks_chain_lengths() {
        let keys = keyset(2048, 4);
        let n = keys.len() as f64;
        let d = ChainingDict::build_default(&keys, &mut rng(4)).unwrap();
        let prof = exact_contention(&d, &QueryPool::uniform(&keys));
        // Step 2 (directory): max chain / n, same hot spot as FKS.
        assert!((prof.step_max[1] - d.max_chain as f64 / n).abs() < 1e-9);
        assert!(d.max_chain >= 2);
    }

    #[test]
    fn tiny_sets() {
        for n in 1..=4u64 {
            let keys: Vec<u64> = (0..n).map(|i| i * 61 + 9).collect();
            let d = ChainingDict::build_default(&keys, &mut rng(10 + n)).unwrap();
            verify_membership(&d, &keys, &[1, 2, 3], &mut rng(20 + n)).unwrap();
        }
    }
}

//! Real-multicore contention harness: every simulated memory cell is an
//! `AtomicU64`, threads replay probe traces with `fetch_add`, and hot cells
//! become genuinely hot cache lines bouncing between cores.
//!
//! This is the wall-clock analogue of [`crate::rounds`]: the round machine
//! predicts *how much* serialization a contention profile causes; this
//! harness shows the same ordering on actual hardware (experiment F4 /
//! the `contended_throughput` criterion bench). `fetch_add` with `Relaxed`
//! ordering is the cheapest RMW that still forces exclusive cache-line
//! ownership per probe — we want the coherence traffic, not any particular
//! memory ordering, and counters double as a probe-count cross-check
//! ("Rust Atomics and Locks", ch. 2–3: Relaxed is exactly right for
//! counters whose values are only read after `join`).
//!
//! Each replay thread additionally keeps **progress/stall counters**: it
//! works in batches of [`PROGRESS_BATCH`] probes, tracks an exponential
//! moving average of its per-probe cost, and counts a *stall* whenever a
//! batch runs ≥ [`STALL_FACTOR`]× slower than that average — the signature
//! of a cache line suddenly contended (or the thread descheduled). The
//! counters surface in [`ThreadRunResult::per_thread`] and, when
//! `lcds_obs::set_enabled(true)`, in the global metrics registry
//! (`lcds_replay_*`; see docs/OBSERVABILITY.md).

use crossbeam::thread;
use lcds_cellprobe::table::CellId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Probes per progress batch (one timing measurement per batch, so the
/// instrumentation overhead is one `Instant::now` per 4096 probes).
pub const PROGRESS_BATCH: usize = 4096;

/// A batch counts as stalled when its per-probe cost exceeds this factor
/// times the thread's moving average.
pub const STALL_FACTOR: f64 = 8.0;

/// One replay thread's progress counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadStats {
    /// Probes this thread performed.
    pub probes: u64,
    /// Wall-clock nanoseconds this thread spent draining its trace.
    pub ns: u64,
    /// Timing batches executed (`⌈probes / PROGRESS_BATCH⌉`).
    pub batches: u64,
    /// Batches ≥ [`STALL_FACTOR`]× slower than the thread's average.
    pub stalls: u64,
}

/// Result of one threaded replay.
#[derive(Clone, Debug)]
pub struct ThreadRunResult {
    /// Wall-clock nanoseconds for all threads to drain their traces.
    pub wall_ns: u64,
    /// Total probes performed (from the shared counters — also validates
    /// the replay touched exactly the traced cells).
    pub total_probes: u64,
    /// Threads used.
    pub threads: usize,
    /// Total queries represented by the traces.
    pub queries: u64,
    /// Per-thread progress/stall counters, in trace order.
    pub per_thread: Vec<ThreadStats>,
}

impl ThreadRunResult {
    /// Queries per second.
    pub fn qps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.queries as f64 * 1e9 / self.wall_ns as f64
    }

    /// Probes per second.
    pub fn pps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.total_probes as f64 * 1e9 / self.wall_ns as f64
    }

    /// Total stalled batches across all threads.
    pub fn stalls(&self) -> u64 {
        self.per_thread.iter().map(|t| t.stalls).sum()
    }
}

/// Streaming stall detector: an EMA of per-probe batch cost plus the
/// stall decision, kept separate from the replay loop so the detection
/// logic is testable with synthetic timings.
///
/// Stalled batches do **not** enter the EMA at face value: folding an
/// 8×-slow outlier into the average (the previous behaviour) inflates the
/// baseline so much that an equally slow *next* batch no longer clears
/// `STALL_FACTOR × mean` and goes uncounted — one stall masks the rest of
/// a stall burst. Instead a stalled observation is clamped to at most
/// 2× the current EMA before the usual α = 1/8 update, so the baseline
/// still adapts (a genuine phase shift to permanently-slower batches
/// compounds at ≤ +12.5% per batch and converges within a dozen batches)
/// without a single outlier polluting the mean.
#[derive(Clone, Copy, Debug, Default)]
pub struct StallTracker {
    ema_per_probe: f64,
    batches: u64,
    stalls: u64,
}

impl StallTracker {
    /// A fresh tracker with no observations.
    pub fn new() -> StallTracker {
        StallTracker::default()
    }

    /// Feeds one batch's per-probe cost; returns whether it counted as a
    /// stall (≥ [`STALL_FACTOR`]× the running average). The first batch
    /// seeds the average and is never a stall.
    pub fn observe(&mut self, per_probe: f64) -> bool {
        let stalled = self.batches > 0 && per_probe > STALL_FACTOR * self.ema_per_probe;
        if stalled {
            self.stalls += 1;
        }
        // EMA with α = 1/8: smooth enough to ride out noise, fresh enough
        // to track a phase change in the trace.
        self.ema_per_probe = if self.batches == 0 {
            per_probe
        } else {
            let sample = if stalled {
                per_probe.min(2.0 * self.ema_per_probe)
            } else {
                per_probe
            };
            0.875 * self.ema_per_probe + 0.125 * sample
        };
        self.batches += 1;
        stalled
    }

    /// Batches observed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Batches that counted as stalls.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// The current per-probe EMA (0 before any observation).
    pub fn ema(&self) -> f64 {
        self.ema_per_probe
    }
}

fn drain_trace(trace: &[CellId], cells: &[AtomicU64]) -> ThreadStats {
    let start = Instant::now();
    let mut stats = ThreadStats {
        probes: trace.len() as u64,
        ..ThreadStats::default()
    };
    let mut tracker = StallTracker::new();
    let mut done = 0usize;
    while done < trace.len() {
        let end = (done + PROGRESS_BATCH).min(trace.len());
        let batch_start = Instant::now();
        for &cell in &trace[done..end] {
            cells[cell as usize].fetch_add(1, Ordering::Relaxed);
        }
        let per_probe = batch_start.elapsed().as_nanos() as f64 / (end - done) as f64;
        tracker.observe(per_probe);
        done = end;
    }
    stats.batches = tracker.batches();
    stats.stalls = tracker.stalls();
    stats.ns = start.elapsed().as_nanos() as u64;
    stats
}

/// Replays per-thread probe traces against a shared `AtomicU64` array.
///
/// `queries[p]` is the number of queries thread `p`'s trace represents.
///
/// # Panics
/// Panics if a trace references a cell `≥ num_cells`, or if the lengths of
/// `traces` and `queries` differ.
pub fn replay(traces: &[Vec<CellId>], queries: &[u64], num_cells: u64) -> ThreadRunResult {
    assert_eq!(traces.len(), queries.len());
    for t in traces {
        if let Some(&max) = t.iter().max() {
            assert!(max < num_cells, "trace cell {max} ≥ {num_cells}");
        }
    }
    let cells: Vec<AtomicU64> = (0..num_cells).map(|_| AtomicU64::new(0)).collect();
    let start = Instant::now();
    let mut per_thread = Vec::with_capacity(traces.len());
    thread::scope(|s| {
        let handles: Vec<_> = traces
            .iter()
            .map(|trace| {
                let cells = &cells;
                s.spawn(move |_| drain_trace(trace, cells))
            })
            .collect();
        for h in handles {
            per_thread.push(h.join().expect("replay thread must not panic"));
        }
    })
    .expect("replay threads must not panic");
    let wall_ns = start.elapsed().as_nanos() as u64;
    let total: u64 = cells.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    let expected: u64 = traces.iter().map(|t| t.len() as u64).sum();
    assert_eq!(
        total, expected,
        "atomic counters must account for every probe"
    );
    let result = ThreadRunResult {
        wall_ns,
        total_probes: total,
        threads: traces.len(),
        queries: queries.iter().sum(),
        per_thread,
    };
    if lcds_obs::enabled() {
        use lcds_obs::names;
        let reg = lcds_obs::global();
        reg.counter(names::REPLAY_PROBES_TOTAL)
            .add(result.total_probes);
        reg.counter(names::REPLAY_STALLS_TOTAL).add(result.stalls());
        reg.counter(names::REPLAY_RUNS_TOTAL).inc();
        let thread_ns = reg.histogram(names::REPLAY_THREAD_NS);
        for t in &result.per_thread {
            thread_ns.record(t.ns);
        }
        reg.gauge(names::REPLAY_QPS).set(result.qps());
        // Replayed traces are exactly the probe streams the live heatmap
        // would have seen; feed them so `lcds watch` and the watchdog
        // observe simulated workloads too.
        let mut hm = lcds_obs::heatmap::global_heatmap()
            .lock()
            .expect("global heatmap poisoned");
        for (trace, &q) in traces.iter().zip(queries) {
            hm.absorb_trace(trace, q);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_probe_single_thread() {
        let r = replay(&[vec![0, 1, 1, 2]], &[2], 4);
        assert_eq!(r.total_probes, 4);
        assert_eq!(r.threads, 1);
        assert_eq!(r.queries, 2);
        assert!(r.qps() > 0.0);
        assert!(r.pps() >= r.qps());
    }

    #[test]
    fn counts_every_probe_many_threads() {
        let traces: Vec<Vec<CellId>> = (0..8).map(|p| vec![p % 4; 1000]).collect();
        let r = replay(&traces, &[100; 8], 4);
        assert_eq!(r.total_probes, 8000);
        assert_eq!(r.threads, 8);
    }

    #[test]
    #[should_panic(expected = "≥ 3")]
    fn out_of_range_cell_is_rejected() {
        let _ = replay(&[vec![5]], &[1], 3);
    }

    #[test]
    fn empty_traces() {
        let r = replay(&[vec![], vec![]], &[0, 0], 1);
        assert_eq!(r.total_probes, 0);
        assert_eq!(r.qps(), 0.0);
        assert_eq!(r.stalls(), 0);
        assert!(r.per_thread.iter().all(|t| t.batches == 0));
    }

    #[test]
    fn per_thread_progress_counters_are_consistent() {
        let traces: Vec<Vec<CellId>> = (0..4)
            .map(|p| vec![p as CellId; PROGRESS_BATCH * 2 + 17])
            .collect();
        let r = replay(&traces, &[1; 4], 4);
        assert_eq!(r.per_thread.len(), 4);
        let probes: u64 = r.per_thread.iter().map(|t| t.probes).sum();
        assert_eq!(probes, r.total_probes);
        for t in &r.per_thread {
            assert_eq!(t.batches, 3, "2 full batches + 1 partial");
            assert!(t.stalls <= t.batches);
            assert!(t.ns > 0);
        }
    }

    #[test]
    fn stall_tracker_first_batch_is_never_a_stall() {
        let mut t = StallTracker::new();
        assert!(!t.observe(1e9));
        assert_eq!(t.stalls(), 0);
        assert_eq!(t.batches(), 1);
    }

    #[test]
    fn stall_tracker_counts_consecutive_stalls() {
        // The regression this type exists for: with the stalled batch
        // folded straight into the EMA, a 100×-slow pair of batches had
        // the second one land under 8× the polluted mean and go
        // uncounted. Both spikes must register.
        let mut t = StallTracker::new();
        for _ in 0..10 {
            assert!(!t.observe(10.0));
        }
        assert!(t.observe(1000.0), "first spike");
        assert!(t.observe(1000.0), "second spike must not be masked");
        assert_eq!(t.stalls(), 2);
    }

    #[test]
    fn stall_tracker_ema_is_insensitive_to_one_outlier() {
        let mut t = StallTracker::new();
        for _ in 0..10 {
            t.observe(10.0);
        }
        let before = t.ema();
        t.observe(1_000_000.0);
        // Clamped update: the outlier moves the EMA by at most +12.5% of
        // a 2×-EMA sample, not by 1/8 of a million.
        assert!(t.ema() <= before * 1.2, "ema {} vs {}", t.ema(), before);
    }

    #[test]
    fn stall_tracker_adapts_to_a_genuine_phase_shift() {
        // A permanent slowdown must stop counting as stalls once the
        // baseline catches up: clamping slows adaptation, it must not
        // prevent it.
        let mut t = StallTracker::new();
        for _ in 0..10 {
            t.observe(10.0);
        }
        let mut tail_stalls = 0;
        for i in 0..60 {
            let stalled = t.observe(200.0);
            if i >= 40 {
                tail_stalls += u64::from(stalled);
            }
        }
        assert_eq!(tail_stalls, 0, "baseline never adapted: ema={}", t.ema());
        assert!(t.ema() > 150.0);
    }

    #[test]
    fn stall_tracker_ignores_fast_outliers() {
        let mut t = StallTracker::new();
        t.observe(100.0);
        assert!(!t.observe(0.001), "fast batches are not stalls");
        assert_eq!(t.stalls(), 0);
    }

    #[test]
    fn telemetry_records_replay_counters() {
        lcds_obs::set_enabled(true);
        let r = replay(&[vec![0; 100]], &[10], 1);
        lcds_obs::set_enabled(false);
        let snap = lcds_obs::global().snapshot();
        assert!(snap.counters["lcds_replay_probes_total"] >= r.total_probes);
        assert!(snap.counters["lcds_replay_runs_total"] >= 1);
        assert!(snap.counters.contains_key("lcds_replay_stalls_total"));
        assert!(snap.histograms["lcds_replay_thread_ns"].count >= 1);
    }
}

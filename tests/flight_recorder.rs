//! Acceptance: a *real* watchdog trip — adversarial-FKS under Zipf load,
//! the paper's Θ(√n) worst case — must leave behind a flight bundle that
//! round-trips through the schema-validating parser with the ramp into
//! the trip (per-window Φ̂ history and key counters) intact.

use lcds_baselines::{FksConfig, FksDict};
use lcds_obs::heatmap::balls_in_bins_envelope;
use lcds_obs::{
    names, read_bundle, FlightRecorder, Heatmap, PhiWindow, Registry, TimeSeries, TimeSeriesConfig,
    Watchdog,
};
use lcds_workloads::adversarial::adversarial_fks_keys;
use lcds_workloads::rng::FirstWordRng;
use low_contention::prelude::*;
use std::time::Duration;

#[test]
fn watchdog_trip_under_adversarial_zipf_leaves_a_parseable_bundle() {
    let n = 2048usize;
    let seed = 0xF11;
    let stored = adversarial_fks_keys(n, seed);
    let mut fks_rng = FirstWordRng::new(seed, seeded(seed ^ 99));
    let fks = FksDict::build(&stored, FksConfig::default(), &mut fks_rng).expect("fks build");

    // Serve Zipf(0.5) traffic in rounds, sampling a telemetry window
    // (with the heatmap's Φ̂ attached) after each round and checking the
    // watchdog — the loop `serve-net --telemetry-window --watch` runs.
    let registry = Registry::new();
    let ts = TimeSeries::new(
        registry.clone(),
        TimeSeriesConfig {
            window: Duration::from_millis(1),
            capacity: 64,
        },
    );
    let dist = zipf_over_keys(&stored, 0.5, seed ^ 0xD157);
    let mut rng = seeded(seed);
    let mut hm = Heatmap::with_defaults(seed ^ 0x11EA7);
    let mut wd = Watchdog::new(balls_in_bins_envelope(n as u64), 3.0);
    let mut alarm = None;
    let mut keys_served = 0u64;
    for _round in 0..20 {
        for _ in 0..1_000 {
            let x = dist.sample(&mut rng);
            hm.begin_query();
            let hit = fks.contains(x, &mut rng, &mut hm);
            assert!(hit, "stored keys must be members");
            registry.counter(names::SERVE_KEYS_TOTAL).inc();
            keys_served += 1;
        }
        let phi = PhiWindow::from_heatmap(&hm, fks.num_cells(), 8);
        ts.sample_with_phi(Some(phi));
        if let Some(a) = wd.check(&hm, fks.num_cells()) {
            alarm = Some(a);
            break;
        }
    }
    let alarm = alarm.expect("adversarial FKS under Zipf must trip the watchdog");
    assert_eq!(wd.trips(), 1);

    // The trip dumps a bundle, exactly as serve-net's sampler does.
    let dir = std::env::temp_dir().join(format!(
        "lcds-flight-acceptance-{}-{keys_served}",
        std::process::id()
    ));
    let rec = FlightRecorder::new(&dir);
    let path = rec
        .dump(
            "watchdog",
            serde_json::json!({
                "scheme": "fks-adversarial",
                "workload": "zipf(0.50)",
                "ratio": alarm.ratio,
                "threshold": wd.threshold(),
            }),
            &ts.windows(),
            &[],
            &hm.top(8),
        )
        .expect("bundle dump");

    let bundle = read_bundle(&path).expect("bundle round-trips through the parser");
    assert_eq!(bundle.reason, "watchdog");
    assert_eq!(bundle.extra["scheme"], "fks-adversarial");
    assert!(!bundle.windows.is_empty(), "the ramp must be recorded");

    // Nothing served escaped the windows: the per-window key deltas
    // partition the total exactly.
    let total: u64 = bundle
        .windows
        .iter()
        .map(|w| w.counter_delta(names::SERVE_KEYS_TOTAL))
        .sum();
    assert_eq!(total, keys_served, "window deltas must sum to keys served");

    // The Φ̂ trajectory survived, and its final point shows the breach the
    // watchdog alarmed on: a Θ(√n)-scale ratio above the threshold.
    let last_phi = bundle
        .windows
        .last()
        .and_then(|w| w.phi.as_ref())
        .expect("final window carries Φ̂");
    assert!(
        last_phi.ratio > wd.threshold(),
        "recorded ratio {:.1} vs threshold {:.1}",
        last_phi.ratio,
        wd.threshold()
    );
    assert!(
        last_phi.ratio > (n as f64).sqrt(),
        "ratio {:.1} should reach Θ(√n)",
        last_phi.ratio
    );
    // The hot cell itself is in the recorded top-K, hottest first.
    assert!(!bundle.top.is_empty());
    assert!(bundle.top[0].count >= bundle.top.last().unwrap().count);

    std::fs::remove_dir_all(&dir).ok();
}

//! Quickstart: build the low-contention dictionary, query it, and see the
//! contention guarantee with your own eyes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use low_contention::prelude::*;

fn main() {
    // 100k keys drawn from the 2^61-1 universe.
    let keys = uniform_keys(100_000, 7);
    let mut rng = seeded(42);

    println!(
        "building the Theorem 3 dictionary over {} keys…",
        keys.len()
    );
    let dict = build_dict(&keys, &mut rng).expect("construction is expected O(n)");
    let p = dict.params();
    println!(
        "  parameters: d = {}, r = {}, m = {}, s = {}, ρ = {} → {} rows × {} cells",
        p.d,
        p.r,
        p.m,
        p.s,
        p.rho,
        dict.layout().num_rows(),
        p.s
    );
    println!(
        "  space: {:.2} words/key; probes/query: ≤ {}; build retries: {}",
        dict.words_per_key(),
        dict.max_probes(),
        dict.stats().hash_retries
    );

    // Membership queries — the only operations a static dictionary has.
    assert!(dict.contains(keys[0], &mut rng, &mut NullSink));
    assert!(dict.contains(keys[99_999], &mut rng, &mut NullSink));
    let non_member = (0..u64::MAX).find(|x| !keys.contains(x)).unwrap();
    assert!(!dict.contains(non_member, &mut rng, &mut NullSink));
    println!("  membership: ok");

    // The point of the paper: even the hottest cell at the hottest step is
    // only a constant multiple of the 1/s optimum.
    let profile = exact_contention(&dict, &QueryPool::uniform(&keys));
    println!(
        "  exact contention (uniform positive): max_t max_j Φ_t(j)·s = {:.2}  (1.0 = perfectly flat)",
        profile.max_step_ratio()
    );

    // Compare with FKS, hash parameters fully replicated (§1.3): still a
    // hot directory cell for the biggest bucket.
    let fks = FksDict::build_default(&keys, &mut rng).expect("fks");
    let fks_profile = exact_contention(&fks, &QueryPool::uniform(&keys));
    println!(
        "  FKS×n for comparison:                max_t max_j Φ_t(j)·s = {:.2}  (max bucket = {})",
        fks_profile.max_step_ratio(),
        fks.max_bucket_load
    );

    // And binary search, the paper's opening example.
    let bin = BinarySearchDict::build(&keys).expect("binsearch");
    let bin_profile = exact_contention(&bin, &QueryPool::uniform(&keys));
    println!(
        "  binary search:                       max_t max_j Φ_t(j)·s = {:.2}  (root probed by everyone)",
        bin_profile.max_step_ratio()
    );
}

//! Integration tests for the three extensions: persistence, the
//! distribution-aware dictionary, and batch parallel queries, exercised
//! together across crate boundaries.

use lcds_core::persist;
use low_contention::prelude::*;

#[test]
fn persist_roundtrip_through_a_real_file() {
    let keys = uniform_keys(1500, 0xE1);
    let mut rng = seeded(0xE2);
    let dict = build_dict(&keys, &mut rng).unwrap();

    let path = std::env::temp_dir().join(format!("lcds-persist-{}.bin", std::process::id()));
    {
        let mut f = std::fs::File::create(&path).unwrap();
        persist::save(&dict, &mut f).unwrap();
    }
    let loaded = {
        let mut f = std::fs::File::open(&path).unwrap();
        persist::load(&mut f).unwrap()
    };
    let _ = std::fs::remove_file(&path);

    // The loaded structure answers identically — including through the
    // probe-recording path and with identical exact contention.
    let mut qrng = seeded(0xE3);
    for &x in keys.iter().take(200) {
        assert!(loaded.contains(x, &mut qrng, &mut NullSink));
    }
    let negs = lcds_workloads::querygen::negative_pool(&keys, 200, 0xE4);
    for &x in &negs {
        assert!(!loaded.contains(x, &mut qrng, &mut NullSink));
    }
    let a = exact_contention(&dict, &QueryPool::uniform(&keys));
    let b = exact_contention(&loaded, &QueryPool::uniform(&keys));
    assert_eq!(a.total, b.total, "profiles must be bit-identical");
}

#[test]
fn persisted_dictionary_still_verifies_and_measures() {
    let keys = uniform_keys(800, 0xE5);
    let mut rng = seeded(0xE6);
    let dict = build_dict(&keys, &mut rng).unwrap();
    let mut buf = Vec::new();
    persist::save(&dict, &mut buf).unwrap();
    let loaded = persist::load(&mut buf.as_slice()).unwrap();
    lcds_core::verify::verify(&loaded).unwrap();
    let report = measure_contention(&loaded, &positive_dist(&keys), 20_000, &mut seeded(0xE7));
    assert_eq!(report.positives, 20_000);
}

#[test]
fn batch_queries_agree_with_weighted_and_dynamic_variants() {
    use lcds_core::dynamic::DynamicLcd;
    use low_contention::batch::par_contains;

    let keys = uniform_keys(1200, 0xE8);
    let mut rng = seeded(0xE9);

    // Weighted.
    let weights: Vec<f64> = (0..keys.len()).map(|i| 1.0 / (i + 1) as f64).collect();
    let weighted = build_weighted(&keys, &weights, &ParamsConfig::default(), &mut rng).unwrap();
    let results = par_contains(&weighted, &keys, 0xEA);
    assert!(results.iter().all(|&b| b), "all members found in parallel");

    // Dynamic snapshot.
    let mut dynamic = DynamicLcd::new(&keys, 0xEB, ParamsConfig::default()).unwrap();
    for i in 0..300u64 {
        dynamic.insert(1 + i * 2_654_435_761).unwrap();
    }
    let snap = dynamic.snapshot();
    let results = par_contains(&snap, &keys, 0xEC);
    assert!(results.iter().all(|&b| b));
    let extra: Vec<u64> = (0..300u64).map(|i| 1 + i * 2_654_435_761).collect();
    assert_eq!(
        low_contention::batch::par_count_members(&snap, &extra, 0xED),
        extra.len()
    );
}

#[test]
fn weighted_contention_advantage_scales_with_n() {
    // The oblivious/weighted gap under skew should not shrink as n grows
    // (it is driven by the hot key's mass, not by n).
    let mut gaps = Vec::new();
    for n in [1024usize, 4096] {
        let keys = uniform_keys(n, 0xEE + n as u64);
        let pool = zipf_over_keys(&keys, 1.2, 0xEF).pool();
        let weights: Vec<f64> = {
            let by: std::collections::HashMap<u64, f64> = pool.entries.iter().copied().collect();
            keys.iter().map(|k| by[k]).collect()
        };
        let mut rng = seeded(n as u64);
        let obl = build_dict(&keys, &mut rng).unwrap();
        let wtd = build_weighted(&keys, &weights, &ParamsConfig::default(), &mut rng).unwrap();
        let ro = exact_contention(&obl, &pool).max_step_ratio();
        let rw = exact_contention(&wtd, &pool).max_step_ratio();
        gaps.push(ro / rw);
    }
    assert!(gaps.iter().all(|&g| g > 3.0), "gaps {gaps:?}");
    assert!(gaps[1] >= gaps[0] * 0.5, "gap must not collapse: {gaps:?}");
}

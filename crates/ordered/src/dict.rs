//! [`OrderedLcd`]: the replicated B-ary level layout and its sequential
//! descent.
//!
//! # Layout
//!
//! Let the (deduplicated, sorted) key set have `n` keys. Level 0 is the
//! key array itself; level `ℓ+1` keeps every `B`-th entry of level `ℓ`
//! (its subtree minimum), so level `ℓ` has `n_ℓ = ⌈n / B^ℓ⌉` separators
//! and the hierarchy stops at the first level with at most `B` entries.
//! The table is rectangular — one row per level, `s = n` columns — and
//! row `ℓ` stores its `n_ℓ` separators *replicated residue-style*:
//! column `j` holds separator `j mod n_ℓ`, exactly the replica
//! arithmetic of the membership layout (`lcds_core::layout::Layout`).
//! Separator `e` of level `ℓ` therefore has `⌈(s − e) / n_ℓ⌉ ≈ B^ℓ`
//! copies, at columns `e + k·n_ℓ` — geometrically more replication the
//! closer to the root, which is precisely where an unreplicated tree
//! concentrates its traffic.
//!
//! # Descent
//!
//! A query walks root → leaf. At each level it draws a replica index
//! `k < ⌊s / n_ℓ⌋` from its own [`StreamRng`] stream (one draw per
//! level, before any read), then scans the ≤ `B` separators of the
//! current child block at that replica — a contiguous run of words, one
//! cache line when the block is full. The scan is branch-free over the
//! whole block (no early exit), so the probe *set* of a query is a
//! function of `(query, global index, seed)` only — the property every
//! batched executor in this repository must preserve.
//!
//! The [`OrdScheme::Adversarial`] twin pins `k = 0` at every level: the
//! same answers from the same separators, but all traffic lands on the
//! first replica — a B-tree with its root on one line, the contention
//! cliff the benches measure against [`OrdScheme::Replicated`].

use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::rngutil::uniform_below;
use lcds_cellprobe::sink::ProbeSink;
use lcds_cellprobe::table::Table;
use lcds_hashing::MAX_KEY;
use rand::RngCore;
use rayon::prelude::*;

/// Fan-out of the level hierarchy: separators per child block. Eight
/// 64-bit words — one cache line, so a full block scan is one line read.
pub const BRANCH: usize = 8;

/// Wire/batch sentinel for "no predecessor exists" (query below the
/// minimum key). Safe because every stored key is `< MAX_KEY < u64::MAX`.
pub const NO_PREDECESSOR: u64 = u64::MAX;

/// Replica policy of the descent — the only thing the two schemes differ
/// in. Answers are identical by construction (replicas hold identical
/// words); only the contention profile changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrdScheme {
    /// Per-level uniform replica choice (the low-contention construction).
    Replicated,
    /// Replica 0 at every level: an ordinary B-tree layout whose root
    /// line every query reads — the adversarial baseline.
    Adversarial,
}

impl OrdScheme {
    /// Stable scheme label, as used in bench rows and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            OrdScheme::Replicated => "ord-replicated",
            OrdScheme::Adversarial => "ord-adversarial",
        }
    }

    /// Inverse of [`OrdScheme::label`]; also accepts the short forms
    /// `replicated` / `adversarial`.
    pub fn parse(s: &str) -> Option<OrdScheme> {
        match s {
            "ord-replicated" | "replicated" => Some(OrdScheme::Replicated),
            "ord-adversarial" | "adversarial" => Some(OrdScheme::Adversarial),
            _ => None,
        }
    }
}

/// Why ordered construction failed.
#[derive(Debug, PartialEq, Eq)]
pub enum OrdBuildError {
    /// No keys were supplied (after deduplication).
    EmptyKeySet,
    /// A key is outside the `[0, MAX_KEY)` universe shared with the
    /// membership dictionary (and reserved for the wire sentinel).
    KeyTooLarge(u64),
}

impl std::fmt::Display for OrdBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrdBuildError::EmptyKeySet => write!(f, "no keys to index"),
            OrdBuildError::KeyTooLarge(k) => {
                write!(f, "key {k} outside the [0, 2^61 - 1) universe")
            }
        }
    }
}

impl std::error::Error for OrdBuildError {}

/// The static low-contention ordered dictionary. See the module docs for
/// the layout and descent; construction is [`build_seeded`] /
/// [`par_build`] (bit-identical twins).
#[derive(Clone, Debug, PartialEq)]
pub struct OrderedLcd {
    table: Table,
    /// Separator counts per level, leaf first: `levels[0] = n`, strictly
    /// decreasing by ≈ B, last entry ≤ B.
    levels: Vec<u64>,
    scheme: OrdScheme,
}

/// Separator counts for `n` leaf keys: `⌈n/B^ℓ⌉` until ≤ `B`.
fn level_sizes(n: u64) -> Vec<u64> {
    let mut levels = vec![n];
    while *levels.last().unwrap() > BRANCH as u64 {
        levels.push(levels.last().unwrap().div_ceil(BRANCH as u64));
    }
    levels
}

/// Validates and canonicalizes the key set: sorted, deduplicated,
/// in-universe, non-empty. Shared with the sharded builder.
pub(crate) fn canonical_keys(keys: &[u64]) -> Result<Vec<u64>, OrdBuildError> {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.is_empty() {
        return Err(OrdBuildError::EmptyKeySet);
    }
    if let Some(&big) = sorted.last().filter(|&&k| k >= MAX_KEY) {
        return Err(OrdBuildError::KeyTooLarge(big));
    }
    Ok(sorted)
}

/// Row `level`'s replicated content: column `j` holds separator
/// `j mod n_ℓ`, whose value is `keys[(j mod n_ℓ) · B^ℓ]`.
fn fill_row(keys: &[u64], levels: &[u64], level: usize, row: &mut [u64]) {
    let n_l = levels[level];
    let stride = (BRANCH as u64).pow(level as u32);
    for (j, cell) in row.iter_mut().enumerate() {
        *cell = keys[((j as u64 % n_l) * stride) as usize];
    }
}

fn record_build(d: &OrderedLcd) {
    if lcds_obs::enabled() {
        let reg = lcds_obs::global();
        reg.counter(lcds_obs::names::ORD_BUILDS_TOTAL).inc();
        reg.gauge(lcds_obs::names::ORD_LEVELS)
            .set(d.levels.len() as f64);
        reg.gauge(lcds_obs::names::ORD_KEYS).set(d.len() as f64);
    }
}

/// Builds the ordered dictionary sequentially. Deterministic: the output
/// depends only on the (multi)set of keys and the scheme — construction
/// draws no randomness (balancing randomness is a *query-time* choice),
/// so the PR 3 bit-identity contract holds by construction and is pinned
/// by the [`par_build`] twin test anyway.
pub fn build_seeded(keys: &[u64], scheme: OrdScheme) -> Result<OrderedLcd, OrdBuildError> {
    let sorted = canonical_keys(keys)?;
    let levels = level_sizes(sorted.len() as u64);
    let mut table = Table::new(levels.len() as u32, sorted.len() as u64, 0);
    for (l, row) in table.rows_mut() {
        fill_row(&sorted, &levels, l as usize, row);
    }
    let d = OrderedLcd {
        table,
        levels,
        scheme,
    };
    record_build(&d);
    Ok(d)
}

/// Parallel twin of [`build_seeded`]: rows are filled by independent
/// Rayon tasks (each row is a pure function of the sorted keys), so the
/// result is bit-identical at every thread count.
pub fn par_build(keys: &[u64], scheme: OrdScheme) -> Result<OrderedLcd, OrdBuildError> {
    let sorted = canonical_keys(keys)?;
    let levels = level_sizes(sorted.len() as u64);
    let n = sorted.len();
    let filled: Vec<Vec<u64>> = (0..levels.len())
        .into_par_iter()
        .map(|l| {
            let mut row = vec![0u64; n];
            fill_row(&sorted, &levels, l, &mut row);
            row
        })
        .collect();
    let mut table = Table::new(levels.len() as u32, n as u64, 0);
    for (l, row) in table.rows_mut() {
        row.copy_from_slice(&filled[l as usize]);
    }
    let d = OrderedLcd {
        table,
        levels,
        scheme,
    };
    record_build(&d);
    Ok(d)
}

impl OrderedLcd {
    /// Number of stored keys `n`.
    #[allow(clippy::len_without_is_empty)] // construction rejects empty sets
    pub fn len(&self) -> usize {
        self.levels[0] as usize
    }

    /// Number of levels (tree height + 1); the leaf row is level 0.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Separator counts per level, leaf first.
    pub fn level_sizes(&self) -> &[u64] {
        &self.levels
    }

    /// The replica policy this instance descends with.
    pub fn scheme(&self) -> OrdScheme {
        self.scheme
    }

    /// The same data under a different replica policy (cheap relabel —
    /// the table is shared content either way).
    pub fn with_scheme(mut self, scheme: OrdScheme) -> OrderedLcd {
        self.scheme = scheme;
        self
    }

    /// The backing table (for simulators and per-level accounting:
    /// cell `c` belongs to level `c / cols`).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The `i`-th smallest key (0-based), read without probe accounting.
    pub fn key_at(&self, i: usize) -> u64 {
        debug_assert!(i < self.len());
        self.table.peek(0, i as u64)
    }

    /// The smallest stored key.
    pub fn min_key(&self) -> u64 {
        self.key_at(0)
    }

    /// The largest stored key.
    pub fn max_key(&self) -> u64 {
        self.key_at(self.len() - 1)
    }

    /// The sorted key set, copied out (persistence and oracles).
    pub fn keys(&self) -> Vec<u64> {
        (0..self.len()).map(|i| self.key_at(i)).collect()
    }

    /// Draws the replica index for one level — or pins 0 under the
    /// adversarial scheme (which consumes **no** randomness, so the two
    /// schemes' answer streams stay independently reproducible).
    #[inline]
    pub(crate) fn replica(&self, level: usize, rng: &mut dyn RngCore) -> u64 {
        match self.scheme {
            OrdScheme::Adversarial => 0,
            OrdScheme::Replicated => {
                // ⌊s/n_ℓ⌋ is a lower bound on every separator's replica
                // count (s = n here), so one draw serves the whole block
                // scan and keeps the run contiguous.
                uniform_below(rng, self.table.cols() / self.levels[level])
            }
        }
    }

    /// Root → leaf walk. Returns `(leaf index, key)` of the largest key
    /// `≤ q`, or `None` when `q` is below the minimum (decided at the
    /// root after exactly one replica draw). Every level consumes one
    /// replica draw *before* its block scan, and scans its whole block —
    /// the draw/probe schedule [`crate::plan::OrdPlan`] replays exactly.
    pub(crate) fn descend(
        &self,
        q: u64,
        rng: &mut dyn RngCore,
        sink: &mut dyn ProbeSink,
    ) -> Option<(u64, u64)> {
        let top = self.levels.len() - 1;
        let mut lo = 0u64;
        let mut m = self.levels[top];
        for l in (0..=top).rev() {
            let k = self.replica(l, rng);
            let col0 = lo + k * self.levels[l];
            let mut j = 0u64;
            let mut pred = 0u64;
            for t in 0..m {
                let w = self.table.read(l as u32, col0 + t, sink);
                if w <= q {
                    j = t + 1;
                    pred = w;
                }
            }
            if j == 0 {
                // Only possible at the root: lower blocks start with the
                // chosen parent separator, which is ≤ q by choice.
                debug_assert_eq!(l, top);
                return None;
            }
            let e = lo + j - 1;
            if l == 0 {
                return Some((e, pred));
            }
            lo = e * BRANCH as u64;
            m = (self.levels[l - 1] - lo).min(BRANCH as u64);
        }
        unreachable!("descent always returns at level 0")
    }

    /// Largest stored key `≤ q`, or `None` if `q < min`.
    pub fn predecessor(
        &self,
        q: u64,
        rng: &mut dyn RngCore,
        sink: &mut dyn ProbeSink,
    ) -> Option<u64> {
        self.descend(q, rng, sink).map(|(_, key)| key)
    }

    /// `#{k ∈ S : k < q}` — the prefix count strictly below `q`.
    pub fn rank(&self, q: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> u64 {
        match self.descend(q, rng, sink) {
            None => 0,
            Some((e, key)) => {
                if key == q {
                    e
                } else {
                    e + 1
                }
            }
        }
    }

    /// `#{k ∈ S : k ≤ q}` — the inclusive prefix count.
    pub fn count_le(&self, q: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> u64 {
        self.descend(q, rng, sink).map_or(0, |(e, _)| e + 1)
    }

    /// `#{k ∈ S : lo ≤ k ≤ hi}`, as the rank difference
    /// `count_le(hi) − rank(lo)`. An empty range (`lo > hi`) returns 0
    /// without consuming randomness; otherwise the `lo` descent runs
    /// first, then the `hi` descent — the order the batched executor
    /// replays per query stream.
    pub fn range_count(
        &self,
        lo: u64,
        hi: u64,
        rng: &mut dyn RngCore,
        sink: &mut dyn ProbeSink,
    ) -> u64 {
        if lo > hi {
            return 0;
        }
        let below = self.rank(lo, rng, sink);
        self.count_le(hi, rng, sink) - below
    }
}

impl CellProbeDict for OrderedLcd {
    fn name(&self) -> String {
        self.scheme.label().to_string()
    }

    /// Membership via the descent: `x` is stored iff its predecessor is
    /// `x` itself. Lets the ordered dictionary serve the membership
    /// opcodes and reuse every contention harness unchanged.
    fn contains(&self, x: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
        matches!(self.descend(x, rng, sink), Some((_, key)) if key == x)
    }

    fn num_cells(&self) -> u64 {
        self.table.num_cells()
    }

    fn max_probes(&self) -> u32 {
        (BRANCH * self.levels.len()) as u32
    }

    fn len(&self) -> usize {
        self.levels[0] as usize
    }

    fn contains_batch(
        &self,
        keys: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        crate::plan::with_ord_scratch(|plan| {
            plan.run_contains(self, keys, first_index, seed, sink, out)
        });
    }

    fn words_per_key(&self) -> f64 {
        self.levels.len() as f64
    }
}

/// The binary-search oracle the proptest suites compare against.
/// Public for tests, benches, and the shard seam checks.
pub mod oracle {
    /// `#{k < q}` over a sorted slice.
    pub fn rank(keys: &[u64], q: u64) -> u64 {
        keys.partition_point(|&k| k < q) as u64
    }

    /// `#{k ≤ q}` over a sorted slice.
    pub fn count_le(keys: &[u64], q: u64) -> u64 {
        keys.partition_point(|&k| k <= q) as u64
    }

    /// Largest key `≤ q`, if any.
    pub fn predecessor(keys: &[u64], q: u64) -> Option<u64> {
        match count_le(keys, q) {
            0 => None,
            c => Some(keys[c as usize - 1]),
        }
    }

    /// `#{lo ≤ k ≤ hi}` (0 when `lo > hi`).
    pub fn range_count(keys: &[u64], lo: u64, hi: u64) -> u64 {
        if lo > hi {
            0
        } else {
            count_le(keys, hi) - rank(keys, lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::rngutil::StreamRng;
    use lcds_cellprobe::sink::{CountingSink, NullSink};

    fn dict(n: u64, scheme: OrdScheme) -> OrderedLcd {
        // Keys 3i+1 so queries can land below, between, and on keys.
        let keys: Vec<u64> = (0..n).map(|i| 3 * i + 1).collect();
        build_seeded(&keys, scheme).expect("build")
    }

    fn rng_for(i: u64) -> StreamRng {
        StreamRng::for_stream(0xABCDEF, i)
    }

    #[test]
    fn level_sizes_shrink_by_branch() {
        assert_eq!(level_sizes(1), vec![1]);
        assert_eq!(level_sizes(8), vec![8]);
        assert_eq!(level_sizes(9), vec![9, 2]);
        assert_eq!(level_sizes(64), vec![64, 8]);
        assert_eq!(level_sizes(65), vec![65, 9, 2]);
        let ls = level_sizes(100_000);
        assert!(*ls.last().unwrap() <= BRANCH as u64);
        for w in ls.windows(2) {
            assert_eq!(w[1], w[0].div_ceil(BRANCH as u64));
        }
    }

    #[test]
    fn build_validates_inputs() {
        assert_eq!(
            build_seeded(&[], OrdScheme::Replicated),
            Err(OrdBuildError::EmptyKeySet)
        );
        assert!(matches!(
            build_seeded(&[1, MAX_KEY], OrdScheme::Replicated),
            Err(OrdBuildError::KeyTooLarge(_))
        ));
        // Duplicates collapse.
        let d = build_seeded(&[5, 5, 5, 9], OrdScheme::Replicated).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.keys(), vec![5, 9]);
    }

    #[test]
    fn rows_replicate_their_level() {
        let d = dict(100, OrdScheme::Replicated);
        assert_eq!(d.num_levels(), 3); // 100 → 13 → 2
        assert_eq!(d.level_sizes(), &[100, 13, 2]);
        let t = d.table();
        // Leaf row: the keys themselves, exactly once each.
        for i in 0..100u64 {
            assert_eq!(t.peek(0, i), 3 * i + 1);
        }
        // Upper rows: residue-replicated separators.
        for col in 0..100u64 {
            assert_eq!(t.peek(1, col), d.key_at(((col % 13) * 8) as usize));
            assert_eq!(t.peek(2, col), d.key_at(((col % 2) * 64) as usize));
        }
    }

    #[test]
    fn answers_match_the_oracle_on_dense_probes() {
        for n in [1u64, 7, 8, 9, 63, 64, 65, 257] {
            for scheme in [OrdScheme::Replicated, OrdScheme::Adversarial] {
                let d = dict(n, scheme);
                let keys = d.keys();
                for q in 0..(3 * n + 4) {
                    let mut rng = rng_for(q);
                    assert_eq!(
                        d.predecessor(q, &mut rng, &mut NullSink),
                        oracle::predecessor(&keys, q),
                        "pred n={n} q={q} {scheme:?}"
                    );
                    let mut rng = rng_for(q);
                    assert_eq!(
                        d.rank(q, &mut rng, &mut NullSink),
                        oracle::rank(&keys, q),
                        "rank n={n} q={q}"
                    );
                    let mut rng = rng_for(q);
                    assert_eq!(
                        d.count_le(q, &mut rng, &mut NullSink),
                        oracle::count_le(&keys, q)
                    );
                }
            }
        }
    }

    #[test]
    fn range_count_matches_rank_difference_and_handles_empties() {
        let d = dict(200, OrdScheme::Replicated);
        let keys = d.keys();
        let cases = [
            (0u64, 0u64),
            (0, 1),
            (1, 1),
            (1, 598),
            (10, 9), // inverted → empty
            (2, 3),  // between keys → empty
            (598, u64::MAX),
        ];
        for (i, &(lo, hi)) in cases.iter().enumerate() {
            let mut rng = rng_for(i as u64);
            assert_eq!(
                d.range_count(lo, hi, &mut rng, &mut NullSink),
                oracle::range_count(&keys, lo, hi),
                "range [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn schemes_agree_on_answers_but_not_on_cells() {
        let rep = dict(512, OrdScheme::Replicated);
        let adv = dict(512, OrdScheme::Adversarial);
        let mut rep_sink = CountingSink::new(rep.num_cells());
        let mut adv_sink = CountingSink::new(adv.num_cells());
        for q in 0..2000u64 {
            let mut r1 = rng_for(q);
            let mut r2 = rng_for(q);
            assert_eq!(
                rep.rank(q, &mut r1, &mut rep_sink),
                adv.rank(q, &mut r2, &mut adv_sink)
            );
        }
        // Same probe *count* (block scans are scheme-independent) but the
        // adversarial root row concentrates on its first replica.
        assert_eq!(rep_sink.total(), adv_sink.total());
        assert!(adv_sink.max_count() > 4 * rep_sink.max_count());
    }

    #[test]
    fn par_build_is_bit_identical_to_sequential() {
        let keys: Vec<u64> = (0..3000u64).map(|i| i * 7 + 3).collect();
        for scheme in [OrdScheme::Replicated, OrdScheme::Adversarial] {
            let seq = build_seeded(&keys, scheme).unwrap();
            let par = par_build(&keys, scheme).unwrap();
            assert_eq!(seq, par);
            assert_eq!(seq.table().words(), par.table().words());
        }
    }

    #[test]
    fn contains_goes_through_the_descent() {
        let d = dict(300, OrdScheme::Replicated);
        let mut rng = rng_for(9);
        assert!(d.contains(3 * 7 + 1, &mut rng, &mut NullSink));
        assert!(!d.contains(3 * 7 + 2, &mut rng, &mut NullSink));
        assert!(!d.contains(0, &mut rng, &mut NullSink));
        assert_eq!(d.max_probes() as usize, BRANCH * d.num_levels());
        assert_eq!(d.num_cells(), 300 * d.num_levels() as u64);
    }

    #[test]
    fn probe_budget_holds() {
        let d = dict(4096, OrdScheme::Replicated);
        let mut sink = CountingSink::new(d.num_cells());
        let before = sink.total();
        let mut rng = rng_for(1);
        let _ = d.predecessor(9999, &mut rng, &mut sink);
        assert!(sink.total() - before <= d.max_probes() as u64);
    }
}

//! Batched probe planning and execution for the Theorem 3 dictionary —
//! the core of the `lcds-serve` bulk-query engine.
//!
//! The sequential query walks one key through all `2d + ρ + 4` rows before
//! touching the next key: every probe is a dependent cache miss, and the
//! `2d` hash-coefficient reads are repeated per key even though the rows
//! are fully replicated (every column holds the same word). Serving bulk
//! traffic, both costs are avoidable:
//!
//! 1. **Amortized parameter reads.** Each `f`/`g` coefficient row is read
//!    *once per batch* (from one random replica) instead of once per key —
//!    `2d` probes per batch rather than per key. This only *lowers*
//!    contention on the parameter rows; the per-key rows keep their exact
//!    Theorem 3 profile.
//! 2. **Region-grouped execution.** Probes run stage-at-a-time across the
//!    whole batch — all `z` reads, then all GBAS reads, then each histogram
//!    row, then headers, then data — so at any moment the engine streams
//!    through *one* table row. Independent same-row misses overlap in the
//!    memory system instead of serializing behind each key's chain.
//! 3. **SoA columns.** Every per-key intermediate (hash values, planned
//!    columns, histogram words, bucket geometry) lives in a flat
//!    64-byte-aligned column ([`AlignedCol`], the same over-allocate +
//!    `align_offset` idiom as the cell-probe `Table`), written and read
//!    contiguously by the stage sweeps. Histogram words are stored
//!    word-major (`hist[w·b + i]`) so each row sweep writes a contiguous
//!    run. Keys whose bucket is empty answer negative at the histogram
//!    stage and are *compacted out* of the plan — the header/data sweeps
//!    iterate a dense survivor prefix with no per-entry `active` test.
//! 4. **Lane-blocked read-ahead.** Stage sweeps process
//!    [`KernelConfig::lanes`] keys per iteration: the next block's cells
//!    are prefetched — a real `prefetcht0`/`prfm` when the `kernels-simd`
//!    feature provides it, otherwise the safe checksum-touch fallback —
//!    while the current block resolves, so that many independent misses
//!    overlap. The Carter–Wegman hash stage runs
//!    [`lcds_hashing::poly::horner_batch`]-style kernels over the whole
//!    batch (vectorized when enabled, always bit-identical).
//!
//! Balancing randomness (which replica to read) is drawn from
//! [`StreamRng::for_stream`]`(seed, global key index)` — per-key streams
//! addressed by position, so replica choices never depend on how a query
//! array was chunked into batches or routed across shards. The per-batch
//! coefficient-replica choice is the one draw that is inherently
//! batch-scoped; answers never depend on it.
//!
//! Answers are bit-for-bit those of
//! [`LowContentionDict::resolve_contains`] under *every* kernel
//! configuration; the equivalence is tested across batch sizes, shard
//! counts, and the kernel matrix in `tests/batched_serving.rs`.

use crate::dict::{LowContentionDict, MAX_D};
use crate::histogram;
use crate::kernels::{KernelConfig, Prefetcher};
use lcds_cellprobe::rngutil::{uniform_below, StreamRng};
use lcds_cellprobe::sink::{PlanStage, ProbeSink};
use lcds_hashing::perfect::PerfectHash;
use lcds_hashing::poly::{horner_batch_scalar, horner_batch_simd};

/// Default read-ahead depth of the execute sweeps, in plan entries — the
/// default for [`KernelConfig::lanes`]. Deep enough to cover one memory
/// round-trip at typical batch processing rates; shallow enough that the
/// touched lines are still resident when their entry is resolved.
pub const READ_AHEAD: usize = 8;

/// Words per 64-byte cache line.
const LINE_WORDS: usize = 8;

/// A growable flat `u64` column on a 64-byte-aligned window — the
/// safe-Rust stand-in for `#[repr(align(64))]`-backed storage, borrowed
/// from the cell-probe `Table`: over-allocate by one line and window in
/// with [`pointer::align_offset`]. Contents after [`AlignedCol::reset`]
/// are unspecified; every stage writes a slot before any stage reads it.
///
/// Public so sibling batch executors (the `lcds-ordered` descent plan)
/// can reuse the same aligned scratch discipline instead of reinventing
/// the over-allocate-and-window trick.
#[derive(Clone, Debug, Default)]
pub struct AlignedCol {
    buf: Vec<u64>,
    off: usize,
    len: usize,
}

impl AlignedCol {
    /// Sizes the column to `n` words, reusing the allocation when it
    /// fits. The aligned offset is recomputed every time (a clone or a
    /// realloc lands on a fresh address).
    pub fn reset(&mut self, n: usize) {
        if self.buf.len() < n + (LINE_WORDS - 1) {
            self.buf = vec![0; n + (LINE_WORDS - 1)];
        }
        let off = self.buf.as_ptr().align_offset(64);
        // align_offset may formally report "cannot align"; fall back to
        // an unaligned (still correct) window like `Table` does.
        self.off = if off < LINE_WORDS { off } else { 0 };
        self.len = n;
    }

    /// The sized window as a shared slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.buf[self.off..self.off + self.len]
    }

    /// The sized window as a mutable slice.
    #[inline]
    pub fn as_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.off..self.off + self.len]
    }
}

/// Reusable scratch for one batch: the probe plan's per-key columns and
/// intermediate hash state, kept as parallel aligned arrays so each
/// execution stage streams through contiguous memory.
///
/// A plan is cheap to create but cheaper to reuse — callers running many
/// batches hold one per worker ([`with_thread_scratch`] does this for the
/// serve path) and amortize the allocations away.
#[derive(Clone, Debug, Default)]
pub struct BatchPlan {
    kernels: KernelConfig,
    rng: Vec<StreamRng>,
    fx: AlignedCol,
    gx: AlignedCol,
    col: AlignedCol,
    h: AlignedCol,
    gbas: AlignedCol,
    hist: AlignedCol,
    start: AlignedCol,
    range: AlignedCol,
    active: AlignedCol,
    /// Gather buffer for one key's ρ histogram words (hist is word-major).
    hrow: Vec<u64>,
}

impl BatchPlan {
    /// An empty plan (no scratch allocated yet) on the process-wide
    /// [`KernelConfig::auto`] kernel selection.
    ///
    /// Counted by
    /// [`SERVE_PLAN_SCRATCH_ALLOCS`](lcds_obs::names::SERVE_PLAN_SCRATCH_ALLOCS)
    /// when telemetry is on: serving paths go through
    /// [`with_thread_scratch`], so the counter should track worker-thread
    /// count, not batch count — growth per batch means a hot path
    /// regressed to constructing plans per call.
    pub fn new() -> BatchPlan {
        if lcds_obs::enabled() {
            lcds_obs::global()
                .counter(lcds_obs::names::SERVE_PLAN_SCRATCH_ALLOCS)
                .add(1);
        }
        BatchPlan::with_kernels(KernelConfig::auto())
    }

    /// An empty plan pinned to an explicit kernel configuration — how the
    /// equivalence matrix and the probe-kernel benches compare paths
    /// without mutating process state.
    pub fn with_kernels(kernels: KernelConfig) -> BatchPlan {
        BatchPlan {
            kernels,
            ..Default::default()
        }
    }

    /// The kernel configuration this plan executes with.
    pub fn kernels(&self) -> KernelConfig {
        self.kernels
    }

    /// Runs the batch with key `i`'s randomness stream addressed as
    /// `first_index + i` (contiguous chunk of a larger query array).
    pub fn run(
        &mut self,
        dict: &LowContentionDict,
        keys: &[u64],
        first_index: u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        self.run_inner(dict, keys, &|i| first_index + i as u64, seed, sink, out);
    }

    /// Runs the batch with explicit per-key stream indices — the sharded
    /// router gathers keys per shard, so positions are not contiguous.
    ///
    /// # Panics
    /// Panics if `indices.len() != keys.len()`.
    pub fn run_indexed(
        &mut self,
        dict: &LowContentionDict,
        keys: &[u64],
        indices: &[u64],
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        assert_eq!(indices.len(), keys.len(), "one stream index per key");
        self.run_inner(dict, keys, &|i| indices[i], seed, sink, out);
    }

    fn run_inner(
        &mut self,
        dict: &LowContentionDict,
        keys: &[u64],
        idx: &dyn Fn(usize) -> u64,
        seed: u64,
        sink: &mut dyn ProbeSink,
        out: &mut Vec<bool>,
    ) {
        let b = keys.len();
        if b == 0 {
            return;
        }
        let p = *dict.params();
        let l = *dict.layout();
        let t = dict.table();
        let words = t.words();
        let d = p.d;
        let lanes = self.kernels.lanes.max(1);
        self.rng.clear();
        // One `begin_query` per batch: probes are ordered by region, not by
        // query, so per-step sinks don't apply (see the trait docs).
        sink.begin_query();
        let mut pf = Prefetcher::new(words, self.kernels);

        // Stage 0 — reconstruct f and g once per batch: the coefficient
        // rows are fully replicated, so one probe per row (at a random
        // replica, from a batch-scoped stream) yields the whole function.
        sink.stage(PlanStage::Coefficients);
        let mut prng = StreamRng::for_stream(seed ^ 0x9E37_79B9_7F4A_7C15, idx(0));
        let mut fw = [0u64; MAX_D];
        let mut gw = [0u64; MAX_D];
        for i in 0..d as u32 {
            fw[i as usize] = t.read(l.row_f(i), uniform_below(&mut prng, p.s), sink);
            gw[i as usize] = t.read(l.row_g(i), uniform_below(&mut prng, p.s), sink);
        }

        // Stage 1 (plan) — batched Carter–Wegman hashing (the vector
        // kernel when this plan enables it; always bit-identical), then
        // the per-key z-replica draws. Pure compute; no table traffic.
        self.fx.reset(b);
        self.gx.reset(b);
        hash_batch(self.kernels, &fw[..d], keys, self.fx.as_mut());
        hash_batch(self.kernels, &gw[..d], keys, self.gx.as_mut());
        self.col.reset(b);
        {
            let fx = self.fx.as_mut();
            let gx = self.gx.as_slice();
            let col = self.col.as_mut();
            for i in 0..b {
                let mut rng = StreamRng::for_stream(seed, idx(i));
                let gxi = gx[i] % p.r;
                let copies = l.replica_count(p.r, gxi);
                col[i] = l.replica_col(p.r, gxi, uniform_below(&mut rng, copies));
                fx[i] %= p.s;
                self.rng.push(rng);
            }
        }

        // Stage 2 (execute) — z reads, region `row_z`, lane-blocked;
        // resolves each key's bucket h.
        sink.stage(PlanStage::Displacement);
        self.h.reset(b);
        {
            let fx = self.fx.as_slice();
            let h = self.h.as_mut();
            sweep(
                b,
                lanes,
                &mut pf,
                l.row_z() as u64 * p.s,
                self.col.as_mut(),
                |i, col| {
                    let zg = t.read(l.row_z(), col[i], sink);
                    let sum = fx[i] + zg;
                    h[i] = if sum >= p.s { sum - p.s } else { sum };
                },
            );
        }
        let reps = p.group_size; // m | s ⇒ every residue has s/m replicas
        {
            let h = self.h.as_slice();
            let col = self.col.as_mut();
            for i in 0..b {
                let hp = h[i] % p.m;
                col[i] = l.replica_col(p.m, hp, uniform_below(&mut self.rng[i], reps));
            }
        }

        // Stage 3 (execute) — GBAS reads, region `row_gbas`.
        sink.stage(PlanStage::GroupBase);
        self.gbas.reset(b);
        {
            let gbas = self.gbas.as_mut();
            sweep(
                b,
                lanes,
                &mut pf,
                l.row_gbas() as u64 * p.s,
                self.col.as_mut(),
                |i, col| {
                    gbas[i] = t.read(l.row_gbas(), col[i], sink);
                },
            );
        }

        // Stage 4 (execute) — histogram words, one region (row) at a time,
        // stored word-major so each row sweep writes a contiguous run.
        // Each key's hist columns are drawn from its own stream in
        // ascending word order, exactly as the sequential path does.
        sink.stage(PlanStage::Histogram);
        let rho = p.rho as usize;
        self.hist.reset(b * rho);
        for w in 0..p.rho {
            {
                let h = self.h.as_slice();
                let col = self.col.as_mut();
                for i in 0..b {
                    let hp = h[i] % p.m;
                    col[i] = l.replica_col(p.m, hp, uniform_below(&mut self.rng[i], reps));
                }
            }
            let row = &mut self.hist.as_mut()[w as usize * b..(w as usize + 1) * b];
            sweep(
                b,
                lanes,
                &mut pf,
                l.row_hist(w) as u64 * p.s,
                self.col.as_mut(),
                |i, col| {
                    row[i] = t.read(l.row_hist(w), col[i], sink);
                },
            );
        }

        // Stage 5 (plan) — locate each bucket in its group histogram.
        // Empty buckets answer negative here and leave the plan; the
        // survivors are compacted to a dense prefix, so the header/data
        // sweeps carry no per-entry `active` test.
        let out_base = out.len();
        out.resize(out_base + b, false);
        self.start.reset(b);
        self.range.reset(b);
        self.active.reset(b);
        self.hrow.resize(rho, 0);
        let mut a = 0usize;
        {
            let h = self.h.as_slice();
            let gbas = self.gbas.as_slice();
            let hist = self.hist.as_slice();
            let col = self.col.as_mut();
            let start = self.start.as_mut();
            let range = self.range.as_mut();
            let active = self.active.as_mut();
            for i in 0..b {
                let k_star = h[i] / p.m;
                for (w, hw) in self.hrow.iter_mut().enumerate() {
                    *hw = hist[w * b + i];
                }
                let (off, load) = histogram::locate(&self.hrow, k_star);
                if load == 0 {
                    continue;
                }
                let s0 = gbas[i] + off;
                let r0 = (load as u64) * (load as u64);
                start[a] = s0;
                range[a] = r0;
                col[a] = s0 + uniform_below(&mut self.rng[i], r0);
                active[a] = i as u64;
                a += 1;
            }
        }

        // Stage 6 (execute) — header reads (perfect-hash seeds), dense
        // survivor prefix only.
        sink.stage(PlanStage::Header);
        {
            let start = self.start.as_slice();
            let range = self.range.as_slice();
            let active = self.active.as_slice();
            sweep(
                a,
                lanes,
                &mut pf,
                l.row_header() as u64 * p.s,
                self.col.as_mut(),
                |j, col| {
                    let seed_word = t.read(l.row_header(), col[j], sink);
                    let ph = PerfectHash::from_seed(seed_word, range[j]);
                    let x = keys[active[j] as usize];
                    col[j] = start[j] + ph.eval(x);
                },
            );
        }

        // Stage 7 (execute) — data reads settle membership by comparison.
        sink.stage(PlanStage::Data);
        {
            let active = self.active.as_slice();
            sweep(
                a,
                lanes,
                &mut pf,
                l.row_data() as u64 * p.s,
                self.col.as_mut(),
                |j, col| {
                    let i = active[j] as usize;
                    out[out_base + i] = t.read(l.row_data(), col[j], sink) == keys[i];
                },
            );
        }
        pf.finish();

        if lcds_obs::enabled() {
            let reg = lcds_obs::global();
            reg.counter(lcds_obs::names::SERVE_PLAN_ENTRIES_TOTAL)
                .add(b as u64);
            reg.counter(lcds_obs::names::SERVE_PLAN_ACTIVE_TOTAL)
                .add(a as u64);
        }
    }
}

/// One lane-blocked stage sweep over `n` plan entries: prefetch cells
/// (`row_base + col[k]`) two blocks ahead of the block being resolved,
/// then resolve the current block. Two blocks — not one — because the
/// per-entry stage work is a handful of cycles while an L3/DRAM line
/// fill is tens to hundreds: one block of cover barely hides L2. The
/// pipeline is primed with the first two blocks before the loop, after
/// which each iteration issues exactly one block of prefetches, so every
/// index is touched once. The body receives the column slice so
/// header-style stages can rewrite `col[i]` in place — always behind the
/// prefetch window, never ahead of it (the window starts at
/// `lo + 2*lanes`, the body writes at `i < lo + lanes`).
#[inline]
fn sweep<F: FnMut(usize, &mut [u64])>(
    n: usize,
    lanes: usize,
    pf: &mut Prefetcher<'_>,
    row_base: u64,
    col: &mut [u64],
    mut body: F,
) {
    let depth = 2 * lanes;
    for k in 0..depth.min(n) {
        pf.touch((row_base + col[k]) as usize);
    }
    let mut lo = 0;
    while lo < n {
        let hi = (lo + lanes).min(n);
        let pf_lo = (lo + depth).min(n);
        let pf_hi = (pf_lo + lanes).min(n);
        for k in pf_lo..pf_hi {
            pf.touch((row_base + col[k]) as usize);
        }
        for i in lo..hi {
            body(i, col);
        }
        lo = hi;
    }
}

/// Evaluates one polynomial over the whole batch with the kernel the plan
/// selected: forced-vector when `simd_hash` is set (falling back to the
/// scalar kernel if the unit is missing), portable unrolled scalar
/// otherwise. Both produce canonical representatives — bit-identical.
#[inline]
fn hash_batch(cfg: KernelConfig, words: &[u64], keys: &[u64], out: &mut [u64]) {
    if cfg.simd_hash && horner_batch_simd(words, keys, out) {
        return;
    }
    horner_batch_scalar(words, keys, out);
}

/// Runs `f` with this thread's long-lived [`BatchPlan`] scratch — the
/// serve path's per-worker plan reuse. The scratch is created once per
/// thread (counted by
/// [`SERVE_PLAN_SCRATCH_ALLOCS`](lcds_obs::names::SERVE_PLAN_SCRATCH_ALLOCS),
/// the regression signal that a hot path stopped reusing it) and keeps
/// its column allocations across batches and generation swaps.
///
/// # Panics
/// Panics if `f` re-enters `with_thread_scratch` on the same thread (the
/// scratch is a single `RefCell` per thread).
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut BatchPlan) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<BatchPlan> =
            std::cell::RefCell::new(fresh_thread_scratch());
    }
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

fn fresh_thread_scratch() -> BatchPlan {
    BatchPlan::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use lcds_cellprobe::dict::CellProbeDict;
    use lcds_cellprobe::sink::{CountingSink, NullSink};
    use lcds_workloads::keysets::uniform_keys;
    use lcds_workloads::querygen::negative_pool;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dict(n: usize, salt: u64) -> LowContentionDict {
        build(&uniform_keys(n, salt), &mut ChaCha8Rng::seed_from_u64(salt)).expect("build")
    }

    fn mixed_probes(d: &LowContentionDict, negs: usize, salt: u64) -> Vec<u64> {
        d.keys()
            .iter()
            .copied()
            .chain(negative_pool(d.keys(), negs, salt))
            .collect()
    }

    #[test]
    fn planned_batch_matches_resolve() {
        let d = dict(2000, 21);
        let probes = mixed_probes(&d, 2000, 22);
        let mut plan = BatchPlan::new();
        let mut out = Vec::new();
        plan.run(&d, &probes, 0, 5, &mut NullSink, &mut out);
        assert_eq!(out.len(), probes.len());
        for (i, &x) in probes.iter().enumerate() {
            assert_eq!(out[i], d.resolve_contains(x), "key {x}");
        }
    }

    #[test]
    fn planned_batch_matches_trait_default_answers() {
        let d = dict(700, 23);
        let probes = mixed_probes(&d, 700, 24);
        let mut planned = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 9, &mut NullSink, &mut planned);
        // The un-overridden default: per-key `contains` with the same
        // per-key streams.
        let mut per_key = Vec::new();
        for (i, &x) in probes.iter().enumerate() {
            let mut rng = StreamRng::for_stream(9, i as u64);
            per_key.push(d.contains(x, &mut rng, &mut NullSink));
        }
        assert_eq!(planned, per_key);
    }

    #[test]
    fn kernel_matrix_is_bit_identical() {
        // Every kernel configuration — scalar/SIMD hashing × touch/real
        // prefetch × lane widths spanning the batch-size regimes — must
        // reproduce the scalar reference answers bit for bit. (With the
        // `kernels-simd` feature off, the SIMD axis degrades to the
        // scalar kernel and the matrix still must hold.)
        let d = dict(1100, 61);
        let probes = mixed_probes(&d, 1100, 62);
        let mut baseline = Vec::new();
        BatchPlan::with_kernels(KernelConfig::scalar()).run(
            &d,
            &probes,
            0,
            13,
            &mut NullSink,
            &mut baseline,
        );
        for simd_hash in [false, true] {
            for prefetch in [false, true] {
                for lanes in [1usize, 2, 3, 8, 16, 64] {
                    let cfg = KernelConfig {
                        simd_hash,
                        prefetch,
                        lanes,
                    };
                    let mut got = Vec::new();
                    BatchPlan::with_kernels(cfg).run(&d, &probes, 0, 13, &mut NullSink, &mut got);
                    assert_eq!(got, baseline, "kernels {}", cfg.name());
                }
            }
        }
    }

    #[test]
    fn plan_columns_are_cache_line_aligned() {
        let mut c = AlignedCol::default();
        for n in [1usize, 7, 64, 1000] {
            c.reset(n);
            assert_eq!(c.as_slice().len(), n);
            assert_eq!(c.as_slice().as_ptr() as usize % 64, 0, "n = {n}");
        }
    }

    #[test]
    fn thread_scratch_is_reused_on_a_thread() {
        let first = with_thread_scratch(|p| p as *mut BatchPlan as usize);
        let again = with_thread_scratch(|p| p as *mut BatchPlan as usize);
        assert_eq!(first, again, "same thread must reuse one scratch");
    }

    #[test]
    fn plan_reuse_and_batch_splits_agree() {
        let d = dict(900, 25);
        let probes = mixed_probes(&d, 900, 26);
        let mut whole = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 3, &mut NullSink, &mut whole);
        let mut plan = BatchPlan::new();
        for chunk in [1usize, 64, 333] {
            let mut pieced = Vec::new();
            for (c, part) in probes.chunks(chunk).enumerate() {
                plan.run(&d, part, (c * chunk) as u64, 3, &mut NullSink, &mut pieced);
            }
            assert_eq!(pieced, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn run_indexed_matches_contiguous_streams() {
        // Routing keys through run_indexed with their original positions
        // must reproduce the contiguous run exactly — the property the
        // sharded router depends on.
        let d = dict(600, 27);
        let probes = mixed_probes(&d, 600, 28);
        let mut whole = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 11, &mut NullSink, &mut whole);
        // Gather even positions then odd positions, as a shard split would.
        let mut plan = BatchPlan::new();
        let mut scattered = vec![false; probes.len()];
        for parity in 0..2u64 {
            let (keys, idxs): (Vec<u64>, Vec<u64>) = probes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as u64 % 2 == parity)
                .map(|(i, &x)| (x, i as u64))
                .unzip();
            let mut part = Vec::new();
            plan.run_indexed(&d, &keys, &idxs, 11, &mut NullSink, &mut part);
            for (j, &i) in idxs.iter().enumerate() {
                scattered[i as usize] = part[j];
            }
        }
        assert_eq!(scattered, whole);
    }

    #[test]
    fn batch_probes_fewer_parameter_cells() {
        // The batched path reads each coefficient row once per batch, so
        // total probes must undercut the per-key path by ~2d per key while
        // still touching every per-key row.
        let d = dict(500, 29);
        let probes = mixed_probes(&d, 0, 0);
        let mut sink = CountingSink::new(d.num_cells());
        let mut out = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 7, &mut sink, &mut out);
        let b = probes.len() as u64;
        let dd = d.params().d as u64;
        let rho = d.params().rho as u64;
        // 2d batch-level + per key: z + gbas + ρ hist + header + data
        // (all probes are positives here, so nothing stops early).
        assert_eq!(sink.total(), 2 * dd + b * (rho + 4));
    }

    #[test]
    fn probe_counts_are_kernel_invariant() {
        // Prefetch hints are not probes: every kernel config must touch
        // the sink exactly as often as the scalar reference does.
        let d = dict(400, 63);
        let probes = mixed_probes(&d, 400, 64);
        let count_with = |cfg: KernelConfig| {
            let mut sink = CountingSink::new(d.num_cells());
            let mut out = Vec::new();
            BatchPlan::with_kernels(cfg).run(&d, &probes, 0, 7, &mut sink, &mut out);
            sink.total()
        };
        let reference = count_with(KernelConfig::scalar());
        for cfg in [
            KernelConfig {
                simd_hash: true,
                prefetch: true,
                lanes: 1,
            },
            KernelConfig {
                simd_hash: true,
                prefetch: true,
                lanes: 32,
            },
            KernelConfig {
                simd_hash: false,
                prefetch: true,
                lanes: 8,
            },
        ] {
            assert_eq!(count_with(cfg), reference, "kernels {}", cfg.name());
        }
    }

    #[test]
    fn stages_label_every_probe_region() {
        // Per-stage probe counts for an all-positive batch: 2d coefficient
        // reads, then b probes in each per-key stage (ρ·b for histogram).
        #[derive(Default)]
        struct StageCounter {
            current: PlanStage,
            by_stage: std::collections::HashMap<PlanStage, u64>,
        }
        impl ProbeSink for StageCounter {
            fn probe(&mut self, _cell: u64) {
                *self.by_stage.entry(self.current).or_insert(0) += 1;
            }
            fn stage(&mut self, stage: PlanStage) {
                self.current = stage;
            }
        }

        let d = dict(500, 29);
        let probes = mixed_probes(&d, 0, 0);
        let mut sink = StageCounter::default();
        let mut out = Vec::new();
        BatchPlan::new().run(&d, &probes, 0, 7, &mut sink, &mut out);
        let b = probes.len() as u64;
        let p = *d.params();
        let get = |s: PlanStage| sink.by_stage.get(&s).copied().unwrap_or(0);
        assert_eq!(get(PlanStage::Coefficients), 2 * p.d as u64);
        assert_eq!(get(PlanStage::Displacement), b);
        assert_eq!(get(PlanStage::GroupBase), b);
        assert_eq!(get(PlanStage::Histogram), p.rho as u64 * b);
        assert_eq!(get(PlanStage::Header), b);
        assert_eq!(get(PlanStage::Data), b);
        assert_eq!(get(PlanStage::Other), 0, "no probe escapes its stage");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let d = dict(100, 31);
        let mut out = Vec::new();
        BatchPlan::new().run(&d, &[], 0, 1, &mut NullSink, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_batches_below_read_ahead_work() {
        let d = dict(400, 33);
        for b in 1..=3usize {
            let probes: Vec<u64> = d.keys().iter().copied().take(b).collect();
            let mut out = Vec::new();
            BatchPlan::new().run(&d, &probes, 0, 2, &mut NullSink, &mut out);
            assert!(out.iter().all(|&v| v), "batch of {b}");
        }
    }

    #[test]
    #[should_panic(expected = "one stream index per key")]
    fn run_indexed_length_mismatch_panics() {
        let d = dict(50, 35);
        let mut out = Vec::new();
        BatchPlan::new().run_indexed(&d, &[1, 2], &[0], 0, &mut NullSink, &mut out);
    }
}

//! Batched bulk serving: the `lcds-serve` engine in one page.
//!
//! A read-only dictionary answering millions of membership queries does
//! not have to pay the full probe sequence per key. The serve engine
//! plans a whole batch up front (hash values, replica choices, table
//! columns), then executes the probes grouped by table region with
//! read-ahead — coefficient rows are read once per batch instead of
//! once per key. For larger stores, the keys can be sharded across K
//! independently built dictionaries behind a splitter hash, which keeps
//! per-cell contention flat while multiplying build parallelism.
//!
//! ```text
//! cargo run --release --example batched_serving
//! ```

use lcds_cellprobe::report::{sig4, TextTable};
use lcds_cellprobe::rngutil::StreamRng;
use low_contention::prelude::*;
use std::time::Instant;

fn main() {
    let n = 1 << 16;
    let keys = uniform_keys(n, 0x5E4E);
    // Mixed probe pool: every member once, plus as many negatives.
    let probes: Vec<u64> = keys
        .iter()
        .copied()
        .chain(lcds_workloads::querygen::negative_pool(&keys, n, 0x5E4F))
        .collect();
    let mut rng = seeded(0x5E50);
    let dict = build_dict(&keys, &mut rng).expect("build");

    let mqps = |queries: usize, secs: f64| queries as f64 / secs.max(1e-9) / 1e6;
    let mut table = TextTable::new(
        format!("bulk membership over {} queries, n = {n}", probes.len()),
        &["path", "Mq/s", "hits"],
    );

    // Baseline: one full probe sequence per key.
    let t0 = Instant::now();
    let mut per_key = Vec::with_capacity(probes.len());
    for (i, &x) in probes.iter().enumerate() {
        let mut rng = StreamRng::for_stream(7, i as u64);
        per_key.push(dict.contains(x, &mut rng, &mut NullSink));
    }
    let hits = per_key.iter().filter(|&&b| b).count();
    table.row(vec![
        "per-key loop".into(),
        sig4(mqps(probes.len(), t0.elapsed().as_secs_f64())),
        hits.to_string(),
    ]);

    // Planned engine: single thread, then all cores.
    for (label, parallel) in [("planned, 1 thread", false), ("planned, rayon", true)] {
        let cfg = EngineConfig {
            batch: 1024,
            parallel,
        };
        let t0 = Instant::now();
        let got = bulk_contains(&dict, &probes, 7, cfg);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(got, per_key, "planned path must agree with per-key");
        table.row(vec![
            label.into(),
            sig4(mqps(probes.len(), secs)),
            got.iter().filter(|&&b| b).count().to_string(),
        ]);
    }

    // Sharded: four independently built dictionaries behind a splitter.
    let sharded = ShardedLcd::build(&keys, 4, 0xD15C, &mut seeded(0x5E51)).expect("sharded");
    let t0 = Instant::now();
    let got = sharded.bulk_contains(&probes, 7, true);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(got, per_key, "sharded path must agree with per-key");
    table.row(vec![
        format!("sharded ×{}, rayon", sharded.num_shards()),
        sig4(mqps(probes.len(), secs)),
        got.iter().filter(|&&b| b).count().to_string(),
    ]);

    println!("{}", table.markdown());
    println!(
        "All four paths return identical answers: replica choices are \
         random but membership never depends on them, so the planned and \
         sharded engines are drop-in replacements for the per-key loop."
    );
    println!(
        "Exactly {} of {} probes hit — the pool is half members, half \
         negatives.",
        hits,
        probes.len()
    );
}

//! A deterministic contended shared-memory machine: each cell serves **one
//! probe per time unit**, concurrent probes to the same cell queue.
//!
//! This is the standard queuing interpretation of contention cost (after
//! Dwork–Herlihy–Waarts [6]; see also hot-spot combining in [13]): the
//! paper bounds `Φ_t(j)` precisely so that, by linearity of expectation,
//! `m` simultaneous queries put expected `m · Φ_t(j)` probes on cell `j` —
//! and a machine like this one turns that expectation into wall-clock
//! rounds. A scheme with flat `Φ` keeps every queue short and scales
//! linearly in processors; binary search's root cell serializes everything.
//!
//! The simulator is event-driven and exactly deterministic: processors are
//! served in `(ready_time, processor_id)` order, and a probe issued when
//! its cell is busy waits for the cell's next free slot. Traces are
//! collected on the uncontended structure first (reads don't change
//! values, so adaptive probe sequences are unaffected by queuing delays).

use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::dist::QueryDistribution;
use lcds_cellprobe::table::CellId;
use rand::RngCore;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Result of one simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Time units until the last processor finished.
    pub makespan: u64,
    /// Total probes executed.
    pub total_probes: u64,
    /// Total queries executed.
    pub queries: u64,
    /// Busiest cell's total services.
    pub max_cell_busy: u64,
    /// Number of processors.
    pub processors: usize,
}

impl SimResult {
    /// Completed queries per time unit — the scaling figure of F3.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.queries as f64 / self.makespan as f64
    }

    /// Mean probes in flight per time unit (≤ processors; the achieved
    /// memory parallelism).
    pub fn parallelism(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.total_probes as f64 / self.makespan as f64
    }
}

/// Simulates the machine on explicit per-processor probe traces.
///
/// `traces[p]` is processor `p`'s probe sequence (query boundaries don't
/// affect timing — each probe takes one service slot); `queries[p]` is how
/// many queries that trace represents (for throughput accounting).
///
/// ```
/// use lcds_sim::rounds::simulate;
/// // Two processors both hammering cell 0: fully serialized.
/// let r = simulate(&[vec![0, 0], vec![0, 0]], &[1, 1]);
/// assert_eq!(r.makespan, 4);
/// // Disjoint cells: fully parallel.
/// let r = simulate(&[vec![0, 1], vec![2, 3]], &[1, 1]);
/// assert_eq!(r.makespan, 2);
/// ```
pub fn simulate(traces: &[Vec<CellId>], queries: &[u64]) -> SimResult {
    assert_eq!(traces.len(), queries.len());
    let processors = traces.len();
    // (ready_time, proc) min-heap; deterministic tie-break on proc id.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..processors)
        .filter(|&p| !traces[p].is_empty())
        .map(|p| Reverse((0u64, p)))
        .collect();
    let mut next_probe = vec![0usize; processors];
    let mut cell_free: HashMap<CellId, u64> = HashMap::new();
    let mut cell_busy: HashMap<CellId, u64> = HashMap::new();
    let mut makespan = 0u64;
    let mut total_probes = 0u64;

    while let Some(Reverse((ready, p))) = heap.pop() {
        let cell = traces[p][next_probe[p]];
        let free = cell_free.get(&cell).copied().unwrap_or(0);
        let service = ready.max(free);
        cell_free.insert(cell, service + 1);
        *cell_busy.entry(cell).or_insert(0) += 1;
        total_probes += 1;
        let done = service + 1;
        makespan = makespan.max(done);
        next_probe[p] += 1;
        if next_probe[p] < traces[p].len() {
            heap.push(Reverse((done, p)));
        }
    }

    SimResult {
        makespan,
        total_probes,
        queries: queries.iter().sum(),
        max_cell_busy: cell_busy.values().copied().max().unwrap_or(0),
        processors,
    }
}

/// Per-query latency distribution from a closed-loop simulation: each
/// processor issues its queries back to back; a query's latency is the
/// time from becoming issueable to its last probe's completion.
#[derive(Clone, Debug)]
pub struct LatencyProfile {
    /// Sorted per-query latencies (time units).
    pub sorted: Vec<u64>,
}

impl LatencyProfile {
    /// The `q`-th quantile (0.0 ≤ q ≤ 1.0) by nearest-rank.
    ///
    /// # Panics
    /// Panics on an empty profile or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(!self.sorted.is_empty(), "no queries recorded");
        assert!((0.0..=1.0).contains(&q));
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        self.sorted[idx]
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th-percentile latency — the tail that hot cells create.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Worst query.
    pub fn max(&self) -> u64 {
        *self.sorted.last().expect("no queries recorded")
    }

    /// Mean latency.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<u64>() as f64 / self.sorted.len() as f64
    }
}

/// Like [`simulate`], but additionally records each query's latency.
///
/// `query_probes[p]` lists processor `p`'s per-query probe counts, so the
/// flat trace is split back into queries (zero-probe queries get latency
/// 0).
pub fn simulate_latencies(
    traces: &[Vec<CellId>],
    query_probes: &[Vec<u32>],
) -> (SimResult, LatencyProfile) {
    assert_eq!(traces.len(), query_probes.len());
    for (t, q) in traces.iter().zip(query_probes) {
        assert_eq!(
            t.len() as u64,
            q.iter().map(|&c| c as u64).sum::<u64>(),
            "query probe counts must partition the trace"
        );
    }
    let processors = traces.len();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..processors)
        .filter(|&p| !traces[p].is_empty())
        .map(|p| Reverse((0u64, p)))
        .collect();
    let mut next_probe = vec![0usize; processors];
    let mut query_idx = vec![0usize; processors];
    let mut probes_left = vec![0u32; processors];
    let mut query_start = vec![0u64; processors];
    let mut latencies = Vec::new();
    // Initialize per-processor query cursors (skipping zero-probe queries).
    for p in 0..processors {
        while query_idx[p] < query_probes[p].len() && query_probes[p][query_idx[p]] == 0 {
            latencies.push(0);
            query_idx[p] += 1;
        }
        if query_idx[p] < query_probes[p].len() {
            probes_left[p] = query_probes[p][query_idx[p]];
        }
    }

    let mut cell_free: HashMap<CellId, u64> = HashMap::new();
    let mut cell_busy: HashMap<CellId, u64> = HashMap::new();
    let mut makespan = 0u64;
    let mut total_probes = 0u64;

    while let Some(Reverse((ready, p))) = heap.pop() {
        let cell = traces[p][next_probe[p]];
        let free = cell_free.get(&cell).copied().unwrap_or(0);
        let service = ready.max(free);
        cell_free.insert(cell, service + 1);
        *cell_busy.entry(cell).or_insert(0) += 1;
        total_probes += 1;
        let done = service + 1;
        makespan = makespan.max(done);
        next_probe[p] += 1;
        probes_left[p] -= 1;
        if probes_left[p] == 0 {
            latencies.push(done - query_start[p]);
            query_idx[p] += 1;
            while query_idx[p] < query_probes[p].len() && query_probes[p][query_idx[p]] == 0 {
                latencies.push(0);
                query_idx[p] += 1;
            }
            if query_idx[p] < query_probes[p].len() {
                probes_left[p] = query_probes[p][query_idx[p]];
            }
            query_start[p] = done;
        }
        if next_probe[p] < traces[p].len() {
            heap.push(Reverse((done, p)));
        }
    }

    latencies.sort_unstable();
    let queries: Vec<u64> = query_probes.iter().map(|qs| qs.len() as u64).collect();
    (
        SimResult {
            makespan,
            total_probes,
            queries: queries.iter().sum(),
            max_cell_busy: cell_busy.values().copied().max().unwrap_or(0),
            processors,
        },
        LatencyProfile { sorted: latencies },
    )
}

/// Simulates a **combining** memory: all probes waiting on a cell are
/// served together in one round (hardware read-broadcast / combining
/// networks, Tzeng–Lawrie [13] and the combining trees of [9]).
///
/// This is the ablation for the contention model itself: on a combining
/// machine even binary search scales (its root read is broadcast), so the
/// paper's contention measure prices exactly the machines *without*
/// combining — bus-snooped exclusive lines, NUMA fabrics, disaggregated
/// memory. Experiment F11 runs both machines side by side.
pub fn simulate_combining(traces: &[Vec<CellId>], queries: &[u64]) -> SimResult {
    assert_eq!(traces.len(), queries.len());
    let processors = traces.len();
    // With combining, a probe issued at time t completes at t+1 regardless
    // of how many peers touch the same cell that round — every processor
    // just streams. Makespan = longest trace; busy = max simultaneous
    // probes on one cell (for reporting).
    let mut cell_busy: HashMap<CellId, u64> = HashMap::new();
    let mut total_probes = 0u64;
    let mut makespan = 0u64;
    for trace in traces {
        makespan = makespan.max(trace.len() as u64);
        total_probes += trace.len() as u64;
        for &cell in trace {
            *cell_busy.entry(cell).or_insert(0) += 1;
        }
    }
    SimResult {
        makespan,
        total_probes,
        queries: queries.iter().sum(),
        max_cell_busy: cell_busy.values().copied().max().unwrap_or(0),
        processors,
    }
}

/// Collects per-processor traces by running `queries_per_proc` sampled
/// queries per processor against `dict`, then simulates the machine.
pub fn run_workload(
    dict: &(impl CellProbeDict + ?Sized),
    dist: &(impl QueryDistribution + ?Sized),
    processors: usize,
    queries_per_proc: u64,
    rng: &mut dyn RngCore,
) -> SimResult {
    let t = crate::traces::collect(dict, dist, processors, queries_per_proc, rng);
    simulate(&t.traces, &t.queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_processor_is_sequential() {
        let r = simulate(&[vec![0, 1, 2, 3]], &[1]);
        assert_eq!(r.makespan, 4);
        assert_eq!(r.total_probes, 4);
        assert_eq!(r.max_cell_busy, 1);
        assert!((r.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_cells_run_fully_parallel() {
        let traces: Vec<Vec<CellId>> = (0..8).map(|p| vec![p, p + 8, p + 16]).collect();
        let r = simulate(&traces, &[1; 8]);
        assert_eq!(r.makespan, 3, "no conflicts ⇒ each proc runs unblocked");
        assert!((r.parallelism() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn hot_cell_serializes() {
        // Everyone's first probe is cell 0: p processors take p rounds for
        // the first step alone.
        let p = 16;
        let traces: Vec<Vec<CellId>> = (0..p).map(|i| vec![0, 100 + i as u64]).collect();
        let r = simulate(&traces, &[1; 16]);
        // Last processor gets cell 0 at round p-1, finishes its second
        // probe at p+1.
        assert_eq!(r.makespan, p as u64 + 1);
        assert_eq!(r.max_cell_busy, p as u64);
    }

    #[test]
    fn queue_is_work_conserving() {
        // Two processors alternate on one cell: makespan = total probes.
        let r = simulate(&[vec![5, 5], vec![5, 5]], &[1, 1]);
        assert_eq!(r.makespan, 4);
    }

    #[test]
    fn empty_traces_are_fine() {
        let r = simulate(&[vec![], vec![1]], &[0, 1]);
        assert_eq!(r.makespan, 1);
        assert_eq!(r.queries, 1);
    }

    #[test]
    fn determinism() {
        let traces: Vec<Vec<CellId>> = (0..10).map(|p| vec![p % 3, p % 5, 7]).collect();
        let a = simulate(&traces, &[1; 10]);
        let b = simulate(&traces, &[1; 10]);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_profile_sequential() {
        // One processor, two 2-probe queries: latencies 2 and 2.
        let (r, lat) = simulate_latencies(&[vec![0, 1, 2, 3]], &[vec![2, 2]]);
        assert_eq!(r.makespan, 4);
        assert_eq!(lat.sorted, vec![2, 2]);
        assert_eq!(lat.p50(), 2);
        assert_eq!(lat.max(), 2);
        assert!((lat.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_tail_grows_under_a_hot_cell() {
        // 8 processors, one query each, both probes on cell 0: the last
        // processor's query waits through everyone.
        let p = 8;
        let traces: Vec<Vec<CellId>> = (0..p).map(|_| vec![0, 0]).collect();
        let bounds: Vec<Vec<u32>> = (0..p).map(|_| vec![2]).collect();
        let (_, lat) = simulate_latencies(&traces, &bounds);
        assert_eq!(lat.sorted.len(), p);
        // Fastest query can't be under 2; slowest serializes through ~2p.
        assert!(lat.quantile(0.0) >= 2);
        assert!(lat.max() >= 2 * p as u64 - 2, "max {}", lat.max());
        assert!(lat.max() > lat.p50());
    }

    #[test]
    fn zero_probe_queries_get_zero_latency() {
        let (_, lat) = simulate_latencies(&[vec![5]], &[vec![0, 1, 0]]);
        assert_eq!(lat.sorted, vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "partition the trace")]
    fn mismatched_bounds_rejected() {
        let _ = simulate_latencies(&[vec![0, 1]], &[vec![1]]);
    }

    #[test]
    fn combining_ignores_hot_cells() {
        // Same hot-cell workload as above: combining serves all in one round.
        let p = 16;
        let traces: Vec<Vec<CellId>> = (0..p).map(|i| vec![0, 100 + i as u64]).collect();
        let r = simulate_combining(&traces, &[1; 16]);
        assert_eq!(r.makespan, 2, "broadcast: both steps take one round each");
        assert_eq!(r.max_cell_busy, p as u64);
        // The queuing machine pays p + 1 for the same traces.
        let q = simulate(&traces, &[1; 16]);
        assert!(q.makespan > r.makespan);
    }

    #[test]
    fn combining_equals_queuing_when_disjoint() {
        let traces: Vec<Vec<CellId>> = (0..4).map(|p| vec![p, p + 4]).collect();
        let a = simulate(&traces, &[1; 4]);
        let b = simulate_combining(&traces, &[1; 4]);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_probes, b.total_probes);
    }

    #[test]
    fn throughput_definition() {
        let r = simulate(&[vec![0], vec![1]], &[1, 1]);
        assert_eq!(r.makespan, 1);
        assert!((r.throughput() - 2.0).abs() < 1e-12);
    }
}

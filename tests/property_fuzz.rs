//! Property-based cross-crate fuzzing: random key sets, query mixes, and
//! update sequences against reference oracles.

use lcds_core::dynamic::DynamicLcd;
use low_contention::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

fn distinct_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::hash_set(0..lcds_hashing::MAX_KEY, 1..120)
        .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheme answers exactly like a `HashSet` on arbitrary keys.
    #[test]
    fn prop_all_schemes_match_oracle(keys in distinct_keys(), probes in proptest::collection::vec(0..lcds_hashing::MAX_KEY, 20), seed in 0..u64::MAX) {
        let mut rng = seeded(seed);
        let oracle: HashSet<u64> = keys.iter().copied().collect();

        let lcd = build_dict(&keys, &mut rng).unwrap();
        let fks = FksDict::build_default(&keys, &mut rng).unwrap();
        let cuckoo = CuckooDict::build_default(&keys, &mut rng).unwrap();
        let bin = BinarySearchDict::build(&keys).unwrap();

        let mut qrng = seeded(seed ^ 1);
        for x in keys.iter().copied().chain(probes) {
            let want = oracle.contains(&x);
            prop_assert_eq!(lcd.contains(x, &mut qrng, &mut NullSink), want, "lcd {}", x);
            prop_assert_eq!(lcd.resolve_contains(x), want, "lcd resolve {}", x);
            prop_assert_eq!(fks.contains(x, &mut qrng, &mut NullSink), want, "fks {}", x);
            prop_assert_eq!(cuckoo.contains(x, &mut qrng, &mut NullSink), want, "cuckoo {}", x);
            prop_assert_eq!(bin.contains(x, &mut qrng, &mut NullSink), want, "bin {}", x);
        }
    }

    /// The low-contention structure's self-verification passes for every
    /// random build.
    #[test]
    fn prop_structure_verifies(keys in distinct_keys(), seed in 0..u64::MAX) {
        let mut rng = seeded(seed);
        let d = build_dict(&keys, &mut rng).unwrap();
        prop_assert!(lcds_core::verify::verify(&d).is_ok());
    }

    /// Exact probe sets always contain the probes `contains` makes, for
    /// the oblivious and weighted dictionaries alike.
    #[test]
    fn prop_probe_sets_cover_traces(keys in distinct_keys(), x in 0..lcds_hashing::MAX_KEY, seed in 0..u64::MAX) {
        let mut rng = seeded(seed);
        let d = build_dict(&keys, &mut rng).unwrap();
        let mut sets = Vec::new();
        d.probe_sets(x, &mut sets);
        let mut trace = TraceSink::new();
        lcds_cellprobe::sink::ProbeSink::begin_query(&mut trace);
        let _ = d.contains(x, &mut rng, &mut trace);
        prop_assert_eq!(trace.trace().len(), sets.len());
        for (&cell, set) in trace.trace().iter().zip(&sets) {
            prop_assert!(set.cells().any(|c| c == cell));
        }
    }

    /// Dynamic dictionary vs oracle under arbitrary update scripts.
    #[test]
    fn prop_dynamic_matches_oracle(
        initial in distinct_keys(),
        script in proptest::collection::vec((0..500u64, proptest::bool::ANY), 1..200),
        seed in 0..u64::MAX,
    ) {
        let mut d = DynamicLcd::new(&initial, seed, ParamsConfig::default()).unwrap();
        let mut oracle: HashSet<u64> = initial.iter().copied().collect();
        let mut qrng = seeded(seed ^ 2);
        for (x, is_insert) in script {
            if is_insert {
                prop_assert_eq!(d.insert(x).unwrap(), oracle.insert(x));
            } else {
                prop_assert_eq!(d.remove(x).unwrap(), oracle.remove(&x));
            }
            prop_assert_eq!(
                d.contains_key(x, &mut qrng, &mut NullSink),
                oracle.contains(&x)
            );
        }
        prop_assert_eq!(d.len(), oracle.len());
    }

    /// Weighted dictionary: membership unaffected by the weights.
    #[test]
    fn prop_weighted_membership(keys in distinct_keys(), seed in 0..u64::MAX, hot in 0usize..120) {
        prop_assume!(hot < keys.len());
        let mut weights = vec![1.0; keys.len()];
        weights[hot] = 1000.0;
        let mut rng = seeded(seed);
        let d = build_weighted(&keys, &weights, &ParamsConfig::default(), &mut rng).unwrap();
        let mut qrng = seeded(seed ^ 3);
        for &x in &keys {
            prop_assert!(d.contains(x, &mut qrng, &mut NullSink));
        }
        prop_assert!(!d.contains(lcds_hashing::MAX_KEY - 1, &mut qrng, &mut NullSink)
            || keys.contains(&(lcds_hashing::MAX_KEY - 1)));
    }
}

//! Probe-count and space experiments: T3, T4.

use crate::registry::{build_schemes, SchemeSet};
use lcds_cellprobe::measure::measure_contention;
use lcds_cellprobe::report::{sig4, TextTable};
use lcds_workloads::keysets::uniform_keys;
use lcds_workloads::querygen::mixed_dist;
use lcds_workloads::rng::seeded;
use serde_json::json;

use super::ExpOutput;

fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![256, 1024]
    } else {
        vec![1 << 10, 1 << 13, 1 << 16]
    }
}

/// **T3** — probes per query: measured max/mean vs the declared bound.
/// Theorem 3 promises a constant independent of `n` for the low-contention
/// dictionary; binary search grows as `log₂ n`.
pub fn t3(quick: bool) -> ExpOutput {
    let queries = if quick { 2_000 } else { 20_000 };
    let mut table = TextTable::new(
        "T3 — probes per query (50/50 positive/negative traffic)",
        &["scheme", "n", "bound t", "measured max", "measured mean"],
    );
    let mut rows = Vec::new();
    for &n in &sizes(quick) {
        let seed = 0x3000 + n as u64;
        let keys = uniform_keys(n, seed);
        let dist = mixed_dist(&keys, 0.5, n, seed ^ 3);
        for dict in build_schemes(&keys, seed, SchemeSet::All) {
            let mut rng = seeded(seed ^ 0x33);
            let rep = measure_contention(&*dict, &dist, queries, &mut rng);
            assert!(
                rep.probe_max <= dict.max_probes(),
                "{} exceeded its probe bound",
                dict.name()
            );
            table.row(vec![
                dict.name(),
                n.to_string(),
                dict.max_probes().to_string(),
                rep.probe_max.to_string(),
                sig4(rep.probe_mean),
            ]);
            rows.push(json!({
                "scheme": dict.name(),
                "n": n,
                "bound": dict.max_probes(),
                "max": rep.probe_max,
                "mean": rep.probe_mean,
            }));
        }
    }
    ExpOutput {
        id: "t3",
        tables: vec![table],
        series: vec![],
        json: json!({ "rows": rows }),
    }
}

/// **T4** — space: total cells and words per key. Theorem 3 promises
/// `O(n)` words; the constant (rows × β) is the honest price of
/// replication.
pub fn t4(quick: bool) -> ExpOutput {
    let mut table = TextTable::new(
        "T4 — space (64-bit words)",
        &["scheme", "n", "cells", "words/key"],
    );
    let mut rows = Vec::new();
    for &n in &sizes(quick) {
        let seed = 0x4000 + n as u64;
        let keys = uniform_keys(n, seed);
        for dict in build_schemes(&keys, seed, SchemeSet::All) {
            table.row(vec![
                dict.name(),
                n.to_string(),
                dict.num_cells().to_string(),
                sig4(dict.words_per_key()),
            ]);
            rows.push(json!({
                "scheme": dict.name(),
                "n": n,
                "cells": dict.num_cells(),
                "words_per_key": dict.words_per_key(),
            }));
        }
    }
    ExpOutput {
        id: "t4",
        tables: vec![table],
        series: vec![],
        json: json!({ "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_lcd_probe_count_is_n_independent() {
        let out = t3(true);
        let rows = out.json["rows"].as_array().unwrap();
        let lcd_bounds: Vec<u64> = rows
            .iter()
            .filter(|r| r["scheme"] == "low-contention")
            .map(|r| r["bound"].as_u64().unwrap())
            .collect();
        assert!(lcd_bounds.len() >= 2);
        assert!(
            lcd_bounds.windows(2).all(|w| w[0] == w[1]),
            "lcd probe bound must not vary with n: {lcd_bounds:?}"
        );
        let bin_max: Vec<u64> = rows
            .iter()
            .filter(|r| r["scheme"] == "binary-search")
            .map(|r| r["max"].as_u64().unwrap())
            .collect();
        assert!(bin_max[1] > bin_max[0], "binary search must grow with n");
    }

    #[test]
    fn t4_space_is_linear_for_all_schemes() {
        let out = t4(true);
        for row in out.json["rows"].as_array().unwrap() {
            let wpk = row["words_per_key"].as_f64().unwrap();
            assert!(
                wpk < 50.0,
                "{}: {wpk} words/key is not linear-space territory",
                row["scheme"]
            );
        }
    }
}

//! Bit-level space audit: the paper's table has `b = log₂ N`-bit cells
//! (61 bits here). The working tables use whole `u64` words for speed;
//! this test proves the *contents* genuinely fit in `b` bits, by mirroring
//! a built dictionary into a [`lcds_cellprobe::bitpack::BitTable`]:
//!
//! * every non-histogram cell holds a key (< 2^61 − 1), a field element
//!   (< 2^61 − 1), an address (< s), a 61-bit seed, or the sentinel —
//!   remapped to `2^61 − 1`, which is not a valid key;
//! * histogram rows are opaque bit strings whose *per-group* bit count is
//!   bounded by `hist_bits`, so repacking at 61 bits per cell costs at most
//!   `⌈hist_bits/61⌉ ≤ ρ + 1` cells per group.

use lcds_cellprobe::bitpack::BitTable;
use low_contention::prelude::*;

const B: u32 = 61;
const SENTINEL_61: u64 = (1 << 61) - 1; // = P, not a valid key

#[test]
fn every_non_histogram_cell_fits_in_61_bits() {
    let keys = uniform_keys(2000, 0xB17);
    let mut rng = seeded(0xB18);
    let dict = build_dict(&keys, &mut rng).unwrap();
    let p = dict.params();
    let l = dict.layout();
    let t = dict.table();

    let hist_rows: Vec<u32> = (0..p.rho).map(|i| l.row_hist(i)).collect();
    let mut mirror = BitTable::new(t.num_cells(), B);
    for row in 0..t.rows() {
        if hist_rows.contains(&row) {
            continue;
        }
        for col in 0..t.cols() {
            let v = t.peek(row, col);
            let packed = if v == u64::MAX {
                SENTINEL_61
            } else {
                assert!(
                    v < SENTINEL_61,
                    "row {row} col {col}: value {v} exceeds 61 bits"
                );
                v
            };
            mirror.set(t.cell_id(row, col), packed);
        }
    }
    // Spot-check the mirror read path.
    for col in [0, p.s / 2, p.s - 1] {
        let id = t.cell_id(l.row_data(), col);
        let orig = t.peek(l.row_data(), col);
        let got = mirror.get(id);
        if orig == u64::MAX {
            assert_eq!(got, SENTINEL_61);
        } else {
            assert_eq!(got, orig);
        }
    }
}

#[test]
fn histograms_repack_within_rho_plus_one_61_bit_cells() {
    let keys = uniform_keys(4000, 0xB19);
    let mut rng = seeded(0xB1A);
    let dict = build_dict(&keys, &mut rng).unwrap();
    let p = dict.params();
    let cells_61 = p.hist_bits.div_ceil(B as u64);
    assert!(
        cells_61 <= p.rho as u64 + 1,
        "hist bits {} need {cells_61} 61-bit cells vs ρ = {}",
        p.hist_bits,
        p.rho
    );
}

#[test]
fn total_space_in_bits_is_linear() {
    for n in [1000usize, 8000] {
        let keys = uniform_keys(n, 0xB1B + n as u64);
        let mut rng = seeded(n as u64);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let bits = dict.num_cells() * B as u64;
        let bits_per_key = bits as f64 / n as f64;
        assert!(
            bits_per_key < 2000.0,
            "n={n}: {bits_per_key} bits/key is not O(b) per key"
        );
    }
}

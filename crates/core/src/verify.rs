//! Structural invariant checker for a built dictionary.
//!
//! Construction is randomized and the table layout is intricate (replicated
//! rows, unary histograms, bucket-owned ranges), so tests and experiments
//! can ask a built structure to *prove itself*: every stored key findable,
//! every replica consistent, every owned range disjoint and within bounds,
//! every histogram decoding to the true loads.

use crate::dict::{LowContentionDict, EMPTY};
use crate::histogram;
use rayon::prelude::*;

/// Runs every structural check; returns the first violation.
pub fn verify(dict: &LowContentionDict) -> Result<(), String> {
    let p = *dict.params();
    let l = *dict.layout();
    let t = dict.table();

    // 1. Replicated rows are constant / residue-determined. This is the
    //    O(s · (2d + ρ)) hot scan, so columns are checked in parallel;
    //    `find_map_first` keeps the reported violation the leftmost one,
    //    same as the serial loop.
    let replica_violation = (0..p.s).into_par_iter().find_map_first(|j| {
        for i in 0..p.d as u32 {
            if t.peek(l.row_f(i), j) != t.peek(l.row_f(i), 0) {
                return Some(format!("f row {i} inconsistent at column {j}"));
            }
            if t.peek(l.row_g(i), j) != t.peek(l.row_g(i), 0) {
                return Some(format!("g row {i} inconsistent at column {j}"));
            }
        }
        if t.peek(l.row_z(), j) != t.peek(l.row_z(), j % p.r) {
            return Some(format!("z row inconsistent at column {j}"));
        }
        if t.peek(l.row_gbas(), j) != t.peek(l.row_gbas(), j % p.m) {
            return Some(format!("GBAS row inconsistent at column {j}"));
        }
        for w in 0..p.rho {
            if t.peek(l.row_hist(w), j) != t.peek(l.row_hist(w), j % p.m) {
                return Some(format!("histogram row {w} inconsistent at column {j}"));
            }
        }
        None
    });
    if let Some(e) = replica_violation {
        return Err(e);
    }

    // 2. Histograms decode to the true bucket loads; GBAS are the squared
    //    prefix sums; owned ranges are disjoint and in bounds.
    let mut true_loads = vec![0u32; p.s as usize];
    for &x in dict.keys() {
        let res = dict.resolve(x);
        true_loads[res.h as usize] += 1;
    }
    let mut owned = vec![false; p.s as usize];
    let mut expected_gbas = 0u64;
    for group in 0..p.m {
        let got_gbas = t.peek(l.row_gbas(), group);
        if got_gbas != expected_gbas {
            return Err(format!(
                "GBAS({group}) = {got_gbas}, expected {expected_gbas}"
            ));
        }
        let hist: Vec<u64> = (0..p.rho).map(|w| t.peek(l.row_hist(w), group)).collect();
        let decoded = histogram::decode(&hist, p.group_size);
        let mut cursor = got_gbas;
        for (k, &load) in decoded.iter().enumerate() {
            let bucket = p.bucket_of(group, k as u64);
            if load != true_loads[bucket as usize] {
                return Err(format!(
                    "group {group} bucket {bucket}: histogram load {load} != true {}",
                    true_loads[bucket as usize]
                ));
            }
            let range = (load as u64) * (load as u64);
            if cursor + range > p.s {
                return Err(format!("bucket {bucket} range overflows table width"));
            }
            for j in cursor..cursor + range {
                if owned[j as usize] {
                    return Err(format!("cell {j} owned by two buckets"));
                }
                owned[j as usize] = true;
            }
            cursor += range;
        }
        expected_gbas += decoded
            .iter()
            .map(|&ld| (ld as u64) * (ld as u64))
            .sum::<u64>();
    }

    // 3. Every key resolves to a data cell containing it; its bucket's
    //    header range stores a constant seed that is injective on the
    //    bucket.
    for &x in dict.keys() {
        let res = dict.resolve(x);
        let col = res
            .data_col
            .ok_or_else(|| format!("key {x} resolves to an empty bucket"))?;
        let stored = t.peek(l.row_data(), col);
        if stored != x {
            return Err(format!("data cell {col} holds {stored}, expected key {x}"));
        }
        let seed0 = t.peek(l.row_header(), res.start);
        for j in res.start..res.start + res.range {
            if t.peek(l.row_header(), j) != seed0 {
                return Err(format!("bucket at {} has inconsistent seeds", res.start));
            }
        }
    }

    // 4. Unowned data cells are EMPTY (no phantom keys reachable).
    for j in 0..p.s {
        if !owned[j as usize] && t.peek(l.row_data(), j) != EMPTY {
            return Err(format!("unowned data cell {j} is not EMPTY"));
        }
    }

    // 5. The f/g rows decode to functions agreeing with the stored ones.
    // The scan hashes through the batched kernel (`horner_batch`), so it
    // doubles as an end-to-end check that the process-selected kernel
    // agrees with the per-key resolution path on real table words.
    let fw: Vec<u64> = (0..p.d as u32).map(|i| t.peek(l.row_f(i), 0)).collect();
    let gw: Vec<u64> = (0..p.d as u32).map(|i| t.peek(l.row_g(i), 0)).collect();
    let sample: Vec<u64> = dict.keys().iter().take(64).copied().collect();
    let mut f_vals = vec![0u64; sample.len()];
    let mut g_vals = vec![0u64; sample.len()];
    lcds_hashing::poly::horner_batch(&fw, &sample, &mut f_vals);
    lcds_hashing::poly::horner_batch(&gw, &sample, &mut g_vals);
    for (k, &x) in sample.iter().enumerate() {
        let f_val = f_vals[k] % p.s;
        let g_val = g_vals[k] % p.r;
        let res = dict.resolve(x);
        if g_val != res.gx {
            return Err(format!("table g({x}) = {g_val} != resolved {}", res.gx));
        }
        let z_val = t.peek(l.row_z(), g_val % p.r);
        let h_val = (f_val + z_val) % p.s;
        if h_val != res.h {
            return Err(format!("table h({x}) = {h_val} != resolved {}", res.h));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use lcds_hashing::mix::derive;
    use lcds_hashing::MAX_KEY;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn keyset(n: u64, salt: u64) -> Vec<u64> {
        let mut set = std::collections::HashSet::new();
        let mut i = 0u64;
        while (set.len() as u64) < n {
            set.insert(derive(salt, i) % MAX_KEY);
            i += 1;
        }
        set.into_iter().collect()
    }

    #[test]
    fn fresh_builds_verify() {
        for (n, salt) in [(1u64, 20), (10, 21), (137, 22), (1000, 23), (4096, 24)] {
            let keys = keyset(n, salt);
            let mut rng = ChaCha8Rng::seed_from_u64(salt);
            let d = build(&keys, &mut rng).unwrap();
            verify(&d).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn corruption_is_detected() {
        // White-box: verify() must notice a corrupted replica. We corrupt
        // by rebuilding a dict whose table we mutate through a clone of the
        // parts — simplest is to check verify is not vacuous by asserting
        // it inspects every column (checked above) and fails on a mutated
        // table via the public Clone + internal write access in this crate.
        let keys = keyset(100, 30);
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let d = build(&keys, &mut rng).unwrap();
        let mut broken = d.clone();
        // Crate-internal access: flip one z-row replica.
        let col = broken.params().r; // second replica of residue 0
        let row = broken.layout().row_z();
        let old = broken.table().peek(row, col);
        broken.table_mut().write(row, col, old.wrapping_add(1));
        let err = verify(&broken).expect_err("corruption must be caught");
        assert!(err.contains("z row"), "unexpected error: {err}");
    }
}

//! Offline stand-in for `crossbeam::thread::scope`.
//!
//! Spawned closures run immediately on the calling thread, in spawn order,
//! and `join` hands back the stored result. Probe-count accounting and
//! stall detection in the simulators are schedule-agnostic, so sequential
//! execution preserves their test semantics; only wall-clock parallelism
//! is lost (which no test asserts).

pub mod thread {
    use std::marker::PhantomData;

    pub struct Scope<'env>(PhantomData<&'env ()>);

    pub struct ScopedJoinHandle<'scope, T> {
        result: Result<T, Box<dyn std::any::Any + Send + 'static>>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.result
        }
    }

    impl<'env> Scope<'env> {
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send,
            T: Send,
        {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(())));
            ScopedJoinHandle {
                result,
                _marker: PhantomData,
            }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        Ok(f(&Scope(PhantomData)))
    }
}

//! Query-distribution builders over a stored key set.

use lcds_cellprobe::dist::{Mixture, UniformOver, Zipf};
use lcds_cellprobe::rngutil::{uniform_below, StreamRng};
use lcds_hashing::mix::derive;
use lcds_hashing::MAX_KEY;
use std::collections::HashSet;

/// Uniform over the stored keys — the paper's "uniform positive" class.
pub fn positive_dist(keys: &[u64]) -> UniformOver {
    UniformOver::new("uniform-positive", keys.to_vec())
}

/// Samples `size` distinct non-members uniformly from the universe — the
/// finite surrogate for the paper's "uniform negative" class (DESIGN.md,
/// substitutions).
pub fn negative_pool(keys: &[u64], size: usize, seed: u64) -> Vec<u64> {
    let members: HashSet<u64> = keys.iter().copied().collect();
    let mut pool = Vec::with_capacity(size);
    let mut seen = HashSet::with_capacity(size);
    let mut i = 0u64;
    while pool.len() < size {
        let k = derive(seed ^ 0x5EED_BAD5, i) % MAX_KEY;
        if !members.contains(&k) && seen.insert(k) {
            pool.push(k);
        }
        i += 1;
    }
    pool
}

/// Uniform over a sampled negative pool.
pub fn negative_dist(keys: &[u64], size: usize, seed: u64) -> UniformOver {
    UniformOver::new("uniform-negative", negative_pool(keys, size, seed))
}

/// Positive with probability `pos_frac`, else negative (both uniform) — the
/// general uniform-within-each-side class Theorem 3 covers.
pub fn mixed_dist(keys: &[u64], pos_frac: f64, neg_size: usize, seed: u64) -> Mixture {
    Mixture::new(
        Box::new(positive_dist(keys)),
        Box::new(negative_dist(keys, neg_size, seed)),
        pos_frac,
    )
}

/// Zipf(θ) over the stored keys in a seed-shuffled rank order — a *skewed*
/// positive distribution, i.e. exactly what Theorem 3 does **not** promise
/// to handle and §3 proves no fast scheme can handle obliviously.
pub fn zipf_over_keys(keys: &[u64], theta: f64, seed: u64) -> Zipf {
    let mut ranked = keys.to_vec();
    // Fisher–Yates with the deterministic mixer so rank order is seed-fixed.
    for i in (1..ranked.len()).rev() {
        let j = (derive(seed, i as u64) % (i as u64 + 1)) as usize;
        ranked.swap(i, j);
    }
    Zipf::new(ranked, theta)
}

/// `n` predecessor probes over a sorted-or-not key set, cycling four
/// lanes per stream position: an exact member, a member − 1 (the
/// just-below probe), a uniform universe miss, and a key + 1 (the
/// just-above probe). Probe `i` is a pure function of
/// `(seed, first_index + i)` — [`StreamRng`] lane addressing — so any
/// chunking of the stream regenerates identical probes.
pub fn predecessor_probes_at(keys: &[u64], n: usize, first_index: u64, seed: u64) -> Vec<u64> {
    assert!(!keys.is_empty(), "predecessor probes need a key set");
    (0..n as u64)
        .map(|i| {
            let pos = first_index + i;
            let mut rng = StreamRng::for_stream(seed, pos);
            let k = keys[uniform_below(&mut rng, keys.len() as u64) as usize];
            match pos % 4 {
                0 => k,
                1 => k.wrapping_sub(1),
                2 => uniform_below(&mut rng, MAX_KEY),
                _ => (k + 1) % MAX_KEY,
            }
        })
        .collect()
}

/// [`predecessor_probes_at`] from stream position 0.
pub fn predecessor_probes(keys: &[u64], n: usize, seed: u64) -> Vec<u64> {
    predecessor_probes_at(keys, n, 0, seed)
}

/// `n` inclusive `(lo, hi)` range pairs: endpoints are drawn around two
/// stored keys and min/max-normalized, except every eighth pair is left
/// deliberately inverted (`lo > hi`) to exercise the zero-count path.
/// Pair `i` is a pure function of `(seed, first_index + i)`, matching
/// the ordered engine's one-stream-position-per-pair addressing.
pub fn range_pairs_at(keys: &[u64], n: usize, first_index: u64, seed: u64) -> Vec<(u64, u64)> {
    assert!(!keys.is_empty(), "range pairs need a key set");
    (0..n as u64)
        .map(|i| {
            let pos = first_index + i;
            let mut rng = StreamRng::for_stream(seed, pos);
            let a = keys[uniform_below(&mut rng, keys.len() as u64) as usize];
            let b = keys[uniform_below(&mut rng, keys.len() as u64) as usize];
            // Nudge the endpoints off the stored keys half the time so
            // both exact-hit and between-keys descents occur.
            let a = a.wrapping_sub(uniform_below(&mut rng, 2));
            let b = (b + uniform_below(&mut rng, 2)) % MAX_KEY;
            if pos % 8 == 7 && a != b {
                (a.max(b), a.min(b))
            } else {
                (a.min(b), a.max(b))
            }
        })
        .collect()
}

/// [`range_pairs_at`] from stream position 0.
pub fn range_pairs(keys: &[u64], n: usize, seed: u64) -> Vec<(u64, u64)> {
    range_pairs_at(keys, n, 0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use lcds_cellprobe::dist::QueryDistribution;

    #[test]
    fn negative_pool_avoids_members() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let pool = negative_pool(&keys, 300, 1);
        assert_eq!(pool.len(), 300);
        let members: HashSet<u64> = keys.iter().copied().collect();
        assert!(pool.iter().all(|k| !members.contains(k)));
        let distinct: HashSet<u64> = pool.iter().copied().collect();
        assert_eq!(distinct.len(), 300);
    }

    #[test]
    fn distributions_sample_from_their_supports() {
        let keys: Vec<u64> = (100..200u64).collect();
        let members: HashSet<u64> = keys.iter().copied().collect();
        let mut rng = seeded(2);
        let pos = positive_dist(&keys);
        let neg = negative_dist(&keys, 50, 3);
        for _ in 0..200 {
            assert!(members.contains(&pos.sample(&mut rng)));
            assert!(!members.contains(&neg.sample(&mut rng)));
        }
    }

    #[test]
    fn mixture_rate_is_respected() {
        let keys: Vec<u64> = (0..100u64).collect();
        let members: HashSet<u64> = keys.iter().copied().collect();
        let m = mixed_dist(&keys, 0.75, 100, 4);
        let mut rng = seeded(5);
        let pos = (0..10_000)
            .filter(|_| members.contains(&m.sample(&mut rng)))
            .count();
        let rate = pos as f64 / 10_000.0;
        assert!((rate - 0.75).abs() < 0.03, "positive rate {rate}");
    }

    #[test]
    fn predecessor_probes_are_lane_deterministic_at_any_chunking() {
        let keys: Vec<u64> = (0..400u64).map(|i| 10 + i * 97).collect();
        let whole = predecessor_probes(&keys, 333, 9);
        assert_eq!(whole.len(), 333);
        assert_eq!(whole, predecessor_probes(&keys, 333, 9));
        assert_ne!(whole, predecessor_probes(&keys, 333, 10));
        // Regenerating any split by stream offset stitches to the whole.
        for split in [1usize, 4, 100, 332] {
            let mut pieced = predecessor_probes_at(&keys, split, 0, 9);
            pieced.extend(predecessor_probes_at(&keys, 333 - split, split as u64, 9));
            assert_eq!(pieced, whole, "split at {split}");
        }
        // All four lanes appear: members, just-below, misses.
        let members: HashSet<u64> = keys.iter().copied().collect();
        assert!(whole.iter().step_by(4).all(|q| members.contains(q)));
        assert!(whole.iter().any(|q| !members.contains(q)));
    }

    #[test]
    fn range_pairs_are_lane_deterministic_and_mostly_ordered() {
        let keys: Vec<u64> = (0..300u64).map(|i| 5 + i * 13).collect();
        let whole = range_pairs(&keys, 256, 21);
        assert_eq!(whole, range_pairs(&keys, 256, 21));
        for split in [1usize, 7, 128] {
            let mut pieced = range_pairs_at(&keys, split, 0, 21);
            pieced.extend(range_pairs_at(&keys, 256 - split, split as u64, 21));
            assert_eq!(pieced, whole, "split at {split}");
        }
        let inverted = whole.iter().filter(|(lo, hi)| lo > hi).count();
        assert!(inverted > 0, "no inverted pair ever generated");
        assert!(
            inverted <= whole.len() / 8 + 1,
            "{inverted} inverted pairs out of {}",
            whole.len()
        );
    }

    #[test]
    fn zipf_rank_order_is_seeded_shuffle() {
        let keys: Vec<u64> = (0..50u64).collect();
        let a = zipf_over_keys(&keys, 1.0, 7);
        let b = zipf_over_keys(&keys, 1.0, 7);
        let c = zipf_over_keys(&keys, 1.0, 8);
        assert_eq!(a.pool().entries, b.pool().entries);
        assert_ne!(a.pool().entries, c.pool().entries);
        // Hottest key gets weight ∝ 1 regardless of shuffle.
        let total_max = a.pool().entries.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        let h50: f64 = (1..=50).map(|i| 1.0 / i as f64).sum();
        assert!((total_max - 1.0 / h50).abs() < 1e-9);
    }
}

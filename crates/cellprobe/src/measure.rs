//! Monte-Carlo contention measurement, cross-validating the exact
//! computation in [`crate::exact`] and covering schemes (or distributions)
//! with no analytic description.

use crate::contention::ContentionProfile;
use crate::dict::CellProbeDict;
use crate::dist::QueryDistribution;
use crate::sink::{ProbeCountSink, ProbeSink, StepSink};
use crate::table::CellId;
use rand::RngCore;

/// Fans one probe stream out to any number of sinks, in order.
///
/// Useful when a single query pass should feed several observers at once
/// (e.g. a contention counter, a trace recorder, and a sampling telemetry
/// sink). For the common two-sink case, [`TeeSink`] is a thin wrapper.
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn ProbeSink>,
}

impl<'a> FanoutSink<'a> {
    /// Combines an arbitrary set of sinks. An empty fanout discards probes.
    pub fn new(sinks: Vec<&'a mut dyn ProbeSink>) -> FanoutSink<'a> {
        FanoutSink { sinks }
    }

    /// Appends another sink to the fanout.
    pub fn push(&mut self, sink: &'a mut dyn ProbeSink) {
        self.sinks.push(sink);
    }

    /// Number of downstream sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ProbeSink for FanoutSink<'_> {
    #[inline]
    fn probe(&mut self, cell: CellId) {
        for sink in &mut self.sinks {
            sink.probe(cell);
        }
    }

    fn begin_query(&mut self) {
        for sink in &mut self.sinks {
            sink.begin_query();
        }
    }

    fn stage(&mut self, stage: crate::sink::PlanStage) {
        for sink in &mut self.sinks {
            sink.stage(stage);
        }
    }
}

/// Fans one probe stream out to two sinks (thin wrapper over
/// [`FanoutSink`], kept for the common pairwise case).
pub struct TeeSink<'a> {
    fanout: FanoutSink<'a>,
}

impl<'a> TeeSink<'a> {
    /// Combines two sinks.
    pub fn new(a: &'a mut dyn ProbeSink, b: &'a mut dyn ProbeSink) -> TeeSink<'a> {
        TeeSink {
            fanout: FanoutSink::new(vec![a, b]),
        }
    }
}

impl ProbeSink for TeeSink<'_> {
    #[inline]
    fn probe(&mut self, cell: CellId) {
        self.fanout.probe(cell);
    }

    fn begin_query(&mut self) {
        self.fanout.begin_query();
    }

    fn stage(&mut self, stage: crate::sink::PlanStage) {
        self.fanout.stage(stage);
    }
}

/// Result of a Monte-Carlo measurement run.
#[derive(Clone, Debug)]
pub struct MeasureReport {
    /// Empirical contention profile (counts normalized by query count).
    pub profile: ContentionProfile,
    /// Number of queries executed.
    pub queries: u64,
    /// How many returned `true`.
    pub positives: u64,
    /// Largest probe count observed in a single query.
    pub probe_max: u32,
    /// Mean probes per query.
    pub probe_mean: f64,
}

/// Runs `queries` sampled queries against `dict` and returns the empirical
/// contention profile and probe statistics.
pub fn measure_contention(
    dict: &(impl CellProbeDict + ?Sized),
    dist: &(impl QueryDistribution + ?Sized),
    queries: u64,
    rng: &mut dyn RngCore,
) -> MeasureReport {
    assert!(queries > 0);
    let num_cells = dict.num_cells();
    let max_steps = dict.max_probes();
    let mut steps = StepSink::new(num_cells, max_steps);
    let mut counts = ProbeCountSink::new();
    let mut positives = 0u64;
    for _ in 0..queries {
        let x = dist.sample(rng);
        let mut tee = TeeSink::new(&mut steps, &mut counts);
        tee.begin_query();
        if dict.contains(x, rng, &mut tee) {
            positives += 1;
        }
    }

    let q = queries as f64;
    let mut profile = ContentionProfile::zero(num_cells, max_steps as usize);
    for t in 0..max_steps as usize {
        let row = steps.step_counts(t);
        let mut max = 0u32;
        let mut sum = 0u64;
        for (j, &c) in row.iter().enumerate() {
            if c > 0 {
                profile.total[j] += c as f64 / q;
                sum += c as u64;
                if c > max {
                    max = c;
                }
            }
        }
        profile.step_max[t] = max as f64 / q;
        profile.step_sum[t] = sum as f64 / q;
    }

    MeasureReport {
        profile,
        queries,
        positives,
        probe_max: counts.max(),
        probe_mean: counts.mean(),
    }
}

/// Checks a dictionary against an oracle: every `positive` must be found,
/// every `negative` must be rejected. Returns the first failure.
pub fn verify_membership(
    dict: &(impl CellProbeDict + ?Sized),
    positives: &[u64],
    negatives: &[u64],
    rng: &mut dyn RngCore,
) -> Result<(), String> {
    let mut sink = crate::sink::NullSink;
    for &x in positives {
        if !dict.contains(x, rng, &mut sink) {
            return Err(format!("{}: stored key {x} not found", dict.name()));
        }
    }
    for &x in negatives {
        if dict.contains(x, rng, &mut sink) {
            return Err(format!("{}: phantom key {x} reported present", dict.name()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::UniformOver;
    use crate::sink::{CountingSink, TraceSink};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct OneCell;

    impl CellProbeDict for OneCell {
        fn name(&self) -> String {
            "onecell".into()
        }
        fn contains(&self, x: u64, _rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
            sink.probe(0);
            x == 7
        }
        fn num_cells(&self) -> u64 {
            1
        }
        fn max_probes(&self) -> u32 {
            1
        }
        fn len(&self) -> usize {
            1
        }
    }

    #[test]
    fn tee_duplicates_stream() {
        let mut a = CountingSink::new(3);
        let mut b = TraceSink::new();
        {
            let mut tee = TeeSink::new(&mut a, &mut b);
            tee.begin_query();
            tee.probe(2);
            tee.probe(1);
        }
        assert_eq!(a.counts(), &[0, 1, 1]);
        assert_eq!(b.trace(), &[2, 1]);
    }

    #[test]
    fn fanout_duplicates_stream_to_all_sinks() {
        let mut a = CountingSink::new(3);
        let mut b = TraceSink::new();
        let mut c = ProbeCountSink::new();
        {
            let mut fan = FanoutSink::new(vec![&mut a, &mut b]);
            fan.push(&mut c);
            assert_eq!(fan.len(), 3);
            assert!(!fan.is_empty());
            fan.begin_query();
            fan.probe(2);
            fan.probe(1);
            fan.begin_query();
            fan.probe(0);
        }
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(b.trace(), &[2, 1, 0]);
        assert_eq!(c.per_query, vec![2, 1]);
    }

    #[test]
    fn empty_fanout_discards_probes() {
        let mut fan = FanoutSink::default();
        assert!(fan.is_empty());
        fan.begin_query();
        fan.probe(0); // must not panic
    }

    #[test]
    fn hot_cell_measures_contention_one() {
        let d = OneCell;
        let dist = UniformOver::new("u", vec![7, 8]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let r = measure_contention(&d, &dist, 1000, &mut rng);
        assert_eq!(r.queries, 1000);
        assert!((r.profile.max_step() - 1.0).abs() < 1e-12);
        assert!((r.profile.total[0] - 1.0).abs() < 1e-12);
        assert_eq!(r.probe_max, 1);
        assert!((r.probe_mean - 1.0).abs() < 1e-12);
        assert!(r.positives > 300 && r.positives < 700);
    }

    #[test]
    fn verify_membership_catches_errors() {
        let d = OneCell;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(verify_membership(&d, &[7], &[8, 9], &mut rng).is_ok());
        assert!(verify_membership(&d, &[8], &[], &mut rng).is_err());
        assert!(verify_membership(&d, &[], &[7], &mut rng).is_err());
    }
}

//! A two-level dictionary whose top level uses the Dietzfelbinger–Meyer auf
//! der Heide family (the "DM" comparison point of §1.3).
//!
//! Identical skeleton to [`crate::fks::FksDict`], but the top-level hash is
//! `h(x) = (f(x) + z_{g(x)}) mod m` with `f, g` derived from a single seed
//! word and the displacement vector `z` stored (replicated) in its own
//! region — so a query costs 4 probes: seed replica, `z` replica,
//! descriptor, data slot.
//!
//! The DM family's tighter load concentration keeps `max ℓ_i` at the
//! random-function level `Θ(ln n / ln ln n)` even against worst-case key
//! sets, which is why §1.3 credits DM (and cuckoo) with
//! `Θ(ln n / ln ln n)`-times-optimal contention versus FKS's `Θ(√n)` —
//! better, but still far from the paper's `O(1)`.
//!
//! ```text
//! [0, k)                       seed replicas (f, g derived from seed)
//! [k, k + z_len)               z region: z[j mod r], z_len = r·copies
//! [k+z_len, …+m)               descriptors (offset, load, seed)
//! […, …+Σℓ²)                   quadratic bucket tables
//! ```

use crate::common::{
    checked_sorted_keys, pack_descriptor, unpack_descriptor, BaselineError, Replication, LOAD_BITS,
    OFFSET_BITS,
};
use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::exact::{ExactProbes, ProbeSet};
use lcds_cellprobe::rngutil::uniform_below;
use lcds_cellprobe::sink::ProbeSink;
use lcds_cellprobe::table::Table;
use lcds_hashing::mix::derive;
use lcds_hashing::perfect::PerfectHash;
use lcds_hashing::poly::horner;
use rand::{Rng, RngCore};

/// Sentinel for unoccupied data cells.
const EMPTY: u64 = u64::MAX;

/// Degree of the derived `f` and `g` polynomials.
const DEGREE: usize = 4;

/// Tunables for [`DmDict::build`].
#[derive(Clone, Copy, Debug)]
pub struct DmConfig {
    /// Copies of the seed cell (and scale of the `z` region).
    pub replication: Replication,
    /// Accept when `Σℓ² ≤ space_factor · n`.
    pub space_factor: u64,
    /// Redraw cap.
    pub max_retries: u32,
}

impl Default for DmConfig {
    fn default() -> DmConfig {
        DmConfig {
            replication: Replication::Linear,
            space_factor: 4,
            max_retries: 1000,
        }
    }
}

/// Top-level DM hash state derived from `(seed, z)`.
#[derive(Clone, Debug)]
struct DmTop {
    f: [u64; DEGREE],
    g: [u64; DEGREE],
    r: u64,
    m: u64,
}

impl DmTop {
    fn from_seed(seed: u64, r: u64, m: u64) -> DmTop {
        let mut f = [0u64; DEGREE];
        let mut g = [0u64; DEGREE];
        for i in 0..DEGREE {
            f[i] = derive(seed, i as u64);
            g[i] = derive(seed, (DEGREE + i) as u64);
        }
        DmTop { f, g, r, m }
    }

    #[inline]
    fn class(&self, x: u64) -> u64 {
        horner(&self.g, x) % self.r
    }

    #[inline]
    fn bucket(&self, x: u64, z_of_class: u64) -> u64 {
        (horner(&self.f, x) % self.m + z_of_class) % self.m
    }
}

/// A built DM two-level dictionary.
#[derive(Clone, Debug)]
pub struct DmDict {
    table: Table,
    keys: Vec<u64>,
    top: DmTop,
    z: Vec<u64>,
    k: u64,
    z_len: u64,
    m: u64,
    /// Rejected draws.
    pub retries: u32,
    /// Largest bucket load.
    pub max_bucket_load: u32,
}

impl DmDict {
    /// Builds the dictionary over `keys`.
    pub fn build<R: Rng + ?Sized>(
        keys: &[u64],
        config: DmConfig,
        rng: &mut R,
    ) -> Result<DmDict, BaselineError> {
        let sorted = checked_sorted_keys(keys)?;
        let n = sorted.len() as u64;
        if config.space_factor * n >= (1 << OFFSET_BITS) {
            return Err(BaselineError::TooLarge(n));
        }
        let m = n;
        let r = (n as f64).sqrt().ceil() as u64;
        let k = config.replication.copies(n);
        // z region: each of the r displacements replicated ⌈k/r⌉ times.
        let z_copies = k.div_ceil(r).max(1);
        let z_len = r * z_copies;

        let mut accepted = None;
        let mut retries = 0;
        for _ in 0..config.max_retries {
            let seed = rng.random::<u64>();
            let top = DmTop::from_seed(seed, r, m);
            let z: Vec<u64> = (0..r).map(|_| rng.random_range(0..m)).collect();
            let mut loads = vec![0u32; m as usize];
            for &x in &sorted {
                let b = top.bucket(x, z[top.class(x) as usize]);
                loads[b as usize] += 1;
            }
            let sum_sq: u64 = loads.iter().map(|&l| (l as u64) * (l as u64)).sum();
            let max_load = loads.iter().copied().max().unwrap_or(0);
            if sum_sq <= config.space_factor * n && (max_load as u64) < (1 << LOAD_BITS) {
                accepted = Some((seed, top, z, loads, max_load));
                break;
            }
            retries += 1;
        }
        let (seed, top, z, loads, max_bucket_load) =
            accepted.ok_or(BaselineError::RetriesExhausted(config.max_retries))?;

        let mut offsets = vec![0u64; m as usize + 1];
        for i in 0..m as usize {
            offsets[i + 1] = offsets[i] + (loads[i] as u64) * (loads[i] as u64);
        }
        let data_space = offsets[m as usize];
        let mut by_bucket: Vec<Vec<u64>> = vec![Vec::new(); m as usize];
        for &x in &sorted {
            let b = top.bucket(x, z[top.class(x) as usize]);
            by_bucket[b as usize].push(x);
        }

        let desc_base = k + z_len;
        let data_base = desc_base + m;
        let mut table = Table::new(1, data_base + data_space, EMPTY);
        for j in 0..k {
            table.write(0, j, seed);
        }
        for j in 0..z_len {
            table.write(0, k + j, z[(j % r) as usize]);
        }
        for (i, bucket) in by_bucket.iter().enumerate() {
            let l = loads[i];
            let range = (l as u64) * (l as u64);
            let bseed = if l == 0 {
                0
            } else {
                crate::seed_search::find_perfect_seed32(bucket, range, rng)
                    .ok_or(BaselineError::RetriesExhausted(4096))?
            };
            table.write(
                0,
                desc_base + i as u64,
                pack_descriptor(offsets[i], l, bseed),
            );
            if l > 0 {
                let ph = PerfectHash::from_seed(bseed as u64, range);
                for &x in bucket {
                    table.write(0, data_base + offsets[i] + ph.eval(x), x);
                }
            }
        }

        Ok(DmDict {
            table,
            keys: sorted,
            top,
            z,
            k,
            z_len,
            m,
            retries,
            max_bucket_load,
        })
    }

    /// Builds with [`DmConfig::default`].
    pub fn build_default<R: Rng + ?Sized>(
        keys: &[u64],
        rng: &mut R,
    ) -> Result<DmDict, BaselineError> {
        DmDict::build(keys, DmConfig::default(), rng)
    }

    /// The sorted stored keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    fn desc_base(&self) -> u64 {
        self.k + self.z_len
    }

    fn data_base(&self) -> u64 {
        self.desc_base() + self.m
    }

    /// Analytic query resolution: `(class, bucket, load, data_cell)`.
    fn resolve(&self, x: u64) -> (u64, u64, u32, Option<u64>) {
        let class = self.top.class(x);
        let b = self.top.bucket(x, self.z[class as usize]);
        let (off, l, seed) = unpack_descriptor(self.table.peek(0, self.desc_base() + b));
        if l == 0 {
            return (class, b, 0, None);
        }
        let range = (l as u64) * (l as u64);
        let ph = PerfectHash::from_seed(seed as u64, range);
        (class, b, l, Some(self.data_base() + off + ph.eval(x)))
    }
}

impl CellProbeDict for DmDict {
    fn name(&self) -> String {
        let label = if self.k == 1 {
            "×1".into()
        } else if self.k == self.keys.len() as u64 {
            "×n".to_string()
        } else {
            format!("×{}", self.k)
        };
        format!("dm{label}")
    }

    fn contains(&self, x: u64, rng: &mut dyn RngCore, sink: &mut dyn ProbeSink) -> bool {
        // Probe 1: seed replica → f, g.
        let seed = self.table.read(0, uniform_below(rng, self.k), sink);
        let top = DmTop::from_seed(seed, self.top.r, self.m);
        // Probe 2: z replica for this class.
        let class = top.class(x);
        let copies = self.z_len / self.top.r;
        let z_col = class + self.top.r * uniform_below(rng, copies);
        let z_val = self.table.read(0, self.k + z_col, sink);
        // Probe 3: descriptor.
        let b = top.bucket(x, z_val);
        let (off, l, bseed) = unpack_descriptor(self.table.read(0, self.desc_base() + b, sink));
        if l == 0 {
            return false;
        }
        // Probe 4: data.
        let range = (l as u64) * (l as u64);
        let ph = PerfectHash::from_seed(bseed as u64, range);
        self.table
            .read(0, self.data_base() + off + ph.eval(x), sink)
            == x
    }

    fn num_cells(&self) -> u64 {
        self.table.num_cells()
    }

    fn max_probes(&self) -> u32 {
        4
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

impl ExactProbes for DmDict {
    fn probe_sets(&self, x: u64, out: &mut Vec<ProbeSet>) {
        out.push(ProbeSet::range(0, self.k));
        let (class, b, l, data) = self.resolve(x);
        out.push(ProbeSet::strided(
            self.k + class,
            self.top.r,
            self.z_len / self.top.r,
        ));
        out.push(ProbeSet::fixed(self.desc_base() + b));
        if l > 0 {
            out.push(ProbeSet::fixed(data.expect("non-empty bucket")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcds_cellprobe::dist::QueryPool;
    use lcds_cellprobe::exact::exact_contention;
    use lcds_cellprobe::measure::verify_membership;
    use lcds_cellprobe::sink::TraceSink;
    use lcds_hashing::MAX_KEY;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn keyset(n: u64, salt: u64) -> Vec<u64> {
        let mut set = HashSet::new();
        let mut i = 0u64;
        while (set.len() as u64) < n {
            set.insert(derive(salt, i) % MAX_KEY);
            i += 1;
        }
        set.into_iter().collect()
    }

    #[test]
    fn membership_is_correct() {
        let keys = keyset(900, 1);
        let d = DmDict::build_default(&keys, &mut rng(1)).unwrap();
        let negs: Vec<u64> = (0..500)
            .map(|i| derive(321, i) % MAX_KEY)
            .filter(|x| !keys.contains(x))
            .collect();
        verify_membership(&d, &keys, &negs, &mut rng(2)).unwrap();
    }

    #[test]
    fn four_probes_for_members() {
        let keys = keyset(300, 2);
        let d = DmDict::build_default(&keys, &mut rng(2)).unwrap();
        let mut r = rng(3);
        for &x in keys.iter().take(80) {
            let mut t = TraceSink::new();
            t.begin_query();
            assert!(d.contains(x, &mut r, &mut t));
            assert_eq!(t.trace().len(), 4);
        }
    }

    #[test]
    fn probes_match_declared_sets() {
        let keys = keyset(250, 3);
        let d = DmDict::build_default(&keys, &mut rng(3)).unwrap();
        let mut r = rng(4);
        let mut sets = Vec::new();
        for x in keys
            .iter()
            .copied()
            .take(50)
            .chain((0..50).map(|i| derive(9, i) % MAX_KEY))
        {
            sets.clear();
            d.probe_sets(x, &mut sets);
            let mut t = TraceSink::new();
            t.begin_query();
            let _ = d.contains(x, &mut r, &mut t);
            assert_eq!(t.trace().len(), sets.len(), "x={x}");
            for (&cell, set) in t.trace().iter().zip(&sets) {
                assert!(set.cells().any(|c| c == cell), "{cell} ∉ {set:?}");
            }
        }
    }

    #[test]
    fn descriptor_contention_tracks_max_load() {
        let keys = keyset(2048, 4);
        let n = keys.len() as f64;
        let d = DmDict::build_default(&keys, &mut rng(4)).unwrap();
        let prof = exact_contention(&d, &QueryPool::uniform(d.keys()));
        let expected = d.max_bucket_load as f64 / n;
        assert!((prof.step_max[2] - expected).abs() < 1e-9);
        assert!((prof.step_max[0] - 1.0 / n).abs() < 1e-12);
    }

    #[test]
    fn z_region_layout_is_consistent() {
        let keys = keyset(500, 5);
        let d = DmDict::build_default(&keys, &mut rng(5)).unwrap();
        assert_eq!(d.z_len % d.top.r, 0);
        for j in 0..d.z_len {
            assert_eq!(d.table.peek(0, d.k + j), d.z[(j % d.top.r) as usize]);
        }
    }

    #[test]
    fn space_is_linear() {
        let keys = keyset(1000, 6);
        let d = DmDict::build_default(&keys, &mut rng(6)).unwrap();
        assert!(
            d.words_per_key() <= 9.0,
            "words/key = {}",
            d.words_per_key()
        );
    }

    #[test]
    fn tiny_sets_build() {
        for n in 1..=4u64 {
            let keys: Vec<u64> = (0..n).map(|i| i * 23 + 11).collect();
            let d = DmDict::build_default(&keys, &mut rng(30 + n)).unwrap();
            verify_membership(&d, &keys, &[0, 1, 2], &mut rng(40 + n)).unwrap();
        }
    }
}

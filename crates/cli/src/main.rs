//! `lcds` — the command-line face of the low-contention dictionary.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = lcds_cli::run(&args, &mut out) {
        eprintln!("lcds: {}", e.message);
        std::process::exit(e.code);
    }
}

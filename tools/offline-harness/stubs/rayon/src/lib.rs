//! Offline stand-in for the `rayon` API surface this workspace uses.
//!
//! Everything executes on the calling thread, but where rayon's contract
//! permits schedule freedom the stub is deliberately adversarial instead
//! of naively in-order:
//!
//! - [`Par::for_each`] runs items in REVERSE order (rayon promises no
//!   order), so side-effect code that silently depends on left-to-right
//!   execution fails here too;
//! - [`Par::fold`] emulates maximal splitting: every item gets its own
//!   fresh accumulator, so the follow-up [`Par::reduce`] must really be
//!   associative with a true identity, as rayon requires.
//!
//! Order-preserving operations (`map`/`collect`/`zip`/`enumerate`) keep
//! index order, exactly as rayon's indexed parallel iterators do.

pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<impl Iterator<Item = B>> {
        Par(self.0.map(f))
    }

    pub fn enumerate(self) -> Par<impl Iterator<Item = (usize, I::Item)>> {
        Par(self.0.enumerate())
    }

    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<impl Iterator<Item = (I::Item, J::Item)>> {
        Par(self.0.zip(other.0))
    }

    pub fn flat_map_iter<B, F>(self, f: F) -> Par<impl Iterator<Item = B::Item>>
    where
        B: IntoIterator,
        F: FnMut(I::Item) -> B,
    {
        Par(self.0.flat_map(f))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, mut f: F) {
        let items: Vec<I::Item> = self.0.collect();
        for item in items.into_iter().rev() {
            f(item);
        }
    }

    pub fn find_map_first<B, F: FnMut(I::Item) -> Option<B>>(mut self, f: F) -> Option<B> {
        self.0.find_map(f)
    }

    pub fn fold<T, ID, F>(self, init: ID, mut f: F) -> Par<impl Iterator<Item = T>>
    where
        ID: FnMut() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let mut init = init;
        Par(self.0.map(move |item| f(init(), item)))
    }

    pub fn reduce<ID, F>(self, id: ID, mut f: F) -> I::Item
    where
        ID: FnOnce() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(id(), &mut f)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<impl Iterator<Item = I::Item>> {
        Par(self.0.filter(f))
    }
}

pub trait IntoParallelIterator {
    type PIter: Iterator;
    fn into_par_iter(self) -> Par<Self::PIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type PIter = T::IntoIter;
    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(size))
    }
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(size))
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

pub fn current_num_threads() -> usize {
    1
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (stub)")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

pub struct ThreadPool {
    _threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, work: impl FnOnce() -> R) -> R {
        work()
    }
}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.threads = n;
        self
    }
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _threads: self.threads,
        })
    }
}

//! The contention watchdog must *discriminate*: the paper's adversarial
//! Θ(√n) workload against FKS has to trip it, while the low-contention
//! dictionary under the *same* query mix has to stay silent. A watchdog
//! that fires on both (or neither) is a random-noise generator, not an
//! alarm.
//!
//! Also pins the Count-Min accuracy contract the heatmap's Φ̂ rests on:
//! estimates never undercount, and overcount by at most
//! `error_bound() = ε·total` (checked against exact per-cell counts at
//! n = 2¹²).

use lcds_baselines::{FksConfig, FksDict};
use lcds_cellprobe::measure::FanoutSink;
use lcds_obs::heatmap::{balls_in_bins_envelope, theorem3_envelope};
use lcds_obs::{Heatmap, Watchdog};
use lcds_workloads::adversarial::adversarial_fks_keys;
use lcds_workloads::rng::FirstWordRng;
use low_contention::prelude::*;
use proptest::prelude::*;

/// Runs `queries` Zipf(θ)-distributed membership queries against `dict`,
/// feeding every probe to a fresh heatmap.
fn heat(dict: &dyn CellProbeDict, keys: &[u64], theta: f64, queries: usize, seed: u64) -> Heatmap {
    let dist = zipf_over_keys(keys, theta, seed ^ 0xD157);
    let mut rng = seeded(seed);
    let mut hm = Heatmap::with_defaults(seed ^ 0x11EA7);
    for _ in 0..queries {
        let x = dist.sample(&mut rng);
        hm.begin_query();
        let _ = dict.contains(x, &mut rng, &mut hm);
    }
    hm
}

/// The paper's separation, end to end: same adversarial key set, same
/// mildly skewed query mix, opposite watchdog verdicts.
#[test]
fn watchdog_trips_on_adversarial_fks_but_not_on_the_low_contention_dict() {
    let n = 2048usize;
    let seed = 0x3A7C4;
    let stored = adversarial_fks_keys(n, seed);
    let queries = 20_000;
    let theta = 0.5;

    // FKS on its adversarial input: the shared top-level bucket drags
    // Φ̂·s to ≈ 2√n, far above the ln n / ln ln n balls-in-bins envelope
    // an honest hash-table deployment would budget for.
    let mut fks_rng = FirstWordRng::new(seed, seeded(seed ^ 99));
    let fks = FksDict::build(&stored, FksConfig::default(), &mut fks_rng).expect("fks build");
    let hm = heat(&fks, &stored, theta, queries, seed);
    let envelope = balls_in_bins_envelope(n as u64);
    let mut wd = Watchdog::new(envelope, 3.0);
    let alarm = wd.check(&hm, fks.num_cells());
    assert!(
        alarm.is_some(),
        "adversarial FKS must trip: ratio {:.1} vs threshold {:.1}",
        hm.ratio(fks.num_cells()),
        wd.threshold()
    );
    let alarm = alarm.unwrap();
    assert!(alarm.ratio > wd.threshold());
    assert_eq!(wd.trips(), 1);
    // The hot cell is genuinely ~√n hot, not a sketch artifact.
    assert!(
        alarm.ratio > (n as f64).sqrt(),
        "ratio {:.1} should reach Θ(√n)",
        alarm.ratio
    );

    // The low-contention dictionary on the *same* keys and query mix:
    // Theorem 3 keeps every cell's probe share near s/n, so the ratio
    // stays within a small constant of its s/n envelope.
    let lcd = build_dict(&stored, &mut seeded(seed ^ 0x1CD)).expect("lcd build");
    let hm = heat(&lcd, &stored, theta, queries, seed);
    let envelope = theorem3_envelope(lcd.num_cells(), n as u64);
    let mut wd = Watchdog::new(envelope, 3.0);
    assert!(
        wd.check(&hm, lcd.num_cells()).is_none(),
        "low-contention dict must stay silent: ratio {:.1} vs threshold {:.1}",
        hm.ratio(lcd.num_cells()),
        wd.threshold()
    );
    assert_eq!(wd.trips(), 0);
}

/// Count-Min accuracy against exact ground truth at n = 2¹²: for every
/// cell, `true ≤ estimate ≤ true + error_bound()`.
#[test]
fn heatmap_estimates_bracket_exact_counts_within_the_cm_bound() {
    let n = 1 << 12;
    let keys = uniform_keys(n, 0xC0DE);
    let dict = build_dict(&keys, &mut seeded(0xC0DF)).expect("build");
    // θ = 1.1 puts the hottest cell's share above the space-saving
    // blind zone `1/topk_capacity` (asserted below), where the Φ̂
    // accuracy contract actually applies; a flatter mix leaves the
    // hottest cell free to be evicted from the candidate set and Φ̂
    // is then only an envelope-scale signal, not a point estimate.
    let dist = zipf_over_keys(&keys, 1.1, 0xC0E0);
    let mut rng = seeded(0xC0E1);

    let mut exact = CountingSink::new(dict.num_cells());
    let mut hm = Heatmap::with_defaults(0xC0E2);
    for _ in 0..30_000 {
        let x = dist.sample(&mut rng);
        let mut fan = FanoutSink::new(vec![&mut exact, &mut hm]);
        fan.begin_query();
        let _ = dict.contains(x, &mut rng, &mut fan);
    }

    assert_eq!(hm.probes(), exact.total());
    let bound = hm.error_bound();
    assert!(bound > 0.0);
    let mut worst_err = 0u64;
    for (cell, &truth) in exact.counts().iter().enumerate() {
        let est = hm.estimate(cell as u64);
        assert!(
            est >= truth,
            "Count-Min never undercounts: cell {cell}, est {est} < true {truth}"
        );
        assert!(
            est as f64 <= truth as f64 + bound,
            "cell {cell}: est {est} exceeds true {truth} + ε·total {bound:.1}"
        );
        worst_err = worst_err.max(est - truth);
    }
    // Φ̂ from the sketch agrees with the exact hottest share to within
    // the same additive error.
    let true_hottest = *exact.counts().iter().max().unwrap();
    let exact_phi = true_hottest as f64 / exact.total() as f64;
    assert!(
        exact_phi > 1.0 / hm.topk_capacity() as f64,
        "precondition: hottest share {exact_phi} must clear the \
         space-saving blind zone 1/{}",
        hm.topk_capacity()
    );
    assert!(
        (hm.phi_hat() - exact_phi).abs() <= bound / exact.total() as f64 + 1e-12,
        "Φ̂ {} vs exact {} (worst cell error {worst_err})",
        hm.phi_hat(),
        exact_phi
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The no-undercount half of the CM contract holds for arbitrary
    /// synthetic traces, not just dictionary probe streams.
    #[test]
    fn count_min_never_undercounts(seed in 0u64..1000, width in 8usize..64) {
        let mut hm = Heatmap::new(width, 4, 8, seed);
        let mut truth = std::collections::HashMap::new();
        let mut s = seed;
        let mut trace = Vec::new();
        for _ in 0..512 {
            // Splitmix-ish step; skew cells into a small range so
            // collisions actually occur at small widths.
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let cell = (s >> 33) % 97;
            trace.push(cell);
            *truth.entry(cell).or_insert(0u64) += 1;
        }
        hm.absorb_trace(&trace, 64);
        for (&cell, &t) in &truth {
            prop_assert!(hm.estimate(cell) >= t);
        }
    }
}

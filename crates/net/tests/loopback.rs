//! Loopback TCP tests: answers over the wire must equal direct
//! [`Engine`] calls bit for bit — across a worker × connection matrix,
//! under forced `Busy` shedding with client retries, and through a
//! graceful drain that loses no accepted request's response.

use lcds_core::builder::build;
use lcds_net::client::{Client, ClientConfig};
use lcds_net::proto::{self, Request, Response};
use lcds_net::server::{serve, ServerConfig};
use lcds_serve::{Engine, EngineConfig, ShardedLcd};
use lcds_workloads::{negative_pool, uniform_keys};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const SEED: u64 = 7;

fn single_engine(n: usize, salt: u64) -> Engine {
    let keys = uniform_keys(n, salt);
    let d = build(&keys, &mut ChaCha8Rng::seed_from_u64(salt)).expect("build dictionary");
    Engine::new(d, SEED, EngineConfig::with_batch(64))
}

fn sharded_engine(n: usize, shards: usize, salt: u64) -> Engine {
    let keys = uniform_keys(n, salt);
    let s = ShardedLcd::build_seeded(&keys, shards, salt ^ 0x511, salt ^ 0x9e).expect("shards");
    Engine::sharded(s, SEED, EngineConfig::with_batch(64))
}

/// Members and negatives interleaved — the probe stream every test
/// queries, in one canonical order.
fn probe_stream(engine: &Engine, salt: u64) -> Vec<u64> {
    let members: Vec<u64> = match engine.dict() {
        lcds_serve::EngineDict::Single(d) => d.keys().to_vec(),
        lcds_serve::EngineDict::Sharded(s) => s
            .shards()
            .iter()
            .flat_map(|d| d.keys().iter().copied())
            .collect(),
    };
    let negs = negative_pool(&members, members.len(), salt);
    members
        .iter()
        .zip(&negs)
        .flat_map(|(&m, &n)| [m, n])
        .collect()
}

/// Splits the probe stream across `conns` connections (each slice keeps
/// its global offset), queries them concurrently, and stitches the
/// answers back together.
fn query_split(
    addr: std::net::SocketAddr,
    probes: &[u64],
    conns: usize,
    cfg: ClientConfig,
) -> (Vec<bool>, u64) {
    let per = probes.len().div_ceil(conns);
    thread::scope(|s| {
        let handles: Vec<_> = probes
            .chunks(per)
            .enumerate()
            .map(|(c, slice)| {
                s.spawn(move || {
                    let mut client = Client::connect_with(addr, cfg).expect("connect");
                    let bits = client
                        .bulk_contains(slice, (c * per) as u64)
                        .expect("bulk over TCP");
                    (bits, client.busy_retries())
                })
            })
            .collect();
        let mut all = Vec::with_capacity(probes.len());
        let mut retries = 0;
        for h in handles {
            let (bits, r) = h.join().expect("connection thread");
            all.extend(bits);
            retries += r;
        }
        (all, retries)
    })
}

#[test]
fn tcp_answers_equal_direct_engine_across_workers_and_connections() {
    for engine in [single_engine(1200, 31), sharded_engine(1200, 3, 33)] {
        let probes = probe_stream(&engine, 35);
        let expected = engine.bulk_contains(&probes);
        let engine = Arc::new(engine);
        for workers in [1usize, 4] {
            let handle = serve(
                "127.0.0.1:0",
                Arc::clone(&engine),
                ServerConfig {
                    workers,
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback");
            let addr = handle.local_addr();
            for conns in [1usize, 8] {
                let cfg = ClientConfig {
                    chunk: 100,
                    window: 4,
                    ..ClientConfig::default()
                };
                let (got, _) = query_split(addr, &probes, conns, cfg);
                assert_eq!(
                    got, expected,
                    "workers={workers} conns={conns} diverged from the direct engine"
                );
            }
            handle.shutdown();
        }
    }
}

#[test]
fn forced_shedding_sheds_and_retried_answers_stay_identical() {
    let engine = single_engine(900, 41);
    let probes = probe_stream(&engine, 43);
    let expected = engine.bulk_contains(&probes);
    let engine = Arc::new(engine);

    // One slow worker behind a single-slot queue, hit by 8-deep
    // pipelines: the queue must overflow, so Busy responses are
    // guaranteed, and the client's retries must still reassemble the
    // exact direct-engine answer.
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            worker_lag: Some(Duration::from_millis(2)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let cfg = ClientConfig {
        chunk: 64,
        window: 8,
        ..ClientConfig::default()
    };
    let (got, retries) = query_split(handle.local_addr(), &probes, 2, cfg);
    assert_eq!(got, expected, "answers diverged under shedding");
    assert!(retries > 0, "test never tripped the Busy path");
    assert!(
        handle
            .stats()
            .sheds
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "server never shed"
    );
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_accepted_request() {
    let engine = single_engine(700, 51);
    let probes = probe_stream(&engine, 53);
    let expected = engine.bulk_contains(&probes);
    let engine = Arc::new(engine);

    const FRAMES: usize = 16;
    let chunk = probes.len() / FRAMES;

    // One deliberately slow worker and a queue deep enough to hold
    // everything: the requests are all accepted quickly, then shutdown
    // races the (slow) service of the backlog.
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            workers: 1,
            queue_depth: FRAMES,
            worker_lag: Some(Duration::from_millis(8)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    for (i, slice) in probes.chunks(chunk).take(FRAMES).enumerate() {
        let frame = proto::encode_request(
            i as u64 + 1,
            &Request::BulkContains {
                first_index: (i * chunk) as u64,
                keys: slice.to_vec(),
            },
        )
        .expect("encode");
        stream.write_all(&frame).expect("send");
    }
    stream.flush().expect("flush");
    // Let the reader ingest and enqueue the backlog, then shut down
    // while most of it is still waiting for the slow worker.
    thread::sleep(Duration::from_millis(40));
    handle.shutdown();

    // Every accepted request must have its response on the wire: all
    // FRAMES answers arrive, correct, before EOF.
    let mut seen = [false; FRAMES];
    for _ in 0..FRAMES {
        let (id, resp) = proto::read_response(&mut stream).expect("a drained response");
        let i = (id - 1) as usize;
        assert!(!seen[i], "response {id} arrived twice");
        seen[i] = true;
        match resp {
            Response::BulkContains(bits) => {
                assert_eq!(
                    bits,
                    expected[i * chunk..(i * chunk + chunk).min(expected.len())].to_vec(),
                    "drained answer {id} diverged"
                );
            }
            other => panic!("wanted a bulk result for {id}, got {other:?}"),
        }
    }
    assert!(seen.iter().all(|&s| s), "a response was dropped in drain");
    match proto::read_response(&mut stream) {
        Err(_) => {}
        Ok((id, resp)) => panic!("unexpected extra response {id}: {resp:?}"),
    }
}

#[test]
fn ping_stats_and_single_contains_round_trip() {
    let engine = single_engine(400, 61);
    let member = match engine.dict() {
        lcds_serve::EngineDict::Single(d) => d.keys()[0],
        _ => unreachable!(),
    };
    let (keys, cells, shards, max_probes) = (
        engine.key_count() as u64,
        engine.num_cells(),
        engine.num_shards() as u32,
        engine.max_probes(),
    );
    let expect_hit = engine.contains_at(member, 5);
    let expect_miss = engine.contains_at(member ^ 0xDEAD_BEEF, 6);
    let engine = Arc::new(engine);

    let handle =
        serve("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.ping().expect("ping");
    let stats = client.stats().expect("stats");
    assert_eq!(
        (
            stats.keys,
            stats.cells,
            stats.shards,
            stats.max_probes,
            stats.seed
        ),
        (keys, cells, shards, max_probes, SEED)
    );
    assert_eq!(client.contains(member, 5).expect("contains"), expect_hit);
    assert_eq!(
        client.contains(member ^ 0xDEAD_BEEF, 6).expect("contains"),
        expect_miss
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn loadgen_closed_loop_reports_real_throughput() {
    use lcds_net::loadgen::{self, LoadConfig, Workload};

    let engine = single_engine(600, 71);
    let pool: Vec<u64> = match engine.dict() {
        lcds_serve::EngineDict::Single(d) => d.keys().to_vec(),
        _ => unreachable!(),
    };
    let engine = Arc::new(engine);
    let handle =
        serve("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default()).expect("bind loopback");

    for workload in [
        Workload::Uniform,
        Workload::Zipf(1.1),
        Workload::Adversarial,
    ] {
        let report = loadgen::run(
            handle.local_addr(),
            &pool,
            &LoadConfig {
                connections: 2,
                duration: Duration::from_millis(150),
                batch: 64,
                workload,
                seed: 99,
                mutate_every: 0,
                ordered: false,
                client: ClientConfig::default(),
            },
        )
        .expect("load run");
        assert!(report.requests > 0, "{workload:?}: no requests completed");
        assert_eq!(report.keys, report.requests * 64);
        // The pool is all members, so every sampled key must hit.
        assert_eq!(report.hits, report.keys, "{workload:?}: missed a member");
        assert!(report.qps() > 0.0);
        assert!(report.latency_quantile_ns(0.5) > 0);
    }
    handle.shutdown();
}

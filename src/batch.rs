//! Data-parallel bulk queries (Rayon).
//!
//! A static read-only dictionary is embarrassingly parallel on real
//! hardware *when its contention is flat* — which is the whole point of
//! the paper. These helpers run bulk membership queries with
//! `rayon::par_chunks`, seeding one deterministic RNG per chunk so results
//! are reproducible regardless of the thread schedule.

use lcds_cellprobe::dict::CellProbeDict;
use lcds_cellprobe::sink::NullSink;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Keys per parallel chunk: large enough to amortize task overhead, small
/// enough to load-balance.
const CHUNK: usize = 1024;

/// Bulk membership: `out[i] = dict.contains(keys[i])`, evaluated in
/// parallel across Rayon's thread pool.
///
/// Deterministic: chunk `c` uses an RNG seeded with `seed ⊕ c`, so the
/// balancing randomness (replica choices) does not depend on scheduling.
pub fn par_contains<D: CellProbeDict + Sync + ?Sized>(
    dict: &D,
    keys: &[u64],
    seed: u64,
) -> Vec<bool> {
    keys.par_chunks(CHUNK)
        .enumerate()
        .flat_map_iter(|(c, chunk)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ c as u64);
            chunk
                .iter()
                .map(move |&x| dict.contains(x, &mut rng, &mut NullSink))
                .collect::<Vec<bool>>()
        })
        .collect()
}

/// Bulk membership count: how many of `keys` are members (parallel
/// map-reduce; avoids materializing the bool vector).
pub fn par_count_members<D: CellProbeDict + Sync + ?Sized>(
    dict: &D,
    keys: &[u64],
    seed: u64,
) -> usize {
    keys.par_chunks(CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ c as u64);
            chunk
                .iter()
                .filter(|&&x| dict.contains(x, &mut rng, &mut NullSink))
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn par_contains_matches_sequential() {
        let keys = uniform_keys(3000, 1);
        let mut rng = seeded(2);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .chain(lcds_workloads::querygen::negative_pool(&keys, 3000, 3))
            .collect();
        let par = par_contains(&dict, &probes, 7);
        assert_eq!(par.len(), probes.len());
        for (i, &x) in probes.iter().enumerate() {
            assert_eq!(par[i], dict.resolve_contains(x), "key {x}");
        }
    }

    #[test]
    fn par_contains_is_deterministic() {
        let keys = uniform_keys(500, 4);
        let mut rng = seeded(5);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let a = par_contains(&dict, &keys, 9);
        let b = par_contains(&dict, &keys, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn par_count_members() {
        let keys = uniform_keys(2000, 6);
        let mut rng = seeded(7);
        let dict = build_dict(&keys, &mut rng).unwrap();
        let mixed: Vec<u64> = keys
            .iter()
            .copied()
            .take(1500)
            .chain(lcds_workloads::querygen::negative_pool(&keys, 500, 8))
            .collect();
        assert_eq!(super::par_count_members(&dict, &mixed, 10), 1500);
    }

    #[test]
    fn empty_input() {
        let keys = uniform_keys(10, 9);
        let mut rng = seeded(10);
        let dict = build_dict(&keys, &mut rng).unwrap();
        assert!(par_contains(&dict, &[], 0).is_empty());
        assert_eq!(super::par_count_members(&dict, &[], 0), 0);
    }
}
